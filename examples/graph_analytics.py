"""Recursive queries and graph analytics on the relational engine.

Run with::

    python examples/graph_analytics.py

The paper's conclusion asks whether the same join-based engine can also
absorb recursive queries and graph-style processing.  This example answers
in miniature: it computes transitive closure and single-source
reachability with the semi-naive Datalog evaluator (whose rule bodies are
executed by Leapfrog Triejoin), then runs BFS, connected components, and
PageRank over the same dataset, cross-checking the relational reachability
against the direct graph traversal.
"""

from __future__ import annotations

import time

from repro.analytics import (
    RecursiveProgram,
    Rule,
    SemiNaiveEvaluator,
    bfs_levels,
    connected_components,
    pagerank,
    reachable_from,
    transitive_closure_program,
)
from repro.data import load_dataset
from repro.storage import Database


def main() -> None:
    edge = load_dataset("p2p-Gnutella04")
    database = Database([edge])
    nodes = edge.active_domain()
    print(f"graph: {len(nodes)} nodes, {len(edge) // 2} undirected edges")

    # --- recursive Datalog: transitive closure --------------------------
    started = time.perf_counter()
    evaluator = SemiNaiveEvaluator()
    closure = evaluator.evaluate(transitive_closure_program(), database)["tc"]
    elapsed = time.perf_counter() - started
    stats = evaluator.last_statistics
    print(f"\ntransitive closure: {len(closure):,} facts in "
          f"{stats.iterations} semi-naive iterations ({elapsed:.2f}s)")

    # --- reachability: relational vs direct -----------------------------
    start_node = nodes[0]
    relational = reachable_from(database, start_node, engine="relational")
    direct = reachable_from(database, start_node, engine="direct")
    assert relational == direct
    print(f"reachable from node {start_node}: {len(relational)} nodes "
          f"(relational and direct engines agree)")

    # --- classic graph analytics ----------------------------------------
    levels = bfs_levels(database, start_node)
    print(f"BFS eccentricity of node {start_node}: {max(levels.values())}")

    components = connected_components(database)
    sizes = sorted(
        (sum(1 for c in components.values() if c == label)
         for label in set(components.values())),
        reverse=True,
    )
    print(f"connected components: {len(sizes)} (largest {sizes[0]} nodes)")

    ranks = pagerank(database)
    top = sorted(ranks.items(), key=lambda item: -item[1])[:5]
    print("top-5 PageRank nodes:",
          ", ".join(f"{node} ({rank:.4f})" for node, rank in top))


if __name__ == "__main__":
    main()
