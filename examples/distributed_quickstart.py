"""Distributed quickstart: a fleet of servers, one sharded query.

Run with::

    python examples/distributed_quickstart.py

A three-server cluster and its coordinator in one process: the example
stands up three ``repro server`` instances on ephemeral ports (each the
same :class:`~repro.net.server.ReproServer` behind ``repro server``),
joins them into one cluster URL, and connects with
``repro.connect("repro://h1:p1,h2:p2,h3:p3")``. What the distributed
layer guarantees:

* **the same surface** — a :class:`~repro.dist.ClusterSession` answers
  ``run`` / ``count`` / ``prepare`` / ``explain`` / ``stats`` exactly
  like a local :class:`~repro.api.session.Session`;
* **statistics-weighted sharding** — cyclic queries split over a
  HyperCube grid whose share sizes follow the AGM fractional edge
  cover; ``explain`` shows the weights and the cell → server deal;
* **fault tolerance** — killing a server mid-session re-routes its
  shards to the survivors and the answer does not change;
* **peer coordination** — ``route="peer"`` hands the whole
  dispatch/gather/merge to one server of the fleet, which sub-shards
  across its peers (``hop=1`` sub-queries never re-fan-out) and sends
  the client a single merged answer.
"""

from __future__ import annotations

import repro
from repro.data.catalog import load_dataset
from repro.data.sampling import attach_samples
from repro.net.server import ServerThread
from repro.service import QueryService
from repro.storage import Database

TRIANGLE = "edge(a, b), edge(b, c), edge(a, c), a < b, b < c"
TWO_HOP = "v1(a), edge(a, b), edge(b, c)"


def main() -> None:
    database = Database([load_dataset("ca-GrQc")])
    attach_samples(database, 10, sample_names=("v1", "v2", "v3", "v4"))

    # Three wire servers over one shared service — stand-ins for three
    # machines. In production each would be its own `repro server`
    # process on its own host; the coordinator cannot tell the
    # difference.
    with QueryService(database) as service:
        servers = [ServerThread(service).start() for _ in range(3)]
        try:
            url = "repro://" + ",".join(
                server.url.replace("repro://", "") for server in servers
            )
            print(f"cluster of {len(servers)}: {url}\n")

            # repro.connect dispatches on the URL: multiple hosts →
            # ClusterSession, same surface as a local Session.
            with repro.connect(url) as cluster:
                print("triangles (sharded over 3 servers):",
                      cluster.count(TRIANGLE))
                print("two-hop paths (hash-sharded):",
                      cluster.count(TWO_HOP))

                # The distributed explain section: scheme, AGM share
                # weights, per-shard output bound, cell → server deal.
                print("\n=== explain (distributed section last) ===")
                print(cluster.explain(TRIANGLE).render())

                # Prepared handles shard too — one parse, many gathers.
                with cluster.prepare(TRIANGLE) as handle:
                    print("\nprepared, run twice:",
                          handle.run().count(), handle.run().count())

                # Peer route: the same query, but one server of the
                # fleet coordinates — it dispatches hop-1 sub-queries
                # to its peers, merges next to the data, and the client
                # receives a single merged stream over the final hop.
                result = cluster.run(TRIANGLE, route="peer")
                rows = result.fetchall()
                info = result.gather_info
                print(f"\npeer route: {len(rows)} rows merged by "
                      f"{info['coordinator']} over "
                      f"{len(info['shard_map'])} shards")

                # Kill a server mid-session: its shards re-route to the
                # survivors and the answer is unchanged.
                before = cluster.count(TRIANGLE)
                servers[1].stop()
                after = cluster.count(TRIANGLE)
                topology = cluster.stats()["topology"]
                print(f"\nkilled one server: count {before} -> {after}, "
                      f"healthy {topology['healthy']}/{topology['total']}")

                # Errors keep their class across the cluster.
                try:
                    cluster.run("edge(a,")
                except repro.ParseError as error:
                    print(f"cluster parse error, caught as ParseError: "
                          f"{error}")
        finally:
            for server in servers:
                server.stop()


if __name__ == "__main__":
    main()
