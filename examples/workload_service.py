"""Serving a query stream: plan & result caches, worker pool, workload runner.

Run with::

    python examples/workload_service.py

The example stands up a :class:`repro.service.QueryService` over a catalog
dataset and walks through the serving story end to end:

1. a single query served cold, then hot (plan + result cache);
2. cache invalidation when a relation of the catalog changes;
3. a Zipf-parameterized workload driven through the worker pool, with the
   latency-percentile report;
4. the cached-vs-cold comparison: the same repeated-query stream through
   the service vs. a per-query engine loop (expected well above 5x);
5. concurrent vs. serial execution returning identical results.
"""

from __future__ import annotations

from repro.bench.harness import run_cached_vs_cold
from repro.data import load_dataset
from repro.data.sampling import attach_samples
from repro.service import (
    QueryService,
    ServiceConfig,
    WorkloadRunner,
    WorkloadSpec,
)
from repro.storage import Database


TRIANGLE = "edge(a, b), edge(b, c), edge(a, c), a < b, b < c"


def main() -> None:
    edge = load_dataset("ca-GrQc")
    database = Database([edge])
    attach_samples(database, 10, sample_names=("v1", "v2"))
    print(f"graph: {len(edge) // 2} undirected edges, "
          f"{len(edge.active_domain())} nodes")

    config = ServiceConfig(workers=4, max_pending=32, default_timeout=60.0)
    with QueryService(database, config) as service:
        # 1. Cold, then hot.
        cold = service.execute(TRIANGLE)
        hot = service.execute(TRIANGLE)
        print(f"\ntriangles: {cold.count:,}")
        print(f"  cold: {cold.seconds:.4f}s "
              f"(plan_cached={cold.plan_cached}, "
              f"result_cached={cold.result_cached})")
        print(f"  hot:  {hot.seconds:.6f}s "
              f"(plan_cached={hot.plan_cached}, "
              f"result_cached={hot.result_cached})")

        # 2. Invalidation: replacing a relation drops dependent results.
        database.add(database.relation("edge"), replace=True)
        after = service.execute(TRIANGLE)
        print(f"  after edge update: result_cached={after.result_cached} "
              f"(recomputed), plan_cached={after.plan_cached} "
              f"(plans survive data changes)")

        # 3. A parameterized workload through the worker pool.
        nodes = sorted(edge.active_domain())[:48]
        spec = WorkloadSpec.from_dict({
            "name": "social-mix",
            "operations": 150,
            "seed": 42,
            "queries": [
                {"name": "two-hop", "weight": 4,
                 "template": "edge({src}, b), edge(b, c)",
                 "parameters": [{"name": "src", "distribution": "zipf",
                                 "skew": 1.2, "values": nodes}]},
                {"name": "triangle", "weight": 2, "template": TRIANGLE},
                {"name": "3-path", "weight": 1,
                 "template": "v1(a), v2(d), edge(a, b), edge(b, c), "
                             "edge(c, d)"},
            ],
        })
        report = WorkloadRunner(service, spec).run()
        print(f"\n{report.format()}")

    # 4. Cached vs cold on a repeated-query stream.
    comparison = run_cached_vs_cold(
        database,
        [TRIANGLE,
         "edge(a, b), edge(b, c)",
         "v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)"],
        repeats=15,
        timeout=60.0,
    )
    print(f"\ncached vs cold: {comparison.cold_qps:.1f} q/s cold vs "
          f"{comparison.cached_qps:.1f} q/s cached -> "
          f"{comparison.speedup:.1f}x "
          f"({'identical answers' if comparison.consistent else 'MISMATCH'})")
    assert comparison.consistent, "cached and cold answers must agree"
    assert comparison.speedup >= 5.0, (
        f"expected >= 5x from caching, got {comparison.speedup:.1f}x"
    )

    # 5. Concurrency correctness: 4 workers vs 1 worker, identical outputs.
    queries = [f"edge({node}, b), edge(b, c)" for node in nodes[:12]]
    with QueryService(database, ServiceConfig(workers=4)) as concurrent:
        concurrent_counts = [
            future.result().count
            for future in [concurrent.submit(text) for text in queries]
        ]
    with QueryService(database, ServiceConfig(workers=1)) as serial:
        serial_counts = [serial.execute(text).count for text in queries]
    assert concurrent_counts == serial_counts
    print(f"\nconcurrent (4 workers) == serial (1 worker) on "
          f"{len(queries)} queries: OK")


if __name__ == "__main__":
    main()
