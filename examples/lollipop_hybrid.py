"""Lollipop queries and the Minesweeper + LFTJ hybrid (§4.12).

Run with::

    python examples/lollipop_hybrid.py

Lollipop queries glue a path (good for Minesweeper's caching) to a clique
(good for LFTJ's simultaneous narrowing).  The example decomposes the
2-lollipop structurally, then times pure LFTJ, pure Minesweeper, and the
hybrid on a clique-rich dataset, mirroring the lb/hybrid rows of Table 7.
"""

from __future__ import annotations

from repro import Database, QueryEngine
from repro.data import load_dataset
from repro.data.sampling import attach_samples
from repro.joins.hybrid import HybridMinesweeperLeapfrog, split_query
from repro.queries import build_query


def main() -> None:
    query = build_query("2-lollipop")
    path_atoms, clique_atoms, interface = split_query(query)
    print("2-lollipop query:", query)
    print("  path part:  ", ", ".join(str(query.atoms[i]) for i in path_atoms))
    print("  clique part:", ", ".join(str(query.atoms[i]) for i in clique_atoms))
    print("  interface variables:", ", ".join(sorted(v.name for v in interface)))
    print()

    database = Database([load_dataset("ego-Facebook")])
    attach_samples(database, selectivity=8, sample_names=("v1",))
    engine = QueryEngine(database, timeout=120.0)

    print(f"{'algorithm':<12} {'count':>8} {'seconds':>9}")
    for algorithm in ("lb/lftj", "lb/ms", "lb/hybrid"):
        result = engine.execute(query, algorithm=algorithm)
        count = "-" if result.count is None else f"{result.count:,}"
        print(f"{algorithm:<12} {count:>8} {result.cell(3):>9}")

    hybrid = HybridMinesweeperLeapfrog()
    hybrid.count(database, query)
    print(f"\nhybrid clique-part evaluations: {hybrid.last_clique_evaluations}"
          f" (cache hits: {hybrid.last_clique_cache_hits})")


if __name__ == "__main__":
    main()
