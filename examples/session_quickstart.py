"""Client-API quickstart: connect → explain → streamed iteration → stats.

Run with::

    python examples/session_quickstart.py

One ``repro.connect()`` session replaces the per-entry-point kwarg sprawl:
``run(query, options)`` returns a lazy, streaming ``ResultSet`` — nothing
executes until you pull — and ``explain`` shows the plan the engine would
use (acyclicity class, attribute order, algorithm choice, partitioning,
and statistics-based size estimates) without executing anything.
"""

from __future__ import annotations

import repro

TRIANGLE = "edge(a, b), edge(b, c), edge(a, c), a < b, b < c"
TWO_HOP = "edge(a, b), edge(b, c)"


def main() -> None:
    # Connect to a catalog dataset; selectivity attaches the v1..v4 node
    # samples so every benchmark pattern is runnable.  The keyword
    # arguments become the session's default QueryOptions.
    session = repro.connect("ca-GrQc", selectivity=10, timeout=60.0)

    with session:
        # 1. Explain before running: the full plan report, no execution.
        print("=== explain ===")
        print(session.explain(TRIANGLE, parallel=4).render())

        # 2. Stream lazily: only the five consumed answers are computed,
        #    even though the two-hop join has a huge output.
        print("\n=== streamed iteration (first 5 of a large join) ===")
        result_set = session.run(TWO_HOP)
        for index, binding in enumerate(result_set):
            values = ", ".join(
                f"{name}={binding[variable]}" for name, variable in zip(
                    result_set.columns,
                    result_set.plan.prepared.query.variables,
                )
            )
            print(f"  answer {index}: {values}")
            if index == 4:
                break

        # 3. Fetch APIs compose with iteration on the same cursor.
        more = result_set.fetchmany(3)
        print(f"  next {len(more)} rows via fetchmany: {more}")

        # 4. count() uses the counting path — no tuple materialization —
        #    and the session's result cache makes repeats free.
        total = session.run(TRIANGLE).count()
        repeat = session.run(TRIANGLE)
        repeat_total = repeat.count()
        print(f"\n=== count + cache ===")
        print(f"  triangles: {total:,}")
        print(f"  repeat:    {repeat_total:,} "
              f"(result_cached={repeat.stats.result_cached})")

        # 5. Stats: what actually happened, per result set.
        partitioned = session.run(TRIANGLE, parallel=2, use_cache=False)
        partitioned.fetchall()
        print("\n=== stats ===")
        for key, value in sorted(partitioned.stats.__dict__.items()):
            print(f"  {key}: {value}")
        print("  session caches:", session.stats().as_dict())


if __name__ == "__main__":
    main()
