"""A guided tour of Minesweeper's internals (the ideas of §4).

Run with::

    python examples/minesweeper_anatomy.py

The example shows, on a real query:

1. the gap boxes an input index reports around a free tuple (Idea 3),
2. how the CDS stores them and computes the next free tuple (Ideas 1-2),
3. what the probe cache (Idea 4) and complete nodes (Idea 6) save, by
   running the same query with each optimisation toggled off,
4. the β-acyclic skeleton Minesweeper chooses for a cyclic query (Idea 7).
"""

from __future__ import annotations

import time

from repro import Database, MinesweeperJoin, MinesweeperOptions
from repro.data import load_dataset
from repro.joins.minesweeper.cds import ConstraintTree
from repro.joins.minesweeper.constraints import Constraint
from repro.queries import build_query
from repro.data.sampling import attach_samples


def demonstrate_cds() -> None:
    print("=== The constraint data structure (Figure 2 of the paper) ===")
    cds = ConstraintTree(width=5)
    first = Constraint(width=5, prefix=(), interval_position=2, low=5, high=7)
    second = Constraint(width=5, prefix=((2, 7),), interval_position=4, low=4, high=9)
    cds.insert_constraint(first)
    cds.insert_constraint(second)
    print(f"inserted: {first} and {second}")

    cds.set_frontier([2, 6, 6, 1, 3])
    cds.compute_free_tuple()
    print(f"free tuple after <*,*, (5,7), *, *>:      {cds.frontier}")
    cds.set_frontier([2, 6, 7, 1, 5])
    cds.compute_free_tuple()
    print(f"free tuple after adding <*,*,7,*,(4,9)>:  {cds.frontier}")
    print(f"CDS nodes allocated: {cds.node_count}\n")


def demonstrate_idea_ablation() -> None:
    print("=== Ideas 4 and 6 on a low-selectivity path query ===")
    database = Database([load_dataset("wiki-Vote")])
    attach_samples(database, selectivity=8)
    query = build_query("3-path")

    variants = {
        "all ideas on": MinesweeperOptions(),
        "no probe cache (Idea 4 off)": MinesweeperOptions(enable_probe_cache=False),
        "no complete nodes (Idea 6 off)": MinesweeperOptions(
            enable_complete_nodes=False),
        "baseline (everything off)": MinesweeperOptions.baseline(),
    }
    print(f"{'variant':<32} {'seconds':>9} {'index seeks':>12}")
    for label, options in variants.items():
        algorithm = MinesweeperJoin(options=options)
        started = time.perf_counter()
        count = algorithm.count(database, query)
        elapsed = time.perf_counter() - started
        seeks = sum(entry["index_seeks"]
                    for entry in algorithm.last_statistics.probe_statistics)
        print(f"{label:<32} {elapsed:>9.3f} {seeks:>12,}")
    print(f"(output count: {count:,})\n")


def demonstrate_skeleton() -> None:
    print("=== Idea 7: the beta-acyclic skeleton of cyclic queries ===")
    for name in ("3-clique", "4-clique", "4-cycle"):
        query = build_query(name)
        skeleton = MinesweeperJoin._skeleton_atoms(query)
        kept = [str(query.atoms[i]) for i in sorted(skeleton)]
        dropped = [str(query.atoms[i]) for i in range(len(query.atoms))
                   if i not in skeleton]
        print(f"{name:<10} CDS-inserting atoms: {', '.join(kept)}")
        print(f"{'':<10} frontier-only atoms:  {', '.join(dropped)}")
    print()


def main() -> None:
    demonstrate_cds()
    demonstrate_idea_ablation()
    demonstrate_skeleton()


if __name__ == "__main__":
    main()
