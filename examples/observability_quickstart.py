"""Observability quickstart: metrics → tracing → EXPLAIN ANALYZE → slow log.

Run with::

    python examples/observability_quickstart.py

Everything in :mod:`repro.obs` is stdlib-only and always on: counters
and histograms accumulate in a process-global registry as queries run,
``trace=True`` records a per-query span tree, ``explain_analyze`` pairs
the static plan with what actually happened, and the service's
slow-query log captures offenders as structured JSON.
"""

from __future__ import annotations

import repro
from repro.data.catalog import load_dataset
from repro.data.sampling import attach_samples
from repro.obs import configure_logging, explain_analyze, global_registry
from repro.obs.trace import render
from repro.service import QueryService, ServiceConfig
from repro.storage import Database

TRIANGLE = "edge(a, b), edge(b, c), edge(a, c), a < b, b < c"
PATH = "v1(a), edge(a, b), edge(b, c), v2(c)"


def main() -> None:
    # JSON logs on stderr; stdout stays human-readable.
    configure_logging(level="info")

    session = repro.connect("ca-GrQc", selectivity=10)
    with session:
        # 1. Tracing: run with trace=True and read the span tree off the
        #    result stats — plan, execute, and join phases with timings.
        print("=== traced run ===")
        result = session.run(TRIANGLE, trace=True)
        rows = result.fetchall()
        print(render(result.stats.trace))
        print(f"({len(rows)} triangles)\n")

        # 2. EXPLAIN ANALYZE: the static plan report annotated with
        #    actual per-operator times, rows, and cache provenance.
        #    (Also available as: repro analyze '<query>')
        print("=== explain analyze ===")
        print(explain_analyze(session, PATH, algorithm="ms").render())
        print()

    # 3. The slow-query log lives on the service; threshold 0 records
    #    every query (the CLI flag is --slow-query-threshold).
    database = Database([load_dataset("ca-GrQc")])
    attach_samples(database, 10, sample_names=("v1", "v2", "v3", "v4"))
    config = ServiceConfig(slow_query_seconds=0.0)
    with QueryService(database, config) as service:
        service.execute(TRIANGLE, mode="count")
        print("=== slow-query log ===")
        for entry in service.slow_query_log.recent():
            print(f"  {entry['seconds']:.4f}s  [{entry['algorithm']}] "
                  f"{entry['query']}")
        print()

    # 4. Metrics: everything above accumulated in the global registry;
    #    this is what `repro metrics` prints and what a running server
    #    exposes over the wire via `repro metrics --connect URL`.
    print("=== metrics (certificate + cache excerpts) ===")
    for line in global_registry().render().splitlines():
        if line.startswith(("repro_requests_total",
                            "repro_cache_requests_total",
                            "repro_ms_certificate_size_count",
                            "repro_ms_certificate_size_sum",
                            "repro_query_seconds_count")):
            print(f"  {line}")


if __name__ == "__main__":
    main()
