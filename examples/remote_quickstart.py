"""Remote-serving quickstart: server → remote session → cursors → async.

Run with::

    python examples/remote_quickstart.py

A ``repro server`` and its clients in one process: the example stands up
the asyncio wire server on an ephemeral port (the same
:class:`~repro.net.server.ReproServer` behind ``repro server``), connects
with ``repro.connect("repro://...")``, and shows what the network layer
preserves from the local client API:

* **the same surface** — ``run(query, options) -> result set``,
  ``explain``, ``close``; error classes survive the wire;
* **server-side cursors** — ``fetchmany(k)`` pulls exactly ``k`` rows
  from the server's executor, so peeking at a huge join costs O(k);
* **an async variant** — ``await session.run(...)`` with ``async for``.
"""

from __future__ import annotations

import asyncio

import repro
from repro.data.catalog import load_dataset
from repro.data.sampling import attach_samples
from repro.net.client import connect_async
from repro.net.server import ServerThread
from repro.service import QueryService
from repro.storage import Database

TRIANGLE = "edge(a, b), edge(b, c), edge(a, c), a < b, b < c"
TWO_HOP = "edge(a, b), edge(b, c)"


async def async_demo(url: str) -> None:
    async with await connect_async(url) as session:
        result_set = await session.run(TRIANGLE, limit=3)
        print("async, first 3 triangles:")
        async for binding in result_set:
            print("  ", {v.name: value for v, value in binding.items()})


def main() -> None:
    database = Database([load_dataset("ca-GrQc")])
    attach_samples(database, 10, sample_names=("v1", "v2", "v3", "v4"))

    # One shared service: every connection hits the same plan/result
    # caches and the same admission-controlled worker pool.
    with QueryService(database) as service:
        with ServerThread(service) as server:
            print(f"server listening on {server.url}\n")

            # repro.connect dispatches on the URL scheme.
            with repro.connect(server.url) as session:
                print("server hello:", session.server_info["relations"])

                # Server-side cursor: run executes nothing; each
                # fetchmany(k) advances the server's stream by exactly k.
                result_set = session.run(TWO_HOP)
                first = result_set.fetchmany(5)
                print(f"\nfirst 5 of {session.run(TWO_HOP).count():,} "
                      f"two-hop paths (only 5 crossed the wire): {first}")

                # The count path and a cached re-run: a fully drained
                # stream feeds the server's result cache, the repeat is
                # served from it.
                print("triangles:", session.run(TRIANGLE).count())
                session.run(TRIANGLE).fetchall()
                hot = session.run(TRIANGLE)
                hot.fetchall()
                print("re-run served from the server's result cache:",
                      hot.stats.result_cached)

                # explain, rendered server-side.
                print("\n=== explain (over the wire) ===")
                print(session.explain(TRIANGLE).render())

                # Errors keep their class across the network.
                try:
                    session.run("edge(a,")
                except repro.ParseError as error:
                    print(f"\nremote parse error, caught as "
                          f"ParseError: {error}")

                stats = session.stats()
                print("\nper-connection stats:", stats["connection"])
                print("cursor stats:", stats["cursors"])

            asyncio.run(async_demo(server.url))


if __name__ == "__main__":
    main()
