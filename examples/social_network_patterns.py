"""Graph-pattern mining across systems on SNAP-shaped datasets.

Run with::

    python examples/social_network_patterns.py

This example reproduces the *story* of the paper's Tables 6 and 7 in
miniature: it runs a cyclic query (triangles) and an acyclic query
(3-paths between sampled endpoints) over several datasets with different
structural regimes, comparing the worst-case optimal join (LFTJ),
Minesweeper, and the conventional baselines.  Watch how the conventional
engines fall behind on the clique query over the dense ego network while
staying competitive on the path query.
"""

from __future__ import annotations

from repro.bench import BenchmarkConfig, format_table, run_grid

DATASETS = ("p2p-Gnutella04", "ca-GrQc", "ego-Facebook", "wiki-Vote")
SYSTEMS = ("lb/lftj", "lb/ms", "psql", "monetdb", "graphlab")


def main() -> None:
    config = BenchmarkConfig(timeout=30.0, repetitions=2, warmup_discard=1)

    cyclic_cells = run_grid(
        systems=SYSTEMS,
        dataset_names=DATASETS,
        query_names=("3-clique",),
        config=config,
    )
    print(format_table("Triangles (cyclic query), seconds per system",
                       cyclic_cells, rows="dataset", columns="system"))
    print()

    acyclic_cells = run_grid(
        systems=("lb/lftj", "lb/ms", "psql", "monetdb"),
        dataset_names=DATASETS,
        query_names=("3-path",),
        selectivities=(8,),
        config=config,
    )
    print(format_table("3-paths between sampled endpoints (acyclic query), "
                       "seconds per system",
                       acyclic_cells, rows="dataset", columns="system"))

    print("\ncounts per dataset (all finishing systems agree):")
    for dataset in DATASETS:
        counts = {cell.count for cell in cyclic_cells
                  if cell.dataset == dataset and cell.succeeded}
        print(f"  {dataset:<18} triangles = {counts.pop():,}")


if __name__ == "__main__":
    main()
