"""Prepared-statement quickstart: compile once, execute many.

Run with::

    python examples/prepared_quickstart.py

``session.prepare(text)`` pays the front of the query pipeline — parse,
hypergraph analysis, attribute-order selection — exactly once and hands
back a handle whose ``run()``/``count()``/``explain()`` reuse the
compiled shape.  The same surface exists on all three sessions:

* **local** — the handle wraps the engine's ``PreparedQuery`` directly;
* **remote (sync)** — ``prepare`` registers the shape server-side
  per connection (idle TTL + cap, like cursors) and every execute
  travels as a tiny ``{handle, options}`` frame: zero re-parses, and
  the plan cache is already warm;
* **remote (async)** — the same handles multiplex over one pipelined
  connection, so N concurrent executes share one socket.

Handles also *heal*: if the server expires or restarts away a handle,
the next execute re-prepares transparently — a prepared handle survives
everything short of you closing it.
"""

from __future__ import annotations

import asyncio
import time

import repro
from repro.data.catalog import load_dataset
from repro.data.sampling import attach_samples
from repro.net.client import connect_async
from repro.net.server import ServerThread
from repro.service import QueryService
from repro.storage import Database

TRIANGLE = "edge(a, b), edge(b, c), edge(a, c), a < b, b < c"
TWO_HOP = "edge(a, b), edge(b, c)"


def local_demo(database: Database) -> None:
    print("=== local session ===")
    with repro.Session(database) as session:
        with session.prepare(TRIANGLE) as stmt:
            print(f"prepared {stmt.text!r} -> algorithm={stmt.algorithm}")
            # Every run reuses the compiled shape: no parse, no analysis.
            print("triangles:", stmt.run().count())
            print("first 3:", stmt.run(limit=3).fetchall())
            print("explain reuses the plan:",
                  stmt.explain().as_dict()["algorithm"])


def remote_demo(url: str) -> None:
    print("\n=== remote session ===")
    with repro.connect(url) as session:
        stmt = session.prepare(TWO_HOP)
        print(f"prepared handle: {stmt!r}")

        # Executes ship only the handle — the text never crosses the
        # wire again, and the server never re-parses it.
        started = time.perf_counter()
        for _ in range(50):
            stmt.run(limit=10).fetchall()
        elapsed = (time.perf_counter() - started) * 1000
        print(f"50 prepared executes: {elapsed:.1f} ms total")

        # Preparing the same shape again dedups server-side.
        again = session.prepare(TWO_HOP)
        stats = session.stats()["prepared"]
        print(f"server prepared-statement stats: {stats}")
        again.close()
        stmt.close()


async def async_demo(url: str) -> None:
    print("\n=== async session (pipelined executes) ===")
    async with await connect_async(url) as session:
        stmt = await session.prepare(TRIANGLE)

        async def count_once() -> int:
            result_set = await stmt.run()
            return await result_set.count()

        # Six executes of one prepared handle, multiplexed on one socket.
        counts = await asyncio.gather(*[count_once() for _ in range(6)])
        print("six pipelined prepared counts:", counts)
        await stmt.close()


def main() -> None:
    database = Database([load_dataset("ca-GrQc")])
    attach_samples(database, 10, sample_names=("v1", "v2", "v3", "v4"))

    local_demo(database)

    with QueryService(database) as service:
        with ServerThread(service) as server:
            remote_demo(server.url)
            asyncio.run(async_demo(server.url))


if __name__ == "__main__":
    main()
