"""Quickstart: load a graph, run a graph-pattern query with every algorithm.

Run with::

    python examples/quickstart.py

The example builds a small synthetic social graph, expresses the triangle
query in the paper's Datalog-ish syntax, and evaluates it with the naive
oracle, Leapfrog Triejoin, Minesweeper, and the conventional baselines,
printing the count and the wall-clock time of each.  It finishes with the
AGM worst-case output bound for the query on this database.
"""

from __future__ import annotations

import time

from repro import (
    Database,
    QueryEngine,
    agm_bound,
    edge_relation_from_pairs,
    parse_query,
)
from repro.data import load_dataset


def main() -> None:
    # A small dataset from the catalog: the ca-GrQc stand-in.
    edge = load_dataset("ca-GrQc")
    database = Database([edge])
    print(f"graph: {len(edge) // 2} undirected edges, "
          f"{len(edge.active_domain())} nodes")

    triangle = parse_query("edge(a, b), edge(b, c), edge(a, c), a < b < c")
    print(f"\nquery: {triangle}")

    engine = QueryEngine(database, timeout=60.0)
    print(f"\n{'algorithm':<12} {'count':>8} {'seconds':>9}")
    for algorithm in ("naive", "psql", "monetdb", "lftj", "ms", "graphlab"):
        started = time.perf_counter()
        count = engine.count(triangle, algorithm=algorithm)
        elapsed = time.perf_counter() - started
        print(f"{algorithm:<12} {count:>8} {elapsed:>9.4f}")

    size = len(edge)
    bound = agm_bound(triangle, {0: size, 1: size, 2: size})
    print(f"\nAGM worst-case output bound: {bound:,.0f} tuples "
          f"(actual output is far smaller on real graphs)")

    # The same engine runs acyclic path queries; Minesweeper is the
    # automatic choice for them.
    path = parse_query("edge(a, b), edge(b, c), edge(c, d)")
    chosen = engine.select_algorithm(path)
    print(f"\n3-hop path query routed to: {chosen}")
    print(f"path count: {engine.count(path):,}")


if __name__ == "__main__":
    main()
