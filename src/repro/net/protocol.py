"""The wire protocol: length-prefixed frames and error envelopes.

One frame is a 4-byte big-endian unsigned length followed by that many
bytes of body.  The high bit of the length word selects the body
encoding (the frame cap is far below 2**31, so the bit is free):

==========  ==========================================================
prefix bit  body
==========  ==========================================================
``0``       UTF-8 JSON object (all requests and control responses)
``1``       binary columnar: 4-byte header length, UTF-8 JSON header,
            then concatenated column blocks (``fetch`` row pages)
==========  ==========================================================

A binary header is a normal response object plus ``"n"`` (row count)
and ``"cols"`` (``[kind, count, nbytes]`` per column, see
:mod:`repro.net.columnar`); the frame readers decode it transparently,
handing back the same dict a JSON frame would carry with ``rows``
already materialized.  Binary frames are **negotiated**: the client
advertises ``encodings`` in ``hello``, the server answers with the
ones it supports, and the client then asks for binary per ``fetch``
request — old peers on either side simply never leave JSON.

Requests carry a client-chosen ``id`` (monotonically increasing per
connection) and an ``op``.  Ids are what make **pipelining** work: a
client may send many requests on one connection without waiting, the
server dispatches them concurrently, and each response echoes the id of
the request it answers — responses may therefore arrive *out of order*,
and a client multiplexing a connection must match them by id rather
than by position.  (A client that sends one request at a time per
connection still sees strictly ordered responses.)

::

    {"id": 7, "op": "run", "query": "edge(a,b), edge(b,c)",
     "options": {"algorithm": "auto", ...}}

Responses echo the ``id`` and carry ``ok``::

    {"id": 7, "ok": true, "cursor": 3, "columns": ["a", "b"], ...}
    {"id": 7, "ok": false, "error": {"code": "parse", "exit_code": 3,
                                     "message": "..."}}

The error envelope maps onto the :class:`~repro.errors.ReproError`
taxonomy, carrying the same distinct exit codes the CLI uses (3 parse,
4 unknown algorithm, 5 bad options, 6 timeout, 1 anything else), so a
remote failure re-raises client-side as the *same exception class* and an
existing ``except ParseError`` — including the CLI's own error mapping —
keeps working unchanged across the network boundary.

Operations
----------
=============== ==================================== =========================
op              request fields                       response fields
=============== ==================================== =========================
``hello``       [encodings]                          server, protocol, version,
                                                     relations, encodings,
                                                     encoding
``run``         query, options                       columns, algorithm,
                                                     shards, partitioning,
                                                     plan_cached
``prepare``     query, options                       handle, columns,
                                                     algorithm, ...
``execute``     handle, options                      columns, algorithm, ...
``deallocate``  handle                               deallocated
``cursor``      query|handle, options                cursor
``fetch``       cursor, size[, encoding]             rows, done[, stats]
``close``       cursor                               closed
``count``       query|handle, options                count, algorithm, shards,
                                                     result_cached
``explain``     query, options                       report, rendered
``stats``       —                                    connection, cursors,
                                                     prepared, service
``metrics``     —                                    metrics (Prometheus text)
``events``      [limit]                              events (flight recorder;
                                                     limit must be ≥ 1)
``cluster_run`` query, options, hop[, peers]         columns, algorithm,
                                                     shards, partitioning,
                                                     route, fanout
``cluster_count`` query, options, hop[, peers,       count, shards, seconds,
                trace_id]                            shard_map, hedges,
                                                     reroutes, fanout
``cluster_cursor`` query, options, hop[, peers,      cursor, shards, seconds,
                trace_id]                            shard_map, hedges,
                                                     reroutes, fanout
``goodbye``     —                                    goodbye
=============== ==================================== =========================

``run`` only validates and plans — no cursor, no execution, no server
state.  The client opens a **server-side cursor** (the ``cursor`` op)
when it first fetches; each ``fetch`` then pulls exactly ``size`` more
rows from the executor's stream, so consuming *k* rows of a huge join
costs O(k) end-to-end, and a result set that is only counted or never
consumed pins nothing on the server.

``prepare`` compiles a query once and registers the compiled shape
per-connection (idle TTL + cap, like cursors); ``execute``, ``cursor``
and ``count`` may then reference the ``handle`` instead of resending
query text, skipping parse/analysis/attribute-ordering on every call
and letting the plan cache key on the prepared text.

The ``cluster_*`` ops are **peer coordination**: a frame with ``hop=0``
asks the receiving server to sub-shard the query across its peer fleet
(the frame's ``peers`` list, or the server's ``--peers`` configuration)
and merge the answers *before* replying, so only the merged answer
crosses the final hop.  Every sub-request the merging server dispatches
is stamped ``hop=1`` — a server receiving ``hop >= 1`` executes the
shard locally and never re-fans-out, whatever topology the frame names,
which is what makes routing loops impossible.  A merged tuple answer
streams back through the ordinary cursor registry: the ``cluster_cursor``
response carries a plain ``cursor`` id and the client pages it with
``fetch`` frames, so ``fetchmany(k)`` stays O(k) on the client hop.
"""

from __future__ import annotations

import json
import struct
from typing import (
    Awaitable,
    Callable,
    Dict,
    NoReturn,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.errors import (
    AdmissionError,
    CursorError,
    DatasetError,
    ExecutionError,
    FrameError,
    NetworkError,
    OptionsError,
    ParseError,
    PlanningError,
    PreparedError,
    ProtocolError,
    QueryError,
    ReproError,
    SchemaError,
    ServiceError,
    StorageError,
    TimeoutExceeded,
    UnknownAlgorithmError,
    WorkloadError,
)
from repro.net import columnar

#: Bumped on incompatible protocol changes; exchanged in ``hello``.
#: Version 2 added binary columnar fetch frames and prepared-statement
#: handles; version-1 peers keep working (new fields are additive and
#: binary frames are only sent when asked for).
PROTOCOL_VERSION = 2

#: Row-page encodings this build can speak, preference first.
WIRE_ENCODINGS = ("binary", "json")

#: Hard upper bound on one frame.  Large answers stream as many ``fetch``
#: pages, so a frame this size indicates a broken peer, not a big result.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: High bit of the length prefix marks a binary columnar body.  Safe
#: because ``MAX_FRAME_BYTES`` (2**26) is far below 2**31.
BINARY_FLAG = 0x80000000

_LENGTH = struct.Struct("!I")

#: The full error taxonomy on the wire, most-specific first (the first
#: ``isinstance`` match wins), so a remote failure re-raises as exactly
#: the class an in-process call would have raised.  ``exit_code``
#: mirrors ``repro.cli`` (3 parse, 4 unknown algorithm, 5 bad options,
#: 6 timeout, 1 everything else).
_ERROR_TABLE: Tuple[Tuple[str, Type[ReproError], int], ...] = (
    ("parse", ParseError, 3),
    ("unknown_algorithm", UnknownAlgorithmError, 4),
    ("options", OptionsError, 5),
    ("timeout", TimeoutExceeded, 6),
    ("query", QueryError, 1),
    ("execution", ExecutionError, 1),
    ("planning", PlanningError, 1),
    ("schema", SchemaError, 1),
    ("storage", StorageError, 1),
    ("dataset", DatasetError, 1),
    ("cursor", CursorError, 1),
    ("prepared", PreparedError, 1),
    ("admission", AdmissionError, 1),
    ("workload", WorkloadError, 1),
    ("protocol", ProtocolError, 1),
    ("network", NetworkError, 1),
    ("service", ServiceError, 1),
    ("error", ReproError, 1),
)

_CODE_TO_CLASS: Dict[str, Type[ReproError]] = {
    code: cls for code, cls, _ in _ERROR_TABLE
}


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """Serialize one JSON frame: 4-byte length prefix + UTF-8 JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit",
            size=len(body),
            limit=MAX_FRAME_BYTES,
        )
    return _LENGTH.pack(len(body)) + body


def encode_binary_frame(header: dict, blocks: Sequence[bytes]) -> bytes:
    """Serialize one binary columnar frame.

    ``header`` must already carry the ``"cols"`` descriptors and ``"n"``
    row count matching ``blocks`` (see :func:`repro.net.columnar.
    encode_columns`); this function only frames them.
    """
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    size = _LENGTH.size + len(head) + sum(len(block) for block in blocks)
    if size > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {size} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit",
            size=size,
            limit=MAX_FRAME_BYTES,
        )
    parts = [_LENGTH.pack(size | BINARY_FLAG), _LENGTH.pack(len(head)), head]
    parts.extend(blocks)
    return b"".join(parts)


def _decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not valid JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def _decode_binary_body(body: bytes) -> dict:
    if len(body) < _LENGTH.size:
        raise ProtocolError(
            f"binary frame of {len(body)} bytes is too short for its "
            f"header length"
        )
    (head_size,) = _LENGTH.unpack_from(body)
    head_end = _LENGTH.size + head_size
    if head_end > len(body):
        raise ProtocolError(
            f"binary frame header of {head_size} bytes overruns the "
            f"{len(body)}-byte frame"
        )
    header = _decode_body(body[_LENGTH.size:head_end])
    meta = header.pop("cols", [])
    count = header.pop("n", 0)
    try:
        columns = columnar.decode_columns(meta, body, head_end)
        header["rows"] = columnar.rows_from_columns(columns, count)
    except (ValueError, TypeError) as error:
        raise ProtocolError(
            f"malformed binary columnar frame: {error}"
        ) from None
    return header


def _decode_length(prefix: bytes) -> Tuple[int, bool]:
    """Split the length word into (body size, is-binary flag)."""
    (word,) = _LENGTH.unpack(prefix)
    binary = bool(word & BINARY_FLAG)
    length = word & (BINARY_FLAG - 1)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"peer announced a {length}-byte frame, over the "
            f"{MAX_FRAME_BYTES}-byte limit",
            size=length,
            limit=MAX_FRAME_BYTES,
        )
    return length, binary


def read_frame(read: Callable[[int], bytes]) -> Optional[dict]:
    """Read one frame from a blocking byte source.

    ``read(n)`` must behave like ``io.RawIOBase.read`` on a blocking
    stream: return up to ``n`` bytes, or ``b""`` at EOF.  Returns the
    decoded frame, or ``None`` on a clean EOF at a frame boundary; EOF
    in the middle of a frame raises :class:`ProtocolError`.
    """
    prefix = _read_exact(read, _LENGTH.size, at_boundary=True)
    if prefix is None:
        return None
    length, binary = _decode_length(prefix)
    body = _read_exact(read, length, at_boundary=False)
    body = body if body is not None else b""
    return _decode_binary_body(body) if binary else _decode_body(body)


def _read_exact(read: Callable[[int], bytes], size: int,
                at_boundary: bool) -> Optional[bytes]:
    chunks = []
    remaining = size
    while remaining:
        chunk = read(remaining)
        if not chunk:
            if at_boundary and remaining == size:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({size - remaining} of "
                f"{size} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


async def read_frame_async(
        readexactly: Callable[[int], Awaitable[bytes]]) -> Optional[dict]:
    """The asyncio twin of :func:`read_frame`.

    ``readexactly`` is :meth:`asyncio.StreamReader.readexactly` (or any
    coroutine with its contract: raises ``IncompleteReadError`` on EOF).
    """
    import asyncio

    try:
        prefix = await readexactly(_LENGTH.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            "connection closed mid-frame (in the length prefix)"
        ) from None
    length, binary = _decode_length(prefix)
    try:
        body = await readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise ProtocolError(
            f"connection closed mid-frame ({len(error.partial)} of "
            f"{error.expected} body bytes read)"
        ) from None
    return _decode_binary_body(body) if binary else _decode_body(body)


# ----------------------------------------------------------------------
# Responses and error envelopes
# ----------------------------------------------------------------------
def ok_response(request_id: object, **body) -> dict:
    """A success response echoing ``request_id``."""
    return {"id": request_id, "ok": True, **body}


def classify_error(error: ReproError) -> Tuple[str, int]:
    """The (wire code, CLI exit code) for an exception, most-specific first."""
    for code, cls, exit_code in _ERROR_TABLE:
        if isinstance(error, cls):
            return code, exit_code
    return "error", 1


def error_envelope(error: ReproError) -> dict:
    """Serialize an exception into the wire error envelope."""
    code, exit_code = classify_error(error)
    envelope = {"code": code, "exit_code": exit_code, "message": str(error)}
    if isinstance(error, TimeoutExceeded):
        envelope["elapsed"] = error.elapsed
        envelope["budget"] = error.budget
    return envelope


def error_response(request_id: object, error: ReproError) -> dict:
    """A failure response echoing ``request_id``."""
    return {"id": request_id, "ok": False, "error": error_envelope(error)}


def raise_remote_error(envelope: object) -> NoReturn:
    """Re-raise a server-reported failure as its original exception class.

    Unknown or malformed envelopes degrade to :class:`ReproError` rather
    than hiding the failure behind a protocol error.
    """
    if not isinstance(envelope, dict):
        raise ReproError(f"server reported an unintelligible error: {envelope!r}")
    code = envelope.get("code", "error")
    message = envelope.get("message", "remote execution failed")
    if code == "timeout":
        raise TimeoutExceeded(
            float(envelope.get("elapsed", 0.0)),
            float(envelope.get("budget", 0.0)),
        )
    raise _CODE_TO_CLASS.get(code, ReproError)(message)
