""":class:`ReproServer` — the asyncio TCP front end over one shared service.

Every connection speaks the length-prefixed JSON protocol of
:mod:`repro.net.protocol` against one shared
:class:`~repro.service.QueryService`: all clients hit the *same* plan and
result caches, and every piece of blocking work (planning, cursor
fetches, counts, explains) runs on the service's worker pool — so the
pool's admission control backpressures remote clients exactly like local
ones, and the event loop itself never blocks on query execution.

Requests on one connection are **pipelined**: the read loop dispatches
every arriving frame as its own task (up to ``max_pipeline`` in flight),
so a client may send many requests without waiting and the responses
come back *as they complete* — out of order, matched by the request ids
already on the wire.  Fetches on one cursor stay serialized by the
registry's busy-guard (a stream has a single position); everything else
overlaps freely on the worker pool.

Results never ship whole.  A ``run`` opens a **server-side cursor** (a
lazy :class:`~repro.api.result.ResultSet` parked in the connection's
:class:`~repro.service.cursors.CursorRegistry`) and each ``fetch`` pulls
exactly the requested number of rows off the stream; idle cursors expire
on a background sweep so abandoned clients cannot pin executor state.

Shutdown is graceful: :meth:`ReproServer.run` installs SIGINT/SIGTERM
handlers that stop accepting connections, close every open cursor, and
return — the CLI then drains the worker pool by closing the service.

:class:`ServerThread` runs a server on a private event loop in a daemon
thread — the harness the tests and the remote-vs-local benchmark use to
stand up a real serving boundary in-process.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.api.result import ResultStats
from repro.api.session import Session
from repro.errors import (
    OptionsError,
    ProtocolError,
    ReproError,
    ServiceError,
    TimeoutExceeded,
)
from repro.exec.partitioner import Cell, Partitioner, PartitionScheme
from repro.net import columnar, protocol
from repro.obs.events import global_events
from repro.obs.logs import get_logger
from repro.obs.metrics import global_registry
from repro.service.cursors import CursorRegistry
from repro.service.prepared import PreparedRegistry
from repro.service.service import QueryService

_log = get_logger("net.server")

#: Default server port; unassigned in the IANA registry.
DEFAULT_PORT = 9944

#: Hard cap on one fetch request, protocol-level (cursors stay lazy, a
#: client wanting more issues more fetches).
MAX_FETCH_SIZE = 65536

#: Shard catalogs the server keeps warm for distributed coordinators —
#: one entry per (query, scheme, cell, catalog version), so repeated
#: shard executions skip re-filtering the input relations.
MAX_SHARD_SESSIONS = 32

#: Peer coordinators the server keeps alive, one per distinct peer list
#: (the configured ``--peers`` fleet plus any client-supplied lists).
MAX_PEER_COORDINATORS = 4


@dataclass
class ConnectionStats:
    """Per-connection counters, reported by the ``stats`` op."""

    requests: int = 0
    queries: int = 0
    counts: int = 0
    explains: int = 0
    errors: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests,
            "queries": self.queries,
            "counts": self.counts,
            "explains": self.explains,
            "errors": self.errors,
        }


class _MergedRows:
    """A peer-merged answer wearing the server-cursor interface.

    The gather already materialized (the merge needs every shard), so
    this is a position over a list — but parking it in the connection's
    :class:`~repro.service.cursors.CursorRegistry` lets the client page
    it with ordinary ``fetch`` frames: ``fetchmany(k)`` ships O(k) rows
    on the final hop regardless of how much the peers sent the merging
    server, and the drain path (stats, stitched trace, slow-log
    observation) is shared with single-node cursors.
    """

    def __init__(self, rows, query: str, options: dict, info: dict,
                 meta: dict, plan) -> None:
        self._rows = list(rows)
        self._position = 0
        scheme = plan.scheme
        self.stats = ResultStats(
            query=query,
            algorithm=meta["algorithm"],
            requested_algorithm=meta.get("requested_algorithm",
                                         meta["algorithm"]),
            partitioning=scheme.key() if scheme is not None else "serial",
            shards=plan.shards,
            plan_cached=meta.get("plan_cached", False),
            result_cached=False,
            plan_seconds=0.0,
            execution_seconds=info.get("seconds") or 0.0,
            rows_delivered=0,
            complete=True,
            limit=options.get("limit"),
            total=len(self._rows),
            trace=info.get("trace"),
        )
        # _op_fetch's drain path forwards this to observe_query, which
        # correlates the merged query with the client's trace id.
        trace_id = info.get("trace_id")
        self._wire_context = {"trace_id": trace_id} if trace_id else {}

    def fetchmany(self, size: int):
        page = self._rows[self._position:self._position + size]
        self._position += len(page)
        return page

    @property
    def drained(self) -> bool:
        return self._position >= len(self._rows)

    def close(self) -> None:
        self._rows = []


class _Connection:
    """One client connection: cursors, prepared statements, counters,
    transport, in-flight tasks."""

    def __init__(self, cursor_ttl: Optional[float], max_cursors: int,
                 prepared_ttl: Optional[float], max_prepared: int,
                 writer: asyncio.StreamWriter) -> None:
        self.registry = CursorRegistry(ttl=cursor_ttl,
                                       max_cursors=max_cursors)
        self.prepared = PreparedRegistry(ttl=prepared_ttl,
                                         max_statements=max_prepared)
        self.stats = ConnectionStats()
        self.writer = writer
        # Responses from pipelined requests interleave on one socket;
        # the lock keeps each frame write atomic.
        self.write_lock = asyncio.Lock()
        self.tasks: Set[asyncio.Task] = set()


class ReproServer:
    """Serve a :class:`~repro.service.QueryService` over TCP.

    Parameters
    ----------
    service:
        The shared service; its session, caches, and worker pool are the
        execution surface for every connection.  The server borrows it —
        the caller closes it (which drains the pool) after :meth:`stop`.
    host / port:
        Bind address.  ``port=0`` picks an ephemeral port, readable from
        :attr:`port` (and :attr:`url`) after :meth:`start`.
    cursor_ttl:
        Idle expiry for server-side cursors, seconds (``None`` disables).
    max_cursors:
        Per-connection open-cursor bound.
    prepared_ttl:
        Idle expiry for prepared-statement handles, seconds (``None``
        disables).
    max_prepared:
        Per-connection prepared-statement bound.
    max_pipeline:
        Per-connection bound on pipelined (in-flight) requests; when a
        client has this many unanswered requests the read loop simply
        stops reading its socket until one completes, so TCP backpressure
        does the queueing instead of server memory.
    peers:
        Comma-separated ``host:port`` list naming the fleet this server
        belongs to (normally including itself).  Enables **peer
        coordination**: a ``cluster_*`` frame with ``hop=0`` makes this
        server sub-shard the query across the fleet (each sub-request
        stamped ``hop=1`` so receivers never re-fan-out) and merge the
        answers before replying — only the merged answer crosses back
        to the client.  ``None`` (the default) keeps the server a plain
        single-node endpoint; ``cluster_*`` frames then need an explicit
        ``peers`` list in the request.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, *,
                 cursor_ttl: Optional[float] = 300.0,
                 max_cursors: int = 64,
                 prepared_ttl: Optional[float] = 300.0,
                 max_prepared: int = 64,
                 max_pipeline: int = 32,
                 peers: Optional[str] = None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.cursor_ttl = cursor_ttl
        self.max_cursors = max_cursors
        self.prepared_ttl = prepared_ttl
        self.max_prepared = max_prepared
        self.max_pipeline = max(1, int(max_pipeline))
        self.peers = peers
        # Peer coordinators, one per distinct peer list (LRU-bounded):
        # entries tuple -> PeerCoordinator.  Built lazily on the first
        # hop-0 cluster_* frame so plain servers pay nothing.
        self._peer_coordinators: "OrderedDict[tuple, object]" = OrderedDict()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        self._sweeper: Optional[asyncio.Task] = None
        # Shard-restricted execution state (the distributed coordinator's
        # server half): (text, scheme, cell, version) -> (Session over the
        # cell's catalog, rewritten per-atom-fragment query).
        self._shard_lock = threading.Lock()
        self._shard_sessions: "OrderedDict[tuple, Tuple[Session, object]]" \
            = OrderedDict()

    @property
    def url(self) -> str:
        # IPv6 bind addresses are bracketed so the printed URL feeds
        # straight back into parse_url / --connect.
        host = f"[{self.host}]" if ":" in self.host else self.host
        return f"repro://{host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        if self._server is not None:
            raise ServiceError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("server listening on %s", self.url,
                  extra={"data": {"url": self.url}})
        ttls = [ttl for ttl in (self.cursor_ttl, self.prepared_ttl)
                if ttl is not None]
        if ttls:
            interval = max(0.05, min(ttls) / 4)
            self._sweeper = asyncio.get_running_loop().create_task(
                self._sweep_idle_cursors(interval)
            )

    async def stop(self) -> None:
        """Stop accepting, disconnect every client, close cursors; idempotent.

        Live client transports are closed *before* awaiting
        ``wait_closed()``: since Python 3.12.1 that call waits for every
        connection handler to finish, and a handler parked in
        ``readexactly`` on an idle client would otherwise block shutdown
        forever.
        """
        if self._sweeper is not None:
            self._sweeper.cancel()
            self._sweeper = None
        if self._server is not None:
            self._server.close()
            for connection in list(self._connections):
                connection.writer.close()
            await self._server.wait_closed()
            self._server = None
            _log.info("server stopped", extra={"data": {"url": self.url}})
        for connection in list(self._connections):
            connection.registry.close_all()
            connection.prepared.close_all()
        coordinators = list(self._peer_coordinators.values())
        self._peer_coordinators.clear()
        for coordinator in coordinators:
            await coordinator.close()
        with self._shard_lock:
            shard_sessions = list(self._shard_sessions.values())
            self._shard_sessions.clear()
        for session, _ in shard_sessions:
            session.close()

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Start, run until ``stop`` is set, then shut down gracefully."""
        await self.start()
        try:
            await stop.wait()
        finally:
            await self.stop()

    def run(self, ready=None) -> None:
        """Block serving until SIGINT/SIGTERM; shut down gracefully.

        ``ready`` (optional) is called once the socket is bound — the CLI
        prints the URL from it, which matters with ``port=0``.
        """
        asyncio.run(self._run_with_signals(ready))

    async def _run_with_signals(self, ready) -> None:
        import signal

        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                # Platforms/threads without loop signal support fall back
                # to KeyboardInterrupt, handled by asyncio.run's cleanup.
                pass
        try:
            await self.start()
            if ready is not None:
                ready(self)
            await stop.wait()
        finally:
            await self.stop()
            for signum in installed:
                loop.remove_signal_handler(signum)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """Read frames and dispatch each as its own task (pipelining).

        The loop never waits for a response before reading the next
        frame: a client may keep ``max_pipeline`` requests in flight on
        one connection, their blocking work overlaps on the service's
        worker pool, and each response is written the moment it is ready
        — out of order, matched by request id.
        """
        connection = _Connection(self.cursor_ttl, self.max_cursors,
                                 self.prepared_ttl, self.max_prepared,
                                 writer)
        self._connections.add(connection)
        limiter = asyncio.Semaphore(self.max_pipeline)

        async def counted_readexactly(size: int) -> bytes:
            # Counting wrapper: every byte read off the socket — length
            # prefixes included — lands on the bytes-in counter.
            data = await reader.readexactly(size)
            global_registry().counter("repro_server_bytes_total").inc(
                len(data), direction="in"
            )
            return data

        try:
            while True:
                try:
                    frame = await protocol.read_frame_async(counted_readexactly)
                except ProtocolError:
                    break  # peer is speaking garbage; cut the connection
                if frame is None:
                    break
                global_registry().counter("repro_server_frames_total").inc(
                    direction="in", op=self._op_label(frame.get("op"))
                )
                await limiter.acquire()
                task = asyncio.get_running_loop().create_task(
                    self._serve_frame(connection, frame, limiter)
                )
                connection.tasks.add(task)
                task.add_done_callback(connection.tasks.discard)
                if frame.get("op") == "goodbye":
                    break  # stop reading; in-flight responses still flush
            if connection.tasks:
                await asyncio.gather(*list(connection.tasks),
                                     return_exceptions=True)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            for task in list(connection.tasks):
                task.cancel()
            connection.registry.close_all()
            connection.prepared.close_all()
            self._connections.discard(connection)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                # Loop teardown may cancel us during this last await (a
                # peer coordinator's connection can outlive stop());
                # everything is already closed, so finish cleanly rather
                # than surface a cancelled handler task.
                pass

    @classmethod
    def _op_label(cls, op: object) -> str:
        """Clamp the op to the known set so label cardinality is bounded."""
        return op if isinstance(op, str) and op in cls._OPS else "unknown"

    async def _serve_frame(self, connection: _Connection, frame: dict,
                           limiter: asyncio.Semaphore) -> None:
        """Dispatch one pipelined frame and write its response."""
        registry = global_registry()
        inflight = registry.gauge("repro_server_inflight")
        inflight.inc()
        try:
            response = await self._dispatch(connection, frame)
            binary = bool(response.pop("_binary", False))
            try:
                if binary:
                    rows = response.pop("rows", [])
                    meta, blocks = columnar.encode_columns(rows)
                    payload = protocol.encode_binary_frame(
                        dict(response, cols=meta, n=len(rows)), blocks
                    )
                else:
                    payload = protocol.encode_frame(response)
            except (ProtocolError, TypeError, ValueError) as error:
                # An unencodable response (oversized frame, stray
                # non-JSON value) must come back as an error
                # envelope, not kill the connection.
                connection.stats.errors += 1
                payload = protocol.encode_frame(protocol.error_response(
                    frame.get("id"),
                    ProtocolError(
                        f"response could not be encoded: {error}"
                    ),
                ))
                binary = False
            if frame.get("op") == "fetch" and response.get("ok"):
                encoding = "binary" if binary else "json"
                registry.counter("repro_wire_encoding_total").inc(
                    encoding=encoding
                )
                registry.histogram("repro_wire_fetch_payload_bytes").observe(
                    len(payload) - 4, encoding=encoding
                )
            registry.counter("repro_server_frames_total").inc(
                direction="out", op=self._op_label(frame.get("op"))
            )
            registry.counter("repro_server_bytes_total").inc(
                len(payload), direction="out"
            )
            async with connection.write_lock:
                connection.writer.write(payload)
                await connection.writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            pass  # peer vanished mid-write; the read loop tears down
        finally:
            inflight.dec()
            limiter.release()

    async def _sweep_idle_cursors(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            for connection in list(self._connections):
                connection.registry.expire_idle()
                connection.prepared.expire_idle()

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, connection: _Connection, frame: dict) -> dict:
        request_id = frame.get("id")
        connection.stats.requests += 1
        try:
            handler = self._OPS.get(frame.get("op"))
            if handler is None:
                raise ProtocolError(f"unknown op {frame.get('op')!r}")
            body = await handler(self, connection, frame)
            return protocol.ok_response(request_id, **body)
        except ReproError as error:
            connection.stats.errors += 1
            return protocol.error_response(request_id, error)
        except Exception as error:  # never kill the connection on a bug
            connection.stats.errors += 1
            return protocol.error_response(
                request_id, ReproError(f"internal server error: {error}")
            )

    async def _call(self, fn, *args):
        """Run blocking work on the service's worker pool.

        Admission control applies: a full queue raises
        :class:`~repro.errors.AdmissionError` here, which goes back to
        the client as an ``admission`` error envelope.
        """
        future = self.service.pool.submit(fn, *args)
        return await asyncio.wrap_future(future)

    @staticmethod
    def _query_and_options(frame: dict):
        query = frame.get("query")
        if not isinstance(query, str) or not query:
            raise ProtocolError("request needs a non-empty 'query' string")
        options = frame.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be a JSON object")
        return query, options

    @staticmethod
    def _handle_id(frame: dict) -> int:
        handle = frame.get("handle")
        if isinstance(handle, bool) or not isinstance(handle, int):
            raise ProtocolError("'handle' must be an integer id")
        return handle

    def _query_or_handle(self, connection: _Connection, frame: dict):
        """Resolve the request's query: prepared handle or raw text.

        Executing by handle hands the session the compiled
        :class:`~repro.engine.PreparedQuery` — no parse, no analysis —
        which is the entire point of preparing.
        """
        if frame.get("handle") is not None:
            statement = connection.prepared.resolve(self._handle_id(frame))
            query = statement.query
        else:
            query = frame.get("query")
            if not isinstance(query, str) or not query:
                raise ProtocolError(
                    "request needs a non-empty 'query' string or a "
                    "prepared 'handle'"
                )
        options = frame.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be a JSON object")
        return query, options

    @staticmethod
    def _adopt_trace_id(result_set, frame: dict) -> None:
        """Carry a client-chosen trace id into the server-side span tree."""
        trace_id = frame.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            result_set.adopt_trace_id(trace_id)

    @staticmethod
    def _span_context(frame: dict, shard=None) -> dict:
        """The coordinator-stamped shard span context of one request.

        A distributed dispatch carries ``span = {"id", "shard",
        "attempt"}`` next to ``trace_id``; hedges and re-routes of the
        same logical shard reuse the span id with distinct attempt
        tags, which is what lets two servers' logs correlate.
        """
        context: dict = {}
        trace_id = frame.get("trace_id")
        if isinstance(trace_id, str) and trace_id:
            context["trace_id"] = trace_id
        span = frame.get("span")
        if isinstance(span, dict):
            span_id = span.get("id")
            if isinstance(span_id, str) and span_id:
                context["span_id"] = span_id
            index = span.get("shard")
            if isinstance(index, int) and not isinstance(index, bool):
                context["shard"] = index
            attempt = span.get("attempt")
            if isinstance(attempt, str) and attempt:
                context["attempt"] = attempt
        if shard is not None:
            context["cell"] = str(tuple(shard[1]))
        return context

    @staticmethod
    def _adopt_span_context(result_set, context: dict) -> None:
        """Stamp the shard span context onto the server-side trace root."""
        annotations = {key: context[key]
                       for key in ("span_id", "shard", "attempt", "cell")
                       if key in context}
        if annotations:
            result_set.annotate_trace(**annotations)

    # -- shard-restricted execution -------------------------------------
    @staticmethod
    def _shard_request(frame: dict
                       ) -> Optional[Tuple[PartitionScheme, Cell]]:
        """Parse and validate an optional ``shard`` request parameter.

        A distributed coordinator constrains ``cursor`` / ``count`` to one
        grid cell by sending ``{"scheme": PartitionScheme.to_wire(),
        "cell": [...]}``; plain requests carry no ``shard`` key.
        """
        shard = frame.get("shard")
        if shard is None:
            return None
        if not isinstance(shard, dict):
            raise ProtocolError(
                "'shard' must be an object with 'scheme' and 'cell'"
            )
        scheme = PartitionScheme.from_wire(shard.get("scheme"))
        return scheme, scheme.validate_cell(shard.get("cell"))

    def _shard_run(self, query, opts, scheme: PartitionScheme, cell: Cell):
        """Evaluate the shard of ``query`` that lives in grid cell ``cell``.

        Runs on the worker pool.  The shard evaluates in a *dedicated*
        session over the cell's catalog — never through the shared
        service session — because the shared result cache keys on query
        text and a one-cell answer stored under the full query's text
        would poison every later client.  Per-cell sessions are cached
        (keyed by catalog version, so data changes invalidate) and the
        per-atom-fragment rewrite makes the cell's answer exactly the
        cell's slice of the serial answer.
        """
        prepared = self.service.session.engine.prepare(query, opts.algorithm)
        key = (prepared.text, scheme.key(), cell,
               self.service.database.version)
        with self._shard_lock:
            entry = self._shard_sessions.get(key)
            if entry is not None:
                self._shard_sessions.move_to_end(key)
        if entry is None:
            partitioner = Partitioner(prepared.query, scheme)
            shard_db = partitioner.shard_database(
                self.service.database, cell
            )
            entry = (Session(shard_db), partitioner.rewritten_query)
            with self._shard_lock:
                existing = self._shard_sessions.get(key)
                if existing is not None:  # lost a build race; keep theirs
                    entry[0].close()
                    entry = existing
                    self._shard_sessions.move_to_end(key)
                else:
                    self._shard_sessions[key] = entry
                    while len(self._shard_sessions) > MAX_SHARD_SESSIONS:
                        _, (old, _) = self._shard_sessions.popitem(last=False)
                        old.close()
        session, rewritten = entry
        global_registry().counter("repro_dist_shards_total").inc(
            event="served"
        )
        return session.run(rewritten, opts)

    # -- ops ------------------------------------------------------------
    async def _op_hello(self, connection: _Connection, frame: dict) -> dict:
        import repro

        # Encoding negotiation: pick the first mutually supported row
        # encoding, preferring the client's order.  A v1 client sends no
        # ``encodings`` and lands on JSON — and since row pages only go
        # binary when a fetch explicitly asks, the fallback is total.
        offered = frame.get("encodings")
        chosen = "json"
        if isinstance(offered, list):
            for name in offered:
                if name in protocol.WIRE_ENCODINGS:
                    chosen = name
                    break
        return {
            "server": "repro",
            "protocol": protocol.PROTOCOL_VERSION,
            "version": repro.__version__,
            "relations": sorted(self.service.database.names()),
            "encodings": list(protocol.WIRE_ENCODINGS),
            "encoding": chosen,
        }

    async def _op_run(self, connection: _Connection, frame: dict) -> dict:
        """Validate and plan; no cursor, no execution, no held state.

        The client opens a cursor (the ``cursor`` op) only when it first
        fetches — so count-only and never-consumed result sets pin
        nothing on the server, mirroring the local laziness contract.
        """
        query, options = self._query_and_options(frame)

        def plan_only():
            opts = self.service.session.options(**options)
            return self.service.session.run(query, opts)

        result_set = await self._call(plan_only)
        connection.stats.queries += 1
        return {
            "columns": list(result_set.columns),
            "algorithm": result_set.algorithm,
            "requested_algorithm":
                result_set.plan.prepared.requested_algorithm,
            "shards": result_set.shards,
            "partitioning": result_set.plan.partition_key(),
            "plan_cached": result_set.stats.plan_cached,
        }

    async def _op_cursor(self, connection: _Connection, frame: dict) -> dict:
        """Open a server-side cursor: the lazy stream the client pages."""
        query, options = self._query_or_handle(connection, frame)
        shard = self._shard_request(frame)
        context = self._span_context(frame, shard)
        received = time.perf_counter()

        def open_cursor():
            queue_wait = time.perf_counter() - received
            opts = self.service.session.options(**options)
            if shard is not None:
                result_set = self._shard_run(query, opts, *shard)
            else:
                result_set = self.service.session.run(query, opts)
            self._adopt_trace_id(result_set, frame)
            self._adopt_span_context(result_set, context)
            result_set.record_queue_wait(queue_wait)
            # _op_fetch observes the query when the cursor drains; the
            # dispatch context must survive until then.
            result_set._wire_context = context
            return connection.registry.open(result_set)

        cursor = await self._call(open_cursor)
        return {"cursor": cursor.cursor_id}

    async def _op_fetch(self, connection: _Connection, frame: dict) -> dict:
        cursor_id = frame.get("cursor")
        size = frame.get("size")
        encoding = frame.get("encoding")
        if not isinstance(cursor_id, int):
            raise ProtocolError("'cursor' must be an integer id")
        if not isinstance(size, int) or isinstance(size, bool) or size < 1:
            raise ProtocolError(f"'size' must be a positive int, got {size!r}")
        if encoding not in (None, "json", "binary"):
            raise ProtocolError(
                f"unknown fetch encoding {encoding!r}; "
                f"supported: {protocol.WIRE_ENCODINGS}"
            )
        size = min(size, MAX_FETCH_SIZE)
        rows, done, cursor = await self._call(
            connection.registry.fetch, cursor_id, size
        )
        if encoding == "binary":
            # Rows stay as tuples; _serve_frame packs them column-major
            # into a binary frame (the _binary marker never hits the
            # wire).
            body = {"rows": list(rows), "done": done, "_binary": True}
        else:
            body = {"rows": [list(row) for row in rows], "done": done}
        if done:
            stats = cursor.result_set.stats
            body["stats"] = {
                "result_cached": stats.result_cached,
                "execution_seconds": stats.execution_seconds,
                "total": stats.total,
            }
            trace = getattr(stats, "trace", None)
            if trace is not None:
                body["stats"]["trace"] = trace
            # A drained cursor is one completed streamed query; remote
            # queries never pass through QueryService.execute, so this
            # is where they land on the request metrics and slow log.
            context = getattr(cursor.result_set, "_wire_context", None) or {}
            self.service.observe_query(
                query=stats.query,
                seconds=stats.plan_seconds + stats.execution_seconds,
                mode="tuples", algorithm=stats.algorithm, trace=trace,
                **context,
            )
        return body

    async def _op_close(self, connection: _Connection, frame: dict) -> dict:
        cursor_id = frame.get("cursor")
        if not isinstance(cursor_id, int):
            raise ProtocolError("'cursor' must be an integer id")
        return {"closed": connection.registry.close(cursor_id)}

    async def _op_count(self, connection: _Connection, frame: dict) -> dict:
        query, options = self._query_or_handle(connection, frame)
        shard = self._shard_request(frame)
        context = self._span_context(frame, shard)
        received = time.perf_counter()

        def count():
            queue_wait = time.perf_counter() - received
            opts = self.service.session.options(**options)
            started = time.perf_counter()
            if shard is not None:
                result_set = self._shard_run(query, opts, *shard)
            else:
                result_set = self.service.session.run(query, opts)
            self._adopt_trace_id(result_set, frame)
            self._adopt_span_context(result_set, context)
            try:
                value = result_set.count()
            except ReproError as error:
                self.service.observe_query(
                    query=result_set.query_text,
                    seconds=time.perf_counter() - started,
                    mode="count", algorithm=result_set.algorithm,
                    outcome="timeout" if isinstance(error, TimeoutExceeded)
                    else "error",
                    **context,
                )
                raise
            result_set.record_queue_wait(queue_wait)
            self.service.observe_query(
                query=result_set.query_text,
                seconds=time.perf_counter() - started,
                mode="count", algorithm=result_set.algorithm,
                trace=result_set.stats.trace,
                **context,
            )
            return value, result_set

        value, result_set = await self._call(count)
        connection.stats.counts += 1
        stats = result_set.stats
        body = {
            "count": value,
            "algorithm": result_set.algorithm,
            "shards": result_set.shards,
            "result_cached": stats.result_cached,
            "plan_cached": stats.plan_cached,
            "execution_seconds": stats.execution_seconds,
        }
        trace = getattr(stats, "trace", None)
        if trace is not None:
            body["trace"] = trace
        return body

    async def _op_prepare(self, connection: _Connection,
                          frame: dict) -> dict:
        """Compile a query shape once; return its per-connection handle.

        Idempotent: re-preparing the same (query, algorithm) returns the
        existing handle.  The response carries the same plan metadata as
        ``run`` so the client can build result sets for handle executes
        without another round trip.
        """
        query, options = self._query_and_options(frame)

        def prepare():
            opts = self.service.session.options(**options)
            statement = connection.prepared.register(
                query, opts.algorithm,
                lambda: self.service.session.engine.prepare(
                    query, opts.algorithm
                ),
            )
            # Plan through the session so the plan cache is warmed under
            # the prepared text — every execute after this is a plan-
            # cache hit.
            result_set = self.service.session.run(statement.query, opts)
            return statement, result_set

        statement, result_set = await self._call(prepare)
        return {
            "handle": statement.handle,
            "columns": list(result_set.columns),
            "algorithm": result_set.algorithm,
            "requested_algorithm":
                result_set.plan.prepared.requested_algorithm,
            "shards": result_set.shards,
            "partitioning": result_set.plan.partition_key(),
            "plan_cached": result_set.stats.plan_cached,
        }

    async def _op_execute(self, connection: _Connection,
                          frame: dict) -> dict:
        """``run`` by prepared handle: plan-only, zero parses."""
        statement = connection.prepared.resolve(self._handle_id(frame))
        options = frame.get("options") or {}
        if not isinstance(options, dict):
            raise ProtocolError("'options' must be a JSON object")

        def plan_only():
            opts = self.service.session.options(**options)
            return self.service.session.run(statement.query, opts)

        result_set = await self._call(plan_only)
        connection.stats.queries += 1
        return {
            "columns": list(result_set.columns),
            "algorithm": result_set.algorithm,
            "requested_algorithm":
                result_set.plan.prepared.requested_algorithm,
            "shards": result_set.shards,
            "partitioning": result_set.plan.partition_key(),
            "plan_cached": result_set.stats.plan_cached,
        }

    async def _op_deallocate(self, connection: _Connection,
                             frame: dict) -> dict:
        return {
            "deallocated":
                connection.prepared.deallocate(self._handle_id(frame)),
        }

    async def _op_explain(self, connection: _Connection,
                          frame: dict) -> dict:
        query, options = self._query_and_options(frame)

        def explain():
            opts = self.service.session.options(**options)
            return self.service.session.explain(query, opts)

        report = await self._call(explain)
        connection.stats.explains += 1
        return {"report": report.as_dict(), "rendered": report.render()}

    async def _op_stats(self, connection: _Connection, frame: dict) -> dict:
        return {
            "connection": connection.stats.as_dict(),
            "cursors": connection.registry.stats.as_dict(),
            "prepared": connection.prepared.stats.as_dict(),
            "service": self.service.stats().as_dict(),
        }

    async def _op_metrics(self, connection: _Connection,
                          frame: dict) -> dict:
        """The process-wide metrics registry in Prometheus text format."""
        return {"metrics": global_registry().render()}

    async def _op_events(self, connection: _Connection,
                         frame: dict) -> dict:
        """The flight recorder's recent query events, oldest first.

        ``limit`` must be a positive int (or absent for the full ring):
        a zero or negative limit is an options error — it would silently
        select nothing or everything, and the CLI maps it to the
        bad-options exit code instead of guessing.
        """
        limit = frame.get("limit")
        if limit is not None and (isinstance(limit, bool)
                                  or not isinstance(limit, int)
                                  or limit < 1):
            raise OptionsError(
                f"events limit must be a positive int, got {limit!r}"
            )
        return {"events": global_events().snapshot(limit)}

    # -- peer coordination ----------------------------------------------
    def _peer_entries(self, frame_peers) -> tuple:
        """Resolve the peer topology one ``cluster_*`` frame targets.

        The frame's ``peers`` list wins (it names the fleet the *client*
        was configured with); otherwise the server's own ``--peers``
        configuration applies; a plain server with neither cannot
        coordinate and says so as an options error.
        """
        if frame_peers is not None:
            if (not isinstance(frame_peers, list) or not frame_peers
                    or not all(isinstance(peer, str) and peer
                               for peer in frame_peers)):
                raise ProtocolError(
                    "'peers' must be a non-empty list of 'host:port' "
                    "strings"
                )
            return tuple(frame_peers)
        if self.peers:
            return tuple(self.peers.split(","))
        raise OptionsError(
            "this server has no peer topology; start it with "
            "--peers h1:p1,h2:p2 or send a 'peers' list in the request"
        )

    def _peer_coordinator(self, frame_peers):
        """The (cached) coordinator for one peer list; LRU-bounded."""
        # Imported lazily: repro.dist.gather imports the client module,
        # which imports this one for DEFAULT_PORT.
        from repro.dist.gather import PeerCoordinator

        entries = self._peer_entries(frame_peers)
        coordinator = self._peer_coordinators.get(entries)
        if coordinator is not None:
            self._peer_coordinators.move_to_end(entries)
            return coordinator
        coordinator = PeerCoordinator(self.service, entries)
        self._peer_coordinators[entries] = coordinator
        while len(self._peer_coordinators) > MAX_PEER_COORDINATORS:
            _, old = self._peer_coordinators.popitem(last=False)
            asyncio.get_running_loop().create_task(old.close())
        return coordinator

    @staticmethod
    def _hop_of(frame: dict) -> int:
        """The frame's fan-out hop count: 0 fans out, ≥ 1 never does."""
        hop = frame.get("hop", 0)
        if isinstance(hop, bool) or not isinstance(hop, int) or hop < 0:
            raise ProtocolError(
                f"'hop' must be a non-negative int, got {hop!r}"
            )
        return hop

    @staticmethod
    def _gather_scalars(info: dict, plan, meta: dict) -> dict:
        """The merge summary every hop-0 ``cluster_*`` response carries."""
        scheme = plan.scheme
        body = {
            "algorithm": meta["algorithm"],
            "shards": plan.shards,
            "partitioning": scheme.key() if scheme is not None
            else "serial",
            "seconds": info.get("seconds"),
            "shard_map": info.get("shard_map") or {},
            "hedges": info.get("hedges", 0),
            "reroutes": info.get("reroutes", 0),
            "trace_id": info.get("trace_id"),
            "fanout": True,
        }
        return body

    async def _op_cluster_run(self, connection: _Connection,
                              frame: dict) -> dict:
        """Peer-coordinated ``run``: plan-only, like its single-node twin.

        At ``hop >= 1`` this *is* the single-node op — a peer that
        receives a forwarded frame executes locally and never re-fans
        out, whatever the topology claims.
        """
        if self._hop_of(frame) >= 1:
            body = await self._op_run(connection, frame)
            global_registry().counter("repro_peer_total").inc(event="leaf")
            return dict(body, route="leaf", fanout=False)
        query, options = self._query_and_options(frame)
        coordinator = self._peer_coordinator(frame.get("peers"))
        return await coordinator.describe(query, options)

    async def _op_cluster_count(self, connection: _Connection,
                                frame: dict) -> dict:
        """Peer-coordinated count: per-shard counts summed *here*.

        The merge happens before the final hop, so the client receives
        one integer no matter how many peers answered.
        """
        if self._hop_of(frame) >= 1:
            body = await self._op_count(connection, frame)
            global_registry().counter("repro_peer_total").inc(event="leaf")
            return dict(body, fanout=False)
        query, options = self._query_and_options(frame)
        coordinator = self._peer_coordinator(frame.get("peers"))
        value, info, meta, plan = await coordinator.gather(
            "count", query, options, frame.get("trace_id"),
        )
        connection.stats.counts += 1
        body = dict(self._gather_scalars(info, plan, meta), count=value)
        if info.get("trace") is not None:
            body["trace"] = info["trace"]
        return body

    async def _op_cluster_cursor(self, connection: _Connection,
                                 frame: dict) -> dict:
        """Peer-coordinated cursor: gather, merge, then stream the
        *merged* answer through the normal cursor registry.

        The client pages the merged rows with plain ``fetch`` frames, so
        ``fetchmany(k)`` moves O(k) rows on the final hop even when the
        peers shipped far more to the merging server.  The stitched
        gather trace rides the drained cursor's stats, exactly like a
        single-node traced query.
        """
        if self._hop_of(frame) >= 1:
            body = await self._op_cursor(connection, frame)
            global_registry().counter("repro_peer_total").inc(event="leaf")
            return dict(body, fanout=False)
        query, options = self._query_and_options(frame)
        coordinator = self._peer_coordinator(frame.get("peers"))
        rows, info, meta, plan = await coordinator.gather(
            "rows", query, options, frame.get("trace_id"),
        )
        connection.stats.queries += 1
        merged = _MergedRows(rows, query, options, info, meta, plan)
        cursor = connection.registry.open(merged)
        return dict(self._gather_scalars(info, plan, meta),
                    cursor=cursor.cursor_id)

    async def _op_goodbye(self, connection: _Connection,
                          frame: dict) -> dict:
        connection.registry.close_all()
        connection.prepared.close_all()
        return {"goodbye": True}

    _OPS = {
        "hello": _op_hello,
        "run": _op_run,
        "prepare": _op_prepare,
        "execute": _op_execute,
        "deallocate": _op_deallocate,
        "cursor": _op_cursor,
        "fetch": _op_fetch,
        "close": _op_close,
        "count": _op_count,
        "explain": _op_explain,
        "stats": _op_stats,
        "metrics": _op_metrics,
        "events": _op_events,
        "cluster_run": _op_cluster_run,
        "cluster_count": _op_cluster_count,
        "cluster_cursor": _op_cluster_cursor,
        "goodbye": _op_goodbye,
    }


class ServerThread:
    """A :class:`ReproServer` on a private event loop in a daemon thread.

    The test-and-benchmark harness for standing up a real serving
    boundary in-process::

        with QueryService(database) as service:
            with ServerThread(service) as server:
                with RemoteSession(server.url) as session:
                    session.run("edge(a,b), edge(b,c)").fetchmany(10)

    ``port`` defaults to 0 (ephemeral); the bound URL is :attr:`url`.
    """

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0, **server_kwargs) -> None:
        self.server = ReproServer(service, host, port, **server_kwargs)
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )

    @property
    def url(self) -> str:
        return self.server.url

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # surfaced to start()'s caller
            self._startup_error = error
            self._started.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as error:
            self._startup_error = error
            self._started.set()
            return
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.server.stop()

    def start(self) -> "ServerThread":
        """Start the thread and wait until the socket is bound."""
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._started.is_set():
            raise ServiceError("server thread did not start within 30s")
        return self

    def stop(self) -> None:
        """Request shutdown and join the thread; idempotent."""
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=30)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
