"""Columnar payload codec for binary wire frames.

Row batches go on the wire column-major, each integer column packed into
the narrowest ``array`` typecode that holds its value range — the exact
packer the inter-process shard shipper uses (:func:`repro.exec.shards.
pack_column`), imported rather than reimplemented so the two encoders
cannot drift.  Columns that are not purely ``int`` (strings, ``None``,
bools, ints beyond 64 bits) fall back to a JSON-encoded block with kind
``"J"``; a batch of such columns costs no more than the JSON frame it
replaces.

Typed blocks are little-endian on the wire regardless of host byte
order, so a big-endian peer interoperates (``array.tobytes`` is native;
we byteswap on the odd machine out instead of taxing the common case).
"""

from __future__ import annotations

import json
import sys
from array import array
from typing import Any, List, Sequence, Tuple

from repro.exec.shards import pack_column

#: Typed block kinds, i.e. ``array`` typecodes the packer can emit.
TYPED_KINDS = ("B", "H", "I", "Q", "q")

#: JSON-fallback block kind for columns the packer cannot type.
JSON_KIND = "J"

_BIG_ENDIAN = sys.byteorder == "big"

#: Column descriptor on the wire: ``[kind, count, nbytes]``.
ColumnMeta = List[Any]


def _json_block(values: Sequence[Any]) -> bytes:
    return json.dumps(list(values), separators=(",", ":")).encode("utf-8")


def encode_columns(
    rows: Sequence[Sequence[Any]],
) -> Tuple[List[ColumnMeta], List[bytes]]:
    """Split ``rows`` into per-column blocks.

    Returns ``(meta, blocks)`` where ``meta[i] = [kind, count, nbytes]``
    describes ``blocks[i]``.  The caller concatenates the blocks after
    its JSON header; ``decode_columns`` slices them back out by
    ``nbytes``.
    """
    meta: List[ColumnMeta] = []
    blocks: List[bytes] = []
    if not rows:
        return meta, blocks
    for index in range(len(rows[0])):
        column = [row[index] for row in rows]
        # bool is an int subclass but must round-trip as bool, so only
        # exact ints are eligible for typed packing.
        if all(type(value) is int for value in column):
            packed = pack_column(column)
        else:
            packed = column  # non-int content -> JSON fallback
        if isinstance(packed, array):
            if _BIG_ENDIAN:
                packed = array(packed.typecode, packed)
                packed.byteswap()
            block = packed.tobytes()
            meta.append([packed.typecode, len(column), len(block)])
        else:
            block = _json_block(column)
            meta.append([JSON_KIND, len(column), len(block)])
        blocks.append(block)
    return meta, blocks


def decode_columns(
    meta: Sequence[Sequence[Any]], payload: bytes, offset: int = 0
) -> List[List[Any]]:
    """Rebuild columns from ``payload`` starting at ``offset``.

    Raises :class:`ValueError` on a malformed descriptor or a payload
    that does not match the advertised sizes (the protocol layer wraps
    this in its own error type).
    """
    columns: List[List[Any]] = []
    cursor = offset
    for descriptor in meta:
        kind, count, nbytes = descriptor
        block = payload[cursor : cursor + nbytes]
        if len(block) != nbytes:
            raise ValueError(
                f"column block truncated: expected {nbytes} bytes, "
                f"got {len(block)}"
            )
        cursor += nbytes
        if kind == JSON_KIND:
            values = json.loads(block.decode("utf-8"))
            if not isinstance(values, list) or len(values) != count:
                raise ValueError("JSON column block does not match count")
        elif kind in TYPED_KINDS:
            typed = array(kind)
            typed.frombytes(block)
            if _BIG_ENDIAN:
                typed.byteswap()
            if len(typed) != count:
                raise ValueError(
                    f"typed column block holds {len(typed)} values, "
                    f"expected {count}"
                )
            values = typed.tolist()
        else:
            raise ValueError(f"unknown column kind {kind!r}")
        columns.append(values)
    if cursor != len(payload):
        raise ValueError(
            f"{len(payload) - cursor} trailing bytes after column blocks"
        )
    return columns


def rows_from_columns(
    columns: Sequence[Sequence[Any]], count: int
) -> List[Tuple[Any, ...]]:
    """Zip columns back into row tuples (``count`` rows of zero arity
    degenerate to empty tuples)."""
    if not columns:
        return [() for _ in range(count)]
    rows = list(zip(*columns))
    if len(rows) != count:
        raise ValueError(
            f"column blocks yield {len(rows)} rows, header says {count}"
        )
    return rows
