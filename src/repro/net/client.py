""":class:`RemoteSession` — the client end of the wire protocol.

``connect("repro://host:port")`` opens a pooled client against a
:class:`~repro.net.server.ReproServer` and returns a session with the
exact :class:`~repro.api.session.Session` execution surface::

    with repro.connect("repro://127.0.0.1:9944") as session:
        for binding in session.run("edge(a,b), edge(b,c)", limit=10):
            ...
        session.explain("edge(a,b), edge(b,c)").render()

This is the **resilience layer** of the network stack:

* a size-bounded :class:`ConnectionPool` with health-checked checkout —
  stale sockets left behind by a server restart are detected and
  replaced, never handed to a request;
* **automatic reconnect with bounded exponential-backoff retry** for the
  idempotent operations (``hello`` / ``run`` / ``explain`` / ``count`` /
  ``stats``): a connection lost mid-request is discarded, a fresh one is
  dialled, and the request replayed up to ``retries`` times;
* **never** for a cursor ``fetch``: a server-side cursor lives on one
  server connection and dies with it, so replaying a fetch could silently
  skip or repeat rows.  A lost connection mid-stream raises a crisp
  :class:`~repro.errors.CursorError` telling the caller to re-run the
  query instead.

``run`` returns a :class:`RemoteResultSet`: the server holds the lazy
result stream as a **server-side cursor** and the client pages it with
``fetchmany``-sized ``fetch`` requests — consuming *k* rows of a huge
join moves O(k) rows over the wire and pulls O(k) rows from the
executor, the same laziness contract as a local
:class:`~repro.api.result.ResultSet`.  The cursor pins one pooled
connection from first fetch until it drains or closes (cursors are
per-connection server state); ``run`` / ``count`` / ``explain`` traffic
flows over the rest of the pool concurrently.

``connect_async`` is the :mod:`asyncio` twin — and it **multiplexes**:
one socket carries any number of in-flight requests, matched to their
responses by the protocol's request ids, so ``asyncio.gather`` over many
``session.run(...)`` calls pipelines them through a single connection
and the server overlaps their execution on its worker pool.

Server-reported failures re-raise as their original
:class:`~repro.errors.ReproError` subclasses (parse errors as
:class:`ParseError`, timeouts as :class:`TimeoutExceeded`, ...), so error
handling — including the CLI's exit-code mapping — is transport-agnostic.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from collections import deque
from dataclasses import asdict
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.api.options import QueryOptions
from repro.api.result import ResultStats, Row, RowCursor
from repro.datalog.terms import Variable
from repro.errors import (
    AdmissionError,
    CursorError,
    NetworkError,
    OptionsError,
    PreparedError,
    ProtocolError,
    ReproError,
)
from repro.net import protocol
from repro.net.server import DEFAULT_PORT
from repro.obs.metrics import global_registry
from repro.obs.trace import new_trace_id

#: How many rows one iteration-driven fetch pulls by default.
DEFAULT_FETCH_SIZE = 512

#: Environment override for the row-page wire encoding ("binary" or
#: "json").  Forcing "json" makes a v2 client behave exactly like a v1
#: peer — it stops advertising encodings in ``hello`` — which is how the
#: CI smoke proves negotiation fallback against a live server.
WIRE_ENCODING_ENV = "REPRO_WIRE_ENCODING"


def _resolve_wire_encoding(value: Optional[str]) -> str:
    if value is None:
        value = os.environ.get(WIRE_ENCODING_ENV) or "binary"
    if value not in protocol.WIRE_ENCODINGS:
        raise OptionsError(
            f"wire_encoding must be one of {protocol.WIRE_ENCODINGS}, "
            f"got {value!r}"
        )
    return value

#: Connections a :class:`ConnectionPool` may hold open at once.
DEFAULT_POOL_SIZE = 4

#: How many times an idempotent request is replayed after a transport
#: failure (so ``retries=2`` means up to three attempts in total).
DEFAULT_RETRIES = 2

#: First retry delay, seconds; doubles per attempt up to the cap below.
DEFAULT_RETRY_BACKOFF = 0.05
_MAX_RETRY_BACKOFF = 2.0

#: Operations safe to replay on a fresh connection after a transport
#: failure.  ``run`` / ``explain`` / ``execute`` only plan, ``count`` /
#: ``stats`` / ``metrics`` only read, ``hello`` is a handshake,
#: ``prepare`` is idempotent by design (the registry dedups), and a
#: replayed ``deallocate`` frees at most the same handle.  The peer ops
#: ``cluster_run`` / ``cluster_count`` are read-only like their
#: single-server twins.  Cursor ops (``cursor`` / ``cluster_cursor`` /
#: ``fetch`` / ``close``) are deliberately absent from this set: they
#: name server-side stream state that dies with its connection (cursor
#: *opens* get their own replay loop in ``_open_cursor``, which is safe
#: because an unacknowledged cursor died with its connection).
IDEMPOTENT_OPS = frozenset(
    {"hello", "run", "explain", "count", "stats", "metrics", "events",
     "prepare", "execute", "deallocate", "cluster_run", "cluster_count"}
)


class PoolExhausted(NetworkError):
    """Every pooled connection is checked out and none freed in time.

    Deliberately distinct from transport failures: retrying cannot help
    (nothing will be checked in while the retry sleeps — the checkout
    already waited), so the retry loop re-raises this immediately and
    the caller gets the actionable message without the backoff tax.
    """


def _validate_resilience_knobs(pool_size: Optional[int], retries: int,
                               retry_backoff: float) -> None:
    """Reject nonsense knob values instead of silently clamping them.

    Same boundary discipline as :class:`QueryOptions` (zero timeouts and
    negative limits raise): a ``pool_size`` below 1, negative
    ``retries``, or non-positive ``retry_backoff`` is a typo, not a
    request for different behavior.
    """
    if pool_size is not None and int(pool_size) < 1:
        raise OptionsError(
            f"pool_size must be at least 1, got {pool_size!r}"
        )
    if int(retries) < 0:
        raise OptionsError(f"retries must be >= 0, got {retries!r}")
    if not float(retry_backoff) > 0:
        raise OptionsError(
            f"retry_backoff must be positive seconds, got {retry_backoff!r}"
        )


def _parse_host_port(entry: str, url: str) -> Tuple[str, int]:
    """Validate one ``host[:port]`` entry of a (possibly multi-host) URL.

    The per-host grammar — including the IPv6 bracket rules — is shared
    verbatim between :func:`parse_url` and :func:`parse_cluster_url`, so
    every host of a cluster URL is held to exactly the single-host
    standard.
    """
    port_text: Optional[str]
    if entry.startswith("["):
        # Bracketed IPv6 literal: [v6]  or  [v6]:port
        closing = entry.find("]")
        if closing < 0:
            raise NetworkError(
                f"remote URL {url!r} has an unclosed '[' in its host"
            )
        host = entry[1:closing]
        tail = entry[closing + 1:]
        if not tail:
            port_text = None
        elif tail.startswith(":"):
            port_text = tail[1:]
        else:
            raise NetworkError(
                f"remote URL {url!r} has trailing text after the "
                f"bracketed host"
            )
    elif ":" in entry:
        host, _, port_text = entry.rpartition(":")
        if ":" in host:
            raise NetworkError(
                f"remote URL {url!r} looks like a bare IPv6 literal; "
                f"bracket it: repro://[{entry}] or repro://[host]:port"
            )
    else:
        host, port_text = entry, None
    if not host:
        raise NetworkError(f"remote URL {url!r} names no host")
    if port_text is None:
        return host, DEFAULT_PORT
    try:
        if not port_text.isdigit():
            raise ValueError(port_text)
        port = int(port_text)
    except ValueError:
        raise NetworkError(
            f"remote URL {url!r} has a non-numeric port {port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise NetworkError(f"remote URL {url!r} port out of range")
    return host, port


def parse_cluster_url(url: str) -> Tuple[Tuple[str, int], ...]:
    """Split ``repro://host[:port][,host[:port]...]`` into endpoints.

    The multi-host grammar of :func:`repro.connect`'s cluster form::

        repro://h1:9944,h2:9944       → (("h1", 9944), ("h2", 9944))
        repro://[::1]:9944,h2         → (("::1", 9944), ("h2", DEFAULT_PORT))

    Commas separate hosts unambiguously — bracketed IPv6 literals contain
    colons, never commas — and every entry is validated by the same
    single-host rules as :func:`parse_url` (empty entries, bare IPv6
    literals, and bad ports are each rejected with the entry named).  A
    single-host URL is a valid one-server cluster.
    """
    if not isinstance(url, str) or not url.startswith("repro://"):
        raise NetworkError(
            f"remote URL must look like repro://host:port, got {url!r}"
        )
    rest = url[len("repro://"):].rstrip("/")
    entries = rest.split(",")
    endpoints = []
    for position, entry in enumerate(entries):
        if entry != entry.strip():
            raise NetworkError(
                f"remote URL {url!r} has whitespace around entry "
                f"{position + 1} ({entry!r}); separate hosts with a "
                f"bare comma"
            )
        if not entry and len(entries) > 1 and position == len(entries) - 1:
            raise NetworkError(
                f"remote URL {url!r} has a trailing comma: the empty "
                f"entry after {entries[position - 1]!r} names no host"
            )
        endpoints.append(_parse_host_port(entry, url))
    return tuple(endpoints)


def parse_url(url: str) -> Tuple[str, int]:
    """Split ``repro://host[:port]`` into ``(host, port)``.

    The grammar::

        repro://host            → (host, DEFAULT_PORT)
        repro://host:9944       → (host, 9944)
        repro://[::1]:9944      → ("::1", 9944)     # brackets stripped
        repro://[2001:db8::2]   → ("2001:db8::2", DEFAULT_PORT)

    IPv6 literals must be bracketed (their colons are ambiguous with the
    port separator otherwise); the brackets are stripped so the result
    feeds :func:`socket.create_connection` directly.  Empty hosts
    (``repro://:9944``) and empty or non-numeric ports are rejected.
    Comma-separated multi-host URLs name a *cluster*, not a single
    server — those go through :func:`parse_cluster_url` (and
    ``repro.connect``, which builds a ``ClusterSession`` for them).
    """
    endpoints = parse_cluster_url(url)
    if len(endpoints) != 1:
        raise NetworkError(
            f"remote URL {url!r} names {len(endpoints)} hosts; a "
            f"single-server session takes one — pass the multi-host URL "
            f"to repro.connect for a ClusterSession"
        )
    return endpoints[0]


def _options_payload(options: QueryOptions) -> dict:
    """The options bundle as wire JSON (``None`` = inherit server default).

    ``fetch_size`` is a client-only paging knob — every ``fetch`` request
    names its page size explicitly — so it is stripped here, which also
    keeps new clients compatible with servers that predate the field.
    ``route`` is likewise client-side routing (which *op* to send, not
    how the server should run it) and never travels.
    """
    payload = asdict(options)
    payload.pop("fetch_size", None)
    payload.pop("route", None)
    return payload


def _result(response: dict) -> dict:
    """Unwrap a response: the body on ``ok``, the original error otherwise."""
    if response.get("ok"):
        return response
    protocol.raise_remote_error(response.get("error"))


# ----------------------------------------------------------------------
# Connections and the pool
# ----------------------------------------------------------------------
class _WireConnection:
    """One framed TCP connection: request/response, no retry logic.

    The pool owns reconnection policy; this class only speaks the
    protocol.  Any transport failure (socket error, EOF, garbage frame,
    out-of-sequence id) closes the connection and raises
    :class:`NetworkError` / :class:`ProtocolError` — a poisoned stream
    must never be reused.
    """

    def __init__(self, host: str, port: int, url: str,
                 connect_timeout: float) -> None:
        self.url = url
        self.closed = False
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            raise NetworkError(
                f"could not connect to {url}: {error}"
            ) from None
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("rb")
        self._bytes = global_registry().counter("repro_client_bytes_total")
        self._next_id = 0
        # Prepared statements are per-connection server state: this maps
        # a client-side (text, algorithm) shape to the handle the server
        # issued *on this connection*.  A fresh connection starts empty
        # and re-prepares lazily.
        self.prepared: Dict[Tuple[str, str], int] = {}

    def exchange(self, op: str, *, _io_timeout: Optional[float] = None,
                 **params) -> dict:
        """One request/response round trip; returns the raw response.

        ``_io_timeout`` bounds the socket wait for this one exchange —
        used for the ``hello`` handshake, so an endpoint that accepts
        TCP connections but never answers (not a repro server) cannot
        hang the client forever.  Queries stay unbounded client-side.
        """
        if self.closed:
            raise NetworkError(f"connection to {self.url} is closed")
        self._next_id += 1
        request_id = self._next_id
        frame = {"id": request_id, "op": op, **params}
        try:
            if _io_timeout is not None:
                self._sock.settimeout(_io_timeout)
            try:
                data = protocol.encode_frame(frame)
                self._sock.sendall(data)
                self._bytes.inc(len(data), direction="sent")
                response = protocol.read_frame(self._counting_read)
            finally:
                if _io_timeout is not None and not self.closed:
                    self._sock.settimeout(None)
        except OSError as error:
            self.close()
            raise NetworkError(
                f"connection to {self.url} failed: {error}"
            ) from None
        except ProtocolError:
            self.close()
            raise
        if response is None:
            self.close()
            raise NetworkError(f"server at {self.url} closed the connection")
        if response.get("id") != request_id:
            # This client sends one request at a time per connection, so
            # responses must arrive in lockstep; anything else means the
            # stream is desynchronized beyond recovery.
            self.close()
            raise ProtocolError(
                f"out-of-sequence response: sent id {request_id}, "
                f"got {response.get('id')!r}"
            )
        return response

    def _counting_read(self, size: int) -> bytes:
        """``self._reader.read`` metered into ``repro_client_bytes_total``
        — the received half of the bytes-to-client accounting that peer
        coordination exists to shrink."""
        data = self._reader.read(size)
        if data:
            self._bytes.inc(len(data), direction="received")
        return data

    def healthy(self) -> bool:
        """Cheap liveness probe: is the socket still connected and quiet?

        A non-blocking one-byte peek distinguishes the three states: no
        data pending (healthy), EOF (the server closed — e.g. it was
        restarted while this connection sat idle in the pool), and stray
        unsolicited bytes (a desynchronized stream; also unusable).
        """
        if self.closed:
            return False
        try:
            self._sock.settimeout(0.0)
            try:
                self._sock.recv(1, socket.MSG_PEEK)
            finally:
                self._sock.settimeout(None)
        except (BlockingIOError, InterruptedError):
            return True  # connected, nothing pending
        except OSError:
            return False
        return False  # EOF or unsolicited data: either way, unusable

    def close(self) -> None:
        """Idempotent teardown of the reader and socket."""
        if self.closed:
            return
        self.closed = True
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class ConnectionPool:
    """A size-bounded, health-checked pool of connections to one server.

    ``checkout`` hands back an idle connection when a healthy one exists,
    dials a new one while fewer than ``size`` are open, and otherwise
    waits (up to ``connect_timeout`` seconds) for a checkin — so the pool
    bounds both sockets and the dial rate.  Stale idle connections (a
    restarted server leaves EOF-ed sockets behind) fail the checkout
    health probe and are replaced transparently.

    Thread-safe: a :class:`RemoteSession` may be shared by worker threads
    issuing requests concurrently, each over its own pooled connection.
    """

    def __init__(self, url: str, size: int = DEFAULT_POOL_SIZE,
                 connect_timeout: float = 10.0) -> None:
        self.url = url
        self.host, self.port = parse_url(url)
        self.size = max(1, int(size))
        self.connect_timeout = connect_timeout
        self._cond = threading.Condition()
        self._idle: Deque[_WireConnection] = deque()
        self._all: Set[_WireConnection] = set()
        self._open = 0  # connections existing: idle + checked out
        self._closed = False
        # Resilience accounting, surfaced by RemoteSession.stats().
        self.checkouts = 0
        self.dialed = 0
        self.health_replaced = 0

    def __len__(self) -> int:
        with self._cond:
            return self._open

    @property
    def idle(self) -> int:
        with self._cond:
            return len(self._idle)

    def checkout(self) -> _WireConnection:
        """A healthy connection: idle, freshly dialled, or waited for."""
        deadline = time.monotonic() + self.connect_timeout
        registry = global_registry()
        with self._cond:
            while True:
                if self._closed:
                    raise NetworkError(
                        f"connection pool to {self.url} is closed"
                    )
                while self._idle:
                    conn = self._idle.popleft()
                    if conn.healthy():
                        self.checkouts += 1
                        registry.counter(
                            "repro_client_checkouts_total").inc()
                        return conn
                    self._forget(conn)
                    conn.close()
                    self.health_replaced += 1
                    registry.counter(
                        "repro_client_health_replaced_total").inc()
                if self._open < self.size:
                    self._open += 1
                    break  # dial outside the lock
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise PoolExhausted(
                        f"connection pool to {self.url} exhausted: all "
                        f"{self.size} connections are in use (undrained "
                        f"result sets pin one each — drain or close them, "
                        f"or raise pool_size)"
                    )
                self._cond.wait(remaining)
        try:
            conn = _WireConnection(self.host, self.port, self.url,
                                   self.connect_timeout)
        except BaseException:
            with self._cond:
                self._open -= 1
                self._cond.notify()
            raise
        with self._cond:
            # close() may have snapshotted its victims while we were
            # dialling; a connection registered after that snapshot
            # would outlive the pool, so drop it here instead.
            closed_meanwhile = self._closed
            if not closed_meanwhile:
                self._all.add(conn)
                self.dialed += 1
                self.checkouts += 1
        if closed_meanwhile:
            conn.close()
            raise NetworkError(f"connection pool to {self.url} is closed")
        registry.counter("repro_client_checkouts_total").inc()
        return conn

    def checkin(self, conn: _WireConnection) -> None:
        """Return a connection; unusable or post-close ones are dropped."""
        drop = False
        with self._cond:
            if self._closed or conn.closed:
                self._forget(conn)
                drop = True
            else:
                self._idle.append(conn)
                self._cond.notify()
        if drop:
            conn.close()

    def discard(self, conn: _WireConnection) -> None:
        """Drop a poisoned connection, freeing its pool slot."""
        conn.close()
        with self._cond:
            self._forget(conn)

    def _forget(self, conn: _WireConnection) -> None:
        # Caller holds the lock; closing the socket is the caller's job.
        if conn in self._all:
            self._all.discard(conn)
            self._open -= 1
            self._cond.notify()

    def pop_all_idle(self) -> List[_WireConnection]:
        """Remove and return every idle connection (for farewells)."""
        with self._cond:
            idle = list(self._idle)
            self._idle.clear()
            for conn in idle:
                self._all.discard(conn)
            self._open -= len(idle)
            self._cond.notify_all()
        return idle

    def close(self) -> None:
        """Close every connection — including checked-out ones; idempotent.

        Closing pinned connections is deliberate: a session being closed
        must not leak sockets held by abandoned, undrained result sets.
        Their next fetch fails with a :class:`CursorError`.
        """
        with self._cond:
            self._closed = True
            victims = list(self._all)
            self._all.clear()
            self._idle.clear()
            self._open = 0
            self._cond.notify_all()
        for conn in victims:
            conn.close()


class RemoteExplain:
    """A plan report fetched over the wire.

    Mirrors the read surface of :class:`~repro.api.explain.Explain`:
    :meth:`as_dict` is the server report verbatim, :meth:`render` the
    server-rendered text.
    """

    def __init__(self, report: dict, rendered: str) -> None:
        self._report = report
        self._rendered = rendered

    def as_dict(self) -> dict:
        return self._report

    def render(self) -> str:
        return self._rendered

    def __str__(self) -> str:
        return self._rendered


class RemoteResultSet(RowCursor):
    """A server-side cursor paged over the wire, with the local surface.

    The cursor is forward-only and shared across the consumption
    methods, exactly like a local :class:`~repro.api.result.ResultSet`.
    From the first fetch until the stream drains (or :meth:`close`), the
    result set pins one pooled connection: a server-side cursor is
    per-connection state and cannot migrate.  If that connection is lost
    mid-stream the cursor is gone — fetches raise :class:`CursorError`
    (never a silent retry, which could skip or repeat rows); re-run the
    query for a fresh result set.
    """

    def __init__(self, session: "RemoteSession", query_text: str,
                 options: QueryOptions, meta: dict,
                 prepared_key: Optional[Tuple[str, str]] = None) -> None:
        self._session = session
        self._text = query_text
        self._options = options
        # Set when this result set executes a prepared statement: the
        # cursor and count travel by handle, never resending query text.
        self._prepared_key = prepared_key
        # The server holds no cursor yet: one is opened lazily at the
        # first fetch, so a result set that is only counted (or never
        # consumed) pins nothing remotely — and no pool connection.
        self._cursor_id: Optional[int] = None
        self._conn: Optional[_WireConnection] = None
        self._variables = tuple(Variable(name) for name in meta["columns"])
        self._meta = meta
        self._buffer: Deque[Row] = deque()
        self._done = False
        self._closed = False
        self._gone: Optional[str] = None  # why the server stream is lost
        self._delivered = 0
        self._count: Optional[int] = None
        self._final: dict = {}
        self._open_body: dict = {}
        self._seconds = 0.0
        # With tracing on, a client-chosen id rides every wire request so
        # the server-side span tree correlates with client logs.
        self._trace_id = new_trace_id() if options.trace else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query_text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    @property
    def shards(self) -> int:
        return self._meta["shards"]

    @property
    def complete(self) -> bool:
        """True once the full answer has been pulled over the wire."""
        return self._done and not self._buffer

    @property
    def stats(self) -> ResultStats:
        """What this result did, merged from plan metadata and fetches."""
        return ResultStats(
            query=self._text,
            algorithm=self._meta["algorithm"],
            requested_algorithm=self._meta.get(
                "requested_algorithm", self._options.algorithm
            ),
            partitioning=self._meta.get("partitioning", "serial"),
            shards=self._meta["shards"],
            plan_cached=self._meta.get("plan_cached", False),
            result_cached=self._final.get("result_cached", False),
            plan_seconds=0.0,
            execution_seconds=self._seconds,
            rows_delivered=self._delivered,
            complete=self.complete,
            limit=self._options.limit,
            total=self._count,
            trace=self._final.get("trace"),
        )

    # ------------------------------------------------------------------
    # Paging
    # ------------------------------------------------------------------
    def _page_size(self) -> int:
        """Rows per iteration-driven fetch: per-query option, else the
        session default."""
        return self._options.fetch_size or self._session.fetch_size

    def _ensure_cursor(self) -> None:
        """Open the server-side cursor on first use, pinning a connection.

        Under ``route="peer"`` the open travels as ``cluster_cursor``
        with ``hop=0``: the server gathers from its peers and registers
        the *merged* stream in its normal cursor registry, so everything
        after the open (fetch paging, close, drain accounting) is
        byte-for-byte the single-server path.
        """
        if self._cursor_id is None:
            if self._prepared_key is not None:
                self._conn, self._cursor_id = \
                    self._session._open_prepared_cursor(
                        self._prepared_key, self._text,
                        _options_payload(self._options),
                        trace_id=self._trace_id,
                    )
            else:
                if self._options.route == "peer":
                    op, extra = "cluster_cursor", {"hop": 0}
                else:
                    op, extra = "cursor", None
                self._conn, body = self._session._open_cursor(
                    self._text, _options_payload(self._options),
                    trace_id=self._trace_id, op=op, extra=extra,
                )
                self._cursor_id = body["cursor"]
                self._open_body = body

    def _release_conn(self) -> None:
        """Hand the pinned connection back to the pool (if still held)."""
        if self._conn is not None:
            self._session._pool.checkin(self._conn)
            self._conn = None

    def _fetch(self, size: int) -> List[Row]:
        """One wire ``fetch`` of up to ``size`` rows; updates done state."""
        if self._closed:
            raise CursorError("this remote cursor was closed")
        if self._gone is not None:
            raise CursorError(self._gone)
        started = time.perf_counter()
        self._ensure_cursor()
        params = {"cursor": self._cursor_id, "size": size}
        if self._session.wire_encoding == "binary":
            # Binary frames are self-describing and per-request: a server
            # that never advertised binary support is never asked.
            params["encoding"] = "binary"
        try:
            response = self._conn.exchange("fetch", **params)
        except (NetworkError, ProtocolError) as error:
            # The connection carrying the cursor is gone, and with it the
            # server-side stream.  A fetch is NOT idempotent — replaying
            # it on a new connection could skip or repeat rows — so this
            # is a hard stop, not a retry.
            self._session._pool.discard(self._conn)
            self._conn = None
            self._gone = (
                f"the server-side cursor for this result set is gone "
                f"({error}); a cursor lives on one server connection and "
                f"a fetch is never retried — re-run the query for a "
                f"fresh result set"
            )
            raise CursorError(self._gone) from error
        try:
            body = _result(response)
        except AdmissionError:
            # Transient overload: admission control rejected the fetch
            # *before* it reached the stream, so the cursor is untouched
            # server-side.  Keep the pin — the caller may simply fetch
            # again when the queue drains.
            raise
        except ReproError:
            # A server-reported fetch failure (cursor expired, execution
            # error, timeout mid-stream): the connection is healthy but
            # the server has dropped the cursor.  Release the pin and
            # re-raise the original error class.
            self._gone = (
                "the server-side cursor for this result set failed and "
                "was dropped by the server; re-run the query for a "
                "fresh result set"
            )
            self._release_conn()
            raise
        self._seconds += time.perf_counter() - started
        rows = [tuple(row) for row in body["rows"]]
        if body["done"]:
            self._done = True
            self._final = body.get("stats") or {}
            if self._final.get("total") is not None:
                self._count = self._final["total"]
            self._release_conn()
        return rows

    def _check_open(self) -> None:
        """A closed-but-undrained cursor must not read like a clean end."""
        if self._closed and not self._done:
            raise CursorError(
                "this remote cursor was closed before it was drained; "
                "re-run the query for a fresh result set"
            )

    def _pull(self) -> Optional[Row]:
        if not self._buffer:
            self._check_open()
            if self._done:
                return None
            self._buffer.extend(self._fetch(self._page_size()))
            if not self._buffer:
                return None
        self._delivered += 1
        return self._buffer.popleft()

    def fetchmany(self, size: int = 1) -> List[Row]:
        """Up to ``size`` more rows off the shared forward-only cursor.

        Rows already buffered by iteration are served first.  The
        remainder is requested from the server, which clamps one wire
        ``fetch`` to its ``MAX_FETCH_SIZE`` (65536 by default) — so a
        request for more than the clamp transparently loops over several
        round trips, each advancing the server's executor by at most one
        clamp's worth of rows.  A short return therefore only ever means
        end-of-answer, exactly like a local result set; a request within
        the clamp costs a single round trip.
        """
        out: List[Row] = []
        while self._buffer and len(out) < size:
            out.append(self._buffer.popleft())
        try:
            if len(out) < size:
                self._check_open()
            while len(out) < size and not self._done:
                page = self._fetch(size - len(out))
                if not page:
                    break
                out.extend(page)
        except BaseException:
            # A failed wire fetch must not lose rows already in hand
            # (buffered by iteration or pulled by an earlier loop page):
            # push them back so a retried call — e.g. after a transient
            # AdmissionError — resumes at exactly the same position.
            self._buffer.extendleft(reversed(out))
            raise
        self._delivered += len(out)
        return out

    def fetchall(self) -> List[Row]:
        """Every remaining row; a failed wire fetch keeps rows in hand
        (they return to the buffer for the retry) instead of losing them."""
        out: List[Row] = list(self._buffer)
        self._buffer.clear()
        try:
            self._check_open()
            while not self._done:
                out.extend(self._fetch(self._page_size()))
        except BaseException:
            self._buffer.extendleft(reversed(out))
            raise
        self._delivered += len(out)
        return out

    # ------------------------------------------------------------------
    # Whole-answer paths
    # ------------------------------------------------------------------
    def count(self) -> int:
        """The number of answers, via the server's count path.

        Like a local result set's :meth:`~repro.api.result.ResultSet.count`,
        this is a side execution — the cursor position is untouched and
        counting-optimized algorithms / the server's result cache apply.
        It travels over the pool (not the pinned cursor connection), so
        it is retried like any idempotent request.
        """
        if self._count is not None:
            return self._count
        started = time.perf_counter()
        if self._prepared_key is not None:
            extra = ({"trace_id": self._trace_id}
                     if self._trace_id is not None else None)
            response = self._session._prepared_request(
                "count", self._prepared_key, self._text,
                _options_payload(self._options), extra,
            )
        else:
            op = ("cluster_count" if self._options.route == "peer"
                  else "count")
            params = {"query": self._text,
                      "options": _options_payload(self._options)}
            if op == "cluster_count":
                params["hop"] = 0
            if self._trace_id is not None:
                params["trace_id"] = self._trace_id
            response = self._session._request(op, **params)
        self._seconds += time.perf_counter() - started
        self._count = response["count"]
        if response.get("result_cached"):
            self._final.setdefault("result_cached", True)
        if response.get("trace") is not None:
            self._final["trace"] = response["trace"]
        return self._count

    @property
    def open_body(self) -> dict:
        """The raw cursor-open response body (peer opens carry gather
        summary scalars: shard map, hedges, coordinator)."""
        return self._open_body

    def close(self) -> None:
        """Release the server-side cursor early; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._buffer.clear()
        if self._conn is not None and self._cursor_id is not None \
                and not self._done:
            try:
                _result(self._conn.exchange("close", cursor=self._cursor_id))
            except (NetworkError, CursorError):
                pass  # connection gone or cursor already expired
        # checkin drops a connection the failed exchange closed.
        self._release_conn()


class RemotePreparedHandle:
    """A server-side prepared statement with the local handle surface.

    Returned by :meth:`RemoteSession.prepare`.  ``run`` builds a result
    set whose cursor and count travel by handle — the query text is
    never resent and never reparsed.  Handles are per-connection server
    state under the hood; the session re-prepares transparently on
    whichever pooled connection carries each execute (the server dedups,
    so this costs one extra round trip per connection, once), which is
    also what revives a handle the server expired or lost to a restart.
    """

    def __init__(self, session: "RemoteSession", text: str,
                 options: QueryOptions, meta: dict,
                 key: Tuple[str, str]) -> None:
        self._session = session
        self._text = text
        self._options = options
        self._meta = meta
        self._key = key
        self._closed = False

    @property
    def text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    def run(self, options: Optional[QueryOptions] = None,
            **overrides) -> "RemoteResultSet":
        """Execute the prepared shape; nothing touches the wire until
        the result set is consumed (the plan metadata is already in
        hand from ``prepare``)."""
        if self._closed:
            raise PreparedError("this prepared handle is closed")
        opts = self._session.options(
            options if options is not None else self._options, **overrides
        )
        return RemoteResultSet(self._session, self._text, opts,
                               dict(self._meta), prepared_key=self._key)

    def explain(self) -> "RemoteExplain":
        return self._session.explain(self._text, self._options)

    def close(self) -> None:
        """Deallocate (best effort) and refuse further runs; idempotent.

        Deallocation is sent on one pooled connection; entries on other
        connections fall to the server's idle TTL.
        """
        if self._closed:
            return
        self._closed = True
        try:
            conn = self._session._pool.checkout()
        except (NetworkError, ProtocolError):
            return
        try:
            handle = conn.prepared.pop(self._key, None)
            if handle is not None:
                _result(conn.exchange("deallocate", handle=handle))
        except (NetworkError, ProtocolError, ReproError):
            pass
        finally:
            self._session._pool.checkin(conn)

    def __enter__(self) -> "RemotePreparedHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"RemotePreparedHandle(text={self._text!r}, "
                f"algorithm={self.algorithm!r}, {state})")


class RemoteSession:
    """A connected remote client with the local ``Session`` surface.

    Parameters
    ----------
    url:
        ``repro://host[:port]`` (bracket IPv6 literals: ``repro://[::1]``).
    options:
        Session-default :class:`QueryOptions`; per-call overrides apply
        exactly as on a local session.
    fetch_size:
        Page size for iteration-driven fetches (explicit ``fetchmany(k)``
        always fetches exactly ``k``).
    connect_timeout:
        Seconds to wait for a TCP connection — and for a free pooled
        connection when all are checked out (queries themselves are not
        bounded client-side; use ``QueryOptions.timeout`` for that).
    pool_size:
        Upper bound on concurrently open connections.  Worker threads
        sharing one session each check out their own; every undrained
        result set pins one for its server-side cursor.
    retries:
        How many times an idempotent request (:data:`IDEMPOTENT_OPS`) is
        replayed on a fresh connection after a transport failure, with
        exponential backoff starting at ``retry_backoff`` seconds.
        Cursor fetches are never retried.
    wire_encoding:
        ``"binary"`` (the default) advertises the columnar binary fetch
        encoding in the handshake and uses it when the server agrees;
        ``"json"`` skips the advertisement entirely — indistinguishable,
        on the wire, from a protocol-v1 client.  The environment
        variable :data:`WIRE_ENCODING_ENV` overrides the default when
        the argument is ``None``.  ``self.wire_encoding`` afterwards
        holds what was actually negotiated.
    """

    def __init__(self, url: str, *, options: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE,
                 connect_timeout: float = 10.0,
                 pool_size: int = DEFAULT_POOL_SIZE,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 wire_encoding: Optional[str] = None) -> None:
        _validate_resilience_knobs(pool_size, retries, retry_backoff)
        self.url = url
        self.defaults = options if options is not None else QueryOptions()
        self.fetch_size = max(1, int(fetch_size))
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self._wire_encoding = _resolve_wire_encoding(wire_encoding)
        self.wire_encoding = "json"  # until the handshake says otherwise
        self._pool = ConnectionPool(url, size=pool_size,
                                    connect_timeout=connect_timeout)
        self._retries_attempted = 0
        self._closed = False
        try:
            hello_params = {}
            if self._wire_encoding == "binary":
                hello_params["encodings"] = list(protocol.WIRE_ENCODINGS)
            self.server_info = self._request("hello", **hello_params)
            if self._wire_encoding == "binary" \
                    and self.server_info.get("encoding") == "binary":
                self.wire_encoding = "binary"
        except BaseException:
            # A failed handshake (e.g. the endpoint is not a repro
            # server) must not leak sockets out of a constructor the
            # caller never got a handle from.
            self._closed = True
            self._pool.close()
            raise

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _attempts(self, op: str) -> int:
        return 1 + (self.retries if op in IDEMPOTENT_OPS else 0)

    def _retry_exchange(self, op: str, params: dict,
                        attempts: int) -> Tuple[_WireConnection, dict]:
        """Checkout + exchange with bounded-backoff retry; the one retry
        loop every request path shares.

        Transport failures (dead socket, EOF, garbage frame) discard the
        connection and replay on a fresh one — what rides out a server
        restart.  :class:`PoolExhausted` is not retried (nothing frees a
        connection while the retry sleeps).  Returns the raw response
        *and* the connection it arrived on; the caller owns checking the
        connection back in.
        """
        if self._closed:
            raise NetworkError("this remote session is closed")
        delay = self.retry_backoff
        # The handshake is the one op with a client-side wait bound: a
        # TCP endpoint that accepts but never answers must not hang us.
        io_timeout = self._pool.connect_timeout if op == "hello" else None
        for attempt in range(attempts):
            try:
                conn = self._pool.checkout()
                try:
                    response = conn.exchange(op, _io_timeout=io_timeout,
                                             **params)
                except (NetworkError, ProtocolError):
                    self._pool.discard(conn)
                    raise
            except PoolExhausted:
                raise
            except (NetworkError, ProtocolError):
                if attempt + 1 >= attempts:
                    raise
                self._retries_attempted += 1
                global_registry().counter("repro_client_retries_total").inc()
                time.sleep(delay)
                delay = min(delay * 2, _MAX_RETRY_BACKOFF)
                continue
            return conn, response
        raise AssertionError("unreachable")  # pragma: no cover

    def _request(self, op: str, **params) -> dict:
        """One request over the pool, with retry for idempotent ops.

        Server-reported errors are *not* retried: they re-raise as their
        original exception classes and the connection, which is still
        healthy, goes back to the pool.
        """
        conn, response = self._retry_exchange(op, params,
                                              self._attempts(op))
        try:
            return _result(response)
        finally:
            self._pool.checkin(conn)

    def _open_cursor(self, text: str, payload: dict,
                     trace_id: Optional[str] = None,
                     op: str = "cursor",
                     extra: Optional[dict] = None
                     ) -> Tuple[_WireConnection, dict]:
        """Open a server-side cursor, returning its pinned connection
        and the full open-response body (``body["cursor"]`` is the id).

        Opening is retried like an idempotent op: a cursor that was
        opened but whose open *response* was lost died with its
        connection (registries are per-connection), so replaying on a
        fresh connection leaks nothing.  ``op`` selects the open verb
        (``cluster_cursor`` for peer-routed opens) and ``extra`` rides
        extra frame fields (``hop``, ``peers``).
        """
        params = {"query": text, "options": payload}
        if trace_id is not None:
            params["trace_id"] = trace_id
        if extra:
            params.update(extra)
        conn, response = self._retry_exchange(
            op, params, 1 + self.retries,
        )
        try:
            body = _result(response)
        except ReproError:
            self._pool.checkin(conn)
            raise
        return conn, body

    # ------------------------------------------------------------------
    # Prepared-statement plumbing
    # ------------------------------------------------------------------
    def _ensure_prepared(self, conn: _WireConnection,
                         key: Tuple[str, str], text: str,
                         payload: dict) -> int:
        """The handle for ``key`` on *this* connection, preparing on
        first use.  Handles are per-connection server state; the server
        dedups, so re-preparing an already-known shape is one cheap
        round trip, not a recompile."""
        handle = conn.prepared.get(key)
        if handle is None:
            body = _result(conn.exchange("prepare", query=text,
                                         options=payload))
            handle = body["handle"]
            conn.prepared[key] = handle
        return handle

    def _prepared_once(self, conn: _WireConnection, op: str,
                       key: Tuple[str, str], text: str, payload: dict,
                       extra: Optional[dict]) -> dict:
        handle = self._ensure_prepared(conn, key, text, payload)
        params = {"handle": handle, "options": payload}
        if extra:
            params.update(extra)
        return _result(conn.exchange(op, **params))

    def _prepared_exchange(self, op: str, key: Tuple[str, str], text: str,
                           payload: dict, extra: Optional[dict] = None
                           ) -> Tuple[_WireConnection, dict]:
        """Execute-by-handle with the standard retry loop plus one
        transparent re-prepare.

        A :class:`PreparedError` means *this connection's* handle is
        gone (idle-expired, deallocated elsewhere, or the server
        restarted): drop the stale mapping and re-prepare once on the
        same connection.  Transport failures discard the connection as
        usual — the retry lands on a fresh connection whose own
        ``_ensure_prepared`` re-prepares there.
        """
        if self._closed:
            raise NetworkError("this remote session is closed")
        attempts = 1 + self.retries
        delay = self.retry_backoff
        for attempt in range(attempts):
            try:
                conn = self._pool.checkout()
                try:
                    try:
                        body = self._prepared_once(conn, op, key, text,
                                                   payload, extra)
                    except PreparedError:
                        conn.prepared.pop(key, None)
                        body = self._prepared_once(conn, op, key, text,
                                                   payload, extra)
                except (NetworkError, ProtocolError):
                    self._pool.discard(conn)
                    raise
                except ReproError:
                    self._pool.checkin(conn)
                    raise
            except PoolExhausted:
                raise
            except (NetworkError, ProtocolError):
                if attempt + 1 >= attempts:
                    raise
                self._retries_attempted += 1
                global_registry().counter("repro_client_retries_total").inc()
                time.sleep(delay)
                delay = min(delay * 2, _MAX_RETRY_BACKOFF)
                continue
            return conn, body
        raise AssertionError("unreachable")  # pragma: no cover

    def _open_prepared_cursor(self, key: Tuple[str, str], text: str,
                              payload: dict,
                              trace_id: Optional[str] = None
                              ) -> Tuple[_WireConnection, int]:
        """Open a cursor by prepared handle, returning its pinned
        connection.  Retry-safe for the same reason as ``_open_cursor``:
        a cursor whose open response was lost died with its connection.
        """
        extra = {"trace_id": trace_id} if trace_id is not None else None
        conn, body = self._prepared_exchange("cursor", key, text,
                                             payload, extra)
        return conn, body["cursor"]

    def _prepared_request(self, op: str, key: Tuple[str, str], text: str,
                          payload: dict,
                          extra: Optional[dict] = None) -> dict:
        conn, body = self._prepared_exchange(op, key, text, payload, extra)
        self._pool.checkin(conn)
        return body

    # ------------------------------------------------------------------
    # The Session surface
    # ------------------------------------------------------------------
    def options(self, options: Optional[QueryOptions] = None,
                **overrides) -> QueryOptions:
        """Resolve per-call options against the session defaults."""
        return QueryOptions.resolve(options, overrides,
                                    defaults=self.defaults)

    def run(self, query, options: Optional[QueryOptions] = None,
            **overrides) -> RemoteResultSet:
        """Open a server-side cursor for ``query``; nothing executes yet.

        Options validate client-side (the same
        :class:`~repro.errors.OptionsError` boundary as a local session)
        before anything touches the wire.  With ``route="peer"`` the
        plan probe travels as ``cluster_run`` (``hop=0``): the server
        answers with its peer-fleet plan (shards, partitioning) and
        later consumption gathers server-side.
        """
        opts = self.options(options, **overrides)
        text = str(query)
        if opts.route == "peer":
            meta = self._request("cluster_run", query=text,
                                 options=_options_payload(opts), hop=0)
        else:
            meta = self._request("run", query=text,
                                 options=_options_payload(opts))
        return RemoteResultSet(self, text, opts, meta)

    def prepare(self, query, options: Optional[QueryOptions] = None,
                **overrides) -> RemotePreparedHandle:
        """Register ``query`` server-side and return a reusable handle.

        Preparing pays the parse/decompose/plan cost once; every
        subsequent :meth:`RemotePreparedHandle.run` sends only the
        integer handle — the server never reparses, and the client
        never resends the text.  Preparing the same text twice dedups
        to the same server-side statement.
        """
        opts = self.options(options, **overrides)
        text = str(query)
        key = (text, opts.algorithm)
        conn, response = self._retry_exchange(
            "prepare", {"query": text, "options": _options_payload(opts)},
            self._attempts("prepare"))
        try:
            meta = _result(response)
            conn.prepared[key] = meta["handle"]
        finally:
            self._pool.checkin(conn)
        return RemotePreparedHandle(self, text, opts, meta, key)

    def explain(self, query, options: Optional[QueryOptions] = None,
                **overrides) -> RemoteExplain:
        """The server's structured plan report for ``query``."""
        opts = self.options(options, **overrides)
        response = self._request("explain", query=str(query),
                                 options=_options_payload(opts))
        return RemoteExplain(response["report"], response["rendered"])

    def stats(self) -> dict:
        """Connection, cursor, and service counters from the server.

        ``connection`` and ``cursors`` describe whichever pooled
        connection carried this request; ``service`` is global.
        ``client`` is local: this session's resilience accounting —
        retries attempted, stale connections replaced by the pool's
        health probe, connections dialled.
        """
        response = self._request("stats")
        stats = {key: response[key]
                 for key in ("connection", "cursors", "service")}
        if "prepared" in response:  # absent from protocol-v1 servers
            stats["prepared"] = response["prepared"]
        stats["client"] = {
            "retries": self._retries_attempted,
            "health_replaced": self._pool.health_replaced,
            "dialed": self._pool.dialed,
            "checkouts": self._pool.checkouts,
        }
        return stats

    def metrics(self) -> str:
        """The server's metrics registry in Prometheus text format."""
        return self._request("metrics")["metrics"]

    def events(self, limit: Optional[int] = None) -> List[dict]:
        """The server's flight-recorder ring, oldest first."""
        params = {} if limit is None else {"limit": int(limit)}
        return self._request("events", **params)["events"]

    def close(self) -> None:
        """Say goodbye on idle connections and close the pool; idempotent.

        Connections pinned by undrained result sets are closed too (no
        socket outlives the session); their cursors die with them.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._pool.pop_all_idle():
            try:
                conn.exchange("goodbye")
            except (NetworkError, ProtocolError):
                pass
            conn.close()
        self._pool.close()

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"RemoteSession({self.url!r}, {state}, "
                f"pool={self._pool.size})")


def connect(url: str, *,
            algorithm: str = "auto",
            parallel: Optional[int] = None,
            partition_mode: str = "auto",
            timeout: Optional[float] = None,
            use_cache: bool = True,
            limit: Optional[int] = None,
            trace: bool = False,
            route: Optional[str] = None,
            fetch_size: int = DEFAULT_FETCH_SIZE,
            connect_timeout: float = 10.0,
            pool_size: int = DEFAULT_POOL_SIZE,
            retries: int = DEFAULT_RETRIES,
            retry_backoff: float = DEFAULT_RETRY_BACKOFF,
            wire_encoding: Optional[str] = None) -> RemoteSession:
    """Open a :class:`RemoteSession`; keyword args become its defaults.

    ``route="peer"`` makes every query travel as a peer-coordinated
    cluster op: the server sub-shards across its ``--peers`` fleet and
    merges server-side, so only the merged answer crosses this hop.
    """
    options = QueryOptions(
        algorithm=algorithm, parallel=parallel,
        partition_mode=partition_mode, timeout=timeout,
        use_cache=use_cache, limit=limit, trace=trace, route=route,
    )
    return RemoteSession(url, options=options, fetch_size=fetch_size,
                         connect_timeout=connect_timeout,
                         pool_size=pool_size, retries=retries,
                         retry_backoff=retry_backoff,
                         wire_encoding=wire_encoding)


# ----------------------------------------------------------------------
# Async variant
# ----------------------------------------------------------------------
class AsyncRemoteResultSet:
    """The awaitable twin of :class:`RemoteResultSet`.

    Supports ``async for`` (bindings), ``await fetchmany/fetchall/count``,
    and ``await close``.  Shares one forward-only position.  The cursor
    lives on the session's single multiplexed connection; if that
    connection is re-established (a reconnect after a server restart),
    the cursor did not survive and fetches raise :class:`CursorError`.
    """

    def __init__(self, session: "AsyncRemoteSession", query_text: str,
                 options: QueryOptions, meta: dict,
                 prepared_key: Optional[Tuple[str, str]] = None,
                 shard: Optional[dict] = None,
                 trace_id: Optional[str] = None,
                 span: Optional[dict] = None,
                 open_op: str = "cursor",
                 open_extra: Optional[dict] = None) -> None:
        import asyncio

        self._session = session
        self._text = query_text
        self._options = options
        self._prepared_key = prepared_key
        # Which verb opens the cursor ("cluster_cursor" for peer-routed
        # or peer-dispatched opens) and extra frame fields riding the
        # open ("hop", "peers").  Fetching afterwards is op-agnostic:
        # a cursor id names the same registry either way.
        self._open_op = open_op
        self._open_extra = open_extra
        self._open_body: dict = {}
        # Optional shard restriction (the distributed coordinator's
        # {"scheme": ..., "cell": ...} wire form); rides on every cursor
        # open and count for this result set.
        self._shard = shard
        # Optional distributed trace context: the coordinator's trace id
        # plus its {"id", "shard", "attempt"} span descriptor; stamped on
        # every cursor open and count so the server executes under the
        # adopted context and its span subtree correlates back.
        self._trace_id = trace_id
        self._span = span
        self._server_stats: dict = {}
        self._cursor_id: Optional[int] = None  # opened at first fetch
        self._generation: Optional[int] = None  # connection it lives on
        self._variables = tuple(Variable(name) for name in meta["columns"])
        self._meta = meta
        self._buffer: Deque[Row] = deque()
        self._done = False
        self._closed = False
        self._gone: Optional[str] = None
        self._count: Optional[int] = None
        # A server cursor allows one fetch in flight (a stream has one
        # position); concurrent fetchmany calls on this result set
        # serialize here instead of tripping the server's busy-guard.
        self._fetch_lock = asyncio.Lock()

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self._variables)

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    @property
    def complete(self) -> bool:
        return self._done and not self._buffer

    def _page_size(self) -> int:
        return self._options.fetch_size or self._session.fetch_size

    async def _ensure_cursor(self) -> None:
        if self._cursor_id is None:
            if self._prepared_key is not None:
                body, generation = await self._session._prepared_send(
                    "cursor", self._prepared_key, self._text,
                    _options_payload(self._options)
                )
                self._cursor_id, self._generation = body["cursor"], generation
            else:
                body, self._generation = \
                    await self._session._open_cursor(
                        self._text, _options_payload(self._options),
                        shard=self._shard, trace_id=self._trace_id,
                        span=self._span, op=self._open_op,
                        extra=self._open_extra,
                    )
                self._cursor_id = body["cursor"]
                self._open_body = body

    async def _fetch(self, size: int) -> List[Row]:
        async with self._fetch_lock:
            return await self._fetch_page(size)

    async def _fetch_page(self, size: int) -> List[Row]:
        if self._closed:
            raise CursorError("this remote cursor was closed")
        if self._gone is not None:
            raise CursorError(self._gone)
        if self._done:
            # A concurrent fetch drained the stream while this one
            # waited on the lock.
            return []
        await self._ensure_cursor()
        if self._generation != self._session._generation:
            self._gone = (
                "the server-side cursor for this result set is gone: the "
                "connection was re-established (server restart or network "
                "failure) and cursors do not survive reconnection — "
                "re-run the query for a fresh result set"
            )
            raise CursorError(self._gone)
        params = {"cursor": self._cursor_id, "size": size}
        if self._session.wire_encoding == "binary":
            params["encoding"] = "binary"
        try:
            response = await self._session._send("fetch", params)
        except (NetworkError, ProtocolError) as error:
            self._gone = (
                f"the server-side cursor for this result set is gone "
                f"({error}); a fetch is never retried — re-run the query "
                f"for a fresh result set"
            )
            raise CursorError(self._gone) from error
        try:
            body = _result(response)
        except AdmissionError:
            # Transient overload, rejected before the stream moved: the
            # cursor is untouched — fetch again when the queue drains.
            raise
        except ReproError:
            self._gone = (
                "the server-side cursor for this result set failed and "
                "was dropped by the server; re-run the query for a "
                "fresh result set"
            )
            raise
        rows = [tuple(row) for row in body["rows"]]
        if body["done"]:
            self._done = True
            stats = body.get("stats") or {}
            self._server_stats = stats
            if stats.get("total") is not None:
                self._count = stats["total"]
        return rows

    def __aiter__(self):
        return self

    def _check_open(self) -> None:
        if self._closed and not self._done:
            raise CursorError(
                "this remote cursor was closed before it was drained; "
                "re-run the query for a fresh result set"
            )

    async def __anext__(self):
        if not self._buffer:
            self._check_open()
            if self._done:
                raise StopAsyncIteration
            self._buffer.extend(await self._fetch(self._page_size()))
            if not self._buffer:
                raise StopAsyncIteration
        return dict(zip(self._variables, self._buffer.popleft()))

    async def fetchmany(self, size: int = 1) -> List[Row]:
        """Up to ``size`` more rows; loops past the server's per-fetch
        clamp, so a short return only ever means end-of-answer."""
        out: List[Row] = []
        while self._buffer and len(out) < size:
            out.append(self._buffer.popleft())
        try:
            if len(out) < size:
                self._check_open()
            while len(out) < size and not self._done:
                page = await self._fetch(size - len(out))
                if not page:
                    break
                out.extend(page)
        except BaseException:
            # Rows already in hand go back to the buffer: a retried call
            # (e.g. after a transient AdmissionError) must not skip them.
            self._buffer.extendleft(reversed(out))
            raise
        return out

    async def fetchall(self) -> List[Row]:
        out: List[Row] = list(self._buffer)
        self._buffer.clear()
        try:
            self._check_open()
            while not self._done:
                out.extend(await self._fetch(self._page_size()))
        except BaseException:
            self._buffer.extendleft(reversed(out))
            raise
        return out

    async def count(self) -> int:
        if self._count is not None:
            return self._count
        if self._prepared_key is not None:
            body, _ = await self._session._prepared_send(
                "count", self._prepared_key, self._text,
                _options_payload(self._options)
            )
        else:
            op = ("cluster_count" if self._options.route == "peer"
                  else "count")
            params = {"query": self._text,
                      "options": _options_payload(self._options)}
            if op == "cluster_count":
                params["hop"] = 0
            if self._shard is not None:
                params["shard"] = self._shard
            if self._trace_id is not None:
                params["trace_id"] = self._trace_id
            if self._span is not None:
                params["span"] = self._span
            body = await self._session._request(op, **params)
        if body.get("trace") is not None:
            self._server_stats = dict(self._server_stats,
                                      trace=body["trace"])
        self._count = body["count"]
        return self._count

    @property
    def open_body(self) -> dict:
        """The raw cursor-open response body (peer opens carry gather
        summary scalars: shard map, hedges, coordinator)."""
        return self._open_body

    @property
    def server_stats(self) -> dict:
        """The final server-side stats (set once the stream drains)."""
        return self._server_stats

    @property
    def server_trace(self) -> Optional[dict]:
        """The server's span subtree, if the response carried one."""
        trace = self._server_stats.get("trace")
        return trace if isinstance(trace, dict) else None

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buffer.clear()
        if self._cursor_id is not None and not self._done \
                and self._gone is None \
                and self._generation == self._session._generation:
            try:
                _result(await self._session._send(
                    "close", {"cursor": self._cursor_id}
                ))
            except (NetworkError, CursorError):
                pass


class AsyncRemoteSession:
    """An asyncio remote session that **multiplexes** one connection.

    Obtained from :func:`connect_async`.  Any number of requests may be
    in flight at once: each is written to the shared socket with a fresh
    id, a background reader task matches responses to their ids, and the
    server overlaps the work on its pool — so ``asyncio.gather`` over
    many ``session.run(...)`` / ``.count()`` calls pipelines them all
    through a single TCP connection.

    On a transport failure the session reconnects lazily and replays
    idempotent requests (:data:`IDEMPOTENT_OPS`) with exponential
    backoff, like the sync pool.  Open cursors do not survive a
    reconnect: their fetches raise :class:`CursorError`.
    """

    def __init__(self, url: str, *, options: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 connect_timeout: float = 10.0,
                 wire_encoding: Optional[str] = None) -> None:
        _validate_resilience_knobs(None, retries, retry_backoff)
        self.url = url
        self.defaults = options if options is not None else QueryOptions()
        self.fetch_size = max(1, int(fetch_size))
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.connect_timeout = connect_timeout
        self._wire_encoding = _resolve_wire_encoding(wire_encoding)
        self.wire_encoding = "json"  # until the handshake says otherwise
        # (text, algorithm) -> (handle, connection generation).  Handles
        # are per-connection server state, so a reconnect (generation
        # bump) strands every mapping; _ensure_prepared re-prepares.
        self._prepared: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._reader = None
        self._writer = None
        self._reader_task = None
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._conn_lock = None   # created on the running loop in _open
        self._write_lock = None
        self._next_id = 0
        self._generation = 0  # bumped per (re)connect; cursors pin one
        self._retries_attempted = 0
        self._closed = False
        self.server_info: dict = {}

    async def _open(self) -> "AsyncRemoteSession":
        import asyncio

        self._conn_lock = asyncio.Lock()
        self._write_lock = asyncio.Lock()
        try:
            await self._ensure_connected()
            hello_params = {}
            if self._wire_encoding == "binary":
                hello_params["encodings"] = list(protocol.WIRE_ENCODINGS)
            self.server_info = await self._request("hello", **hello_params)
            if self._wire_encoding == "binary" \
                    and self.server_info.get("encoding") == "binary":
                self.wire_encoding = "binary"
        except BaseException:
            # A failed handshake must not leak the transport or the
            # reader task out of a constructor the caller never got a
            # handle from (mirrors the sync constructor's pool close).
            self._closed = True
            await self._teardown_transport()
            raise
        return self

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    async def _ensure_connected(self) -> None:
        import asyncio

        async with self._conn_lock:
            if self._closed:
                raise NetworkError("this remote session is closed")
            if self._writer is not None and self._reader_task is not None \
                    and not self._reader_task.done():
                return
            await self._teardown_transport()
            host, port = parse_url(self.url)
            try:
                self._reader, self._writer = await asyncio.wait_for(
                    asyncio.open_connection(host, port),
                    self.connect_timeout,
                )
            except (OSError, asyncio.TimeoutError) as error:
                raise NetworkError(
                    f"could not connect to {self.url}: {error}"
                ) from None
            self._generation += 1
            if self._generation > 1:
                # Anything past the first connect is a reconnect.
                global_registry().counter(
                    "repro_client_reconnects_total").inc()
            self._pending = {}
            self._reader_task = asyncio.get_running_loop().create_task(
                self._read_loop(self._reader, self._pending)
            )

    async def _read_loop(self, reader, pending: Dict[int, object]) -> None:
        """Match every inbound frame to its waiting request by id.

        This is the demultiplexer that makes pipelining work: responses
        arrive in completion order, not request order.  On any transport
        failure every in-flight request fails with the same error.
        """
        import asyncio

        missing = object()
        error: Optional[ReproError] = None
        bytes_counter = global_registry().counter("repro_client_bytes_total")

        async def counting_readexactly(size):
            data = await reader.readexactly(size)
            if data:
                bytes_counter.inc(len(data), direction="received")
            return data

        try:
            while True:
                frame = await protocol.read_frame_async(counting_readexactly)
                if frame is None:
                    error = NetworkError(
                        f"server at {self.url} closed the connection"
                    )
                    break
                future = pending.pop(frame.get("id"), missing)
                if future is missing:
                    error = ProtocolError(
                        f"response for unknown request id "
                        f"{frame.get('id')!r}"
                    )
                    break
                if future is None:
                    continue  # tombstone: the request was cancelled
                if not future.done():
                    future.set_result(frame)
        except ProtocolError as exc:
            error = exc
        except OSError as exc:
            error = NetworkError(f"connection to {self.url} failed: {exc}")
        except asyncio.CancelledError:
            error = NetworkError(f"connection to {self.url} was closed")
        finally:
            if error is None:  # pragma: no cover - belt and braces
                error = NetworkError(f"connection to {self.url} was lost")
            for future in list(pending.values()):
                if future is not None and not future.done():
                    future.set_exception(error)
            pending.clear()

    async def _send(self, op: str, params: dict) -> dict:
        """Write one frame and await its matched response (no retry)."""
        import asyncio

        if self._closed:
            raise NetworkError("this remote session is closed")
        if self._writer is None or self._reader_task is None \
                or self._reader_task.done():
            raise NetworkError(f"not connected to {self.url}")
        # Snapshot the transport: if a concurrent request triggers a
        # reconnect while this one waits on the write lock, writing to
        # the *old* (now closed) writer fails cleanly — never a frame on
        # the new connection whose response the new reader can't match.
        writer = self._writer
        pending = self._pending
        self._next_id += 1
        request_id = self._next_id
        future = asyncio.get_running_loop().create_future()
        pending[request_id] = future
        frame = {"id": request_id, "op": op, **params}
        try:
            async with self._write_lock:
                data = protocol.encode_frame(frame)
                writer.write(data)
                await writer.drain()
                global_registry().counter(
                    "repro_client_bytes_total"
                ).inc(len(data), direction="sent")
        except (OSError, RuntimeError) as error:
            pending.pop(request_id, None)
            raise NetworkError(
                f"connection to {self.url} failed: {error}"
            ) from None
        try:
            return await future
        except asyncio.CancelledError:
            if pending.get(request_id) is future:
                # Tombstone: the response is still on its way; the read
                # loop must discard it rather than treat it as protocol
                # desync (which would fail every other in-flight call).
                pending[request_id] = None
            raise

    async def _teardown_transport(self) -> None:
        import asyncio

        task, self._reader_task = self._reader_task, None
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass
        if task is not None:
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    async def _retry_send(self, op: str, params: dict,
                          attempts: int) -> Tuple[dict, int]:
        """(Re)connect + send with bounded-backoff retry; the one retry
        loop every async request path shares.

        Returns the raw response and the connection *generation* it was
        exchanged on (cursor opens pin their cursor to it).  The
        ``hello`` handshake is additionally bounded by
        ``connect_timeout``: an endpoint that accepts TCP but never
        answers must not hang the client forever.
        """
        import asyncio

        delay = self.retry_backoff
        for attempt in range(attempts):
            try:
                await self._ensure_connected()
                generation = self._generation
                if op == "hello":
                    try:
                        response = await asyncio.wait_for(
                            self._send(op, params), self.connect_timeout
                        )
                    except asyncio.TimeoutError:
                        raise NetworkError(
                            f"server at {self.url} did not answer the "
                            f"handshake within {self.connect_timeout}s"
                        ) from None
                else:
                    response = await self._send(op, params)
            except (NetworkError, ProtocolError):
                if attempt + 1 >= attempts:
                    raise
                self._retries_attempted += 1
                global_registry().counter("repro_client_retries_total").inc()
                await asyncio.sleep(delay)
                delay = min(delay * 2, _MAX_RETRY_BACKOFF)
                continue
            return response, generation
        raise AssertionError("unreachable")  # pragma: no cover

    async def _request(self, op: str, **params) -> dict:
        """One request, reconnecting + retrying idempotent ops."""
        attempts = 1 + (self.retries if op in IDEMPOTENT_OPS else 0)
        response, _ = await self._retry_send(op, params, attempts)
        return _result(response)

    async def _open_cursor(self, text: str, payload: dict,
                           shard: Optional[dict] = None,
                           trace_id: Optional[str] = None,
                           span: Optional[dict] = None,
                           op: str = "cursor",
                           extra: Optional[dict] = None
                           ) -> Tuple[dict, int]:
        """Open a server cursor; returns (open body, connection
        generation) — ``body["cursor"]`` is the id.

        Retried like an idempotent op — a cursor whose open response was
        lost died with its connection, so a replay leaks nothing.
        ``shard`` (optional) restricts the cursor to one grid cell of a
        distributed partitioning; ``trace_id``/``span`` carry the
        coordinator's distributed trace context; ``op``/``extra`` select
        the open verb (``cluster_cursor``) and its extra frame fields
        (``hop``, ``peers``) for peer-coordinated opens.
        """
        params = {"query": text, "options": payload}
        if shard is not None:
            params["shard"] = shard
        if trace_id is not None:
            params["trace_id"] = trace_id
        if span is not None:
            params["span"] = span
        if extra:
            params.update(extra)
        response, generation = await self._retry_send(
            op, params, 1 + self.retries,
        )
        return _result(response), generation

    # ------------------------------------------------------------------
    # Prepared-statement plumbing
    # ------------------------------------------------------------------
    async def _ensure_prepared(self, key: Tuple[str, str], text: str,
                               payload: dict) -> int:
        """The handle for ``key`` on the *current* connection, preparing
        when the mapping is missing or pinned to a pre-reconnect
        generation.  Single attempt — the callers' retry loops own
        reconnection."""
        entry = self._prepared.get(key)
        if entry is not None and entry[1] == self._generation:
            return entry[0]
        body = _result(await self._send(
            "prepare", {"query": text, "options": payload}
        ))
        self._prepared[key] = (body["handle"], self._generation)
        return body["handle"]

    async def _prepared_send(self, op: str, key: Tuple[str, str],
                             text: str, payload: dict,
                             extra: Optional[dict] = None
                             ) -> Tuple[dict, int]:
        """Execute-by-handle with the standard retry loop plus one
        transparent re-prepare on :class:`PreparedError` (the server
        idle-expired or lost the handle while the connection lived).
        Returns the result body and the generation it was exchanged on.
        """
        import asyncio

        attempts = 1 + self.retries
        delay = self.retry_backoff
        for attempt in range(attempts):
            try:
                await self._ensure_connected()
                generation = self._generation
                handle = await self._ensure_prepared(key, text, payload)
                params = {"handle": handle, "options": payload}
                if extra:
                    params.update(extra)
                try:
                    body = _result(await self._send(op, params))
                except PreparedError:
                    self._prepared.pop(key, None)
                    params["handle"] = await self._ensure_prepared(
                        key, text, payload)
                    body = _result(await self._send(op, params))
            except (NetworkError, ProtocolError):
                if attempt + 1 >= attempts:
                    raise
                self._retries_attempted += 1
                global_registry().counter("repro_client_retries_total").inc()
                await asyncio.sleep(delay)
                delay = min(delay * 2, _MAX_RETRY_BACKOFF)
                continue
            return body, generation
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # The Session surface
    # ------------------------------------------------------------------
    def options(self, options: Optional[QueryOptions] = None,
                **overrides) -> QueryOptions:
        return QueryOptions.resolve(options, overrides,
                                    defaults=self.defaults)

    async def run(self, query, options: Optional[QueryOptions] = None,
                  **overrides) -> AsyncRemoteResultSet:
        """Open a server-side cursor for ``query``; nothing executes yet.

        ``route="peer"`` sends the peer-coordinated ``cluster_*`` ops
        (``hop=0``) so the server gathers from its fleet and merges
        before this hop.
        """
        opts = self.options(options, **overrides)
        text = str(query)
        if opts.route == "peer":
            meta = await self._request("cluster_run", query=text,
                                       options=_options_payload(opts),
                                       hop=0)
            return AsyncRemoteResultSet(self, text, opts, meta,
                                        open_op="cluster_cursor",
                                        open_extra={"hop": 0})
        meta = await self._request("run", query=text,
                                   options=_options_payload(opts))
        return AsyncRemoteResultSet(self, text, opts, meta)

    async def prepare(self, query, options: Optional[QueryOptions] = None,
                      **overrides) -> "AsyncRemotePreparedHandle":
        """Register ``query`` server-side and return a reusable handle.

        Parse/decompose/plan happen once, at prepare time; every
        subsequent ``handle.run()`` sends only the integer handle.  A
        reconnect strands server-side handles — the session re-prepares
        transparently on the next execute.
        """
        opts = self.options(options, **overrides)
        text = str(query)
        key = (text, opts.algorithm)
        response, generation = await self._retry_send(
            "prepare", {"query": text, "options": _options_payload(opts)},
            1 + self.retries,
        )
        meta = _result(response)
        self._prepared[key] = (meta["handle"], generation)
        return AsyncRemotePreparedHandle(self, text, opts, meta, key)

    async def explain(self, query, options: Optional[QueryOptions] = None,
                      **overrides) -> RemoteExplain:
        opts = self.options(options, **overrides)
        response = await self._request("explain", query=str(query),
                                       options=_options_payload(opts))
        return RemoteExplain(response["report"], response["rendered"])

    async def stats(self) -> dict:
        """Server counters plus this session's resilience accounting:
        retries attempted and reconnects (generation bumps past the
        first connect)."""
        response = await self._request("stats")
        stats = {key: response[key]
                 for key in ("connection", "cursors", "service")}
        if "prepared" in response:  # absent from protocol-v1 servers
            stats["prepared"] = response["prepared"]
        stats["client"] = {
            "retries": self._retries_attempted,
            "reconnects": max(0, self._generation - 1),
            "generation": self._generation,
        }
        return stats

    async def metrics(self) -> str:
        """The server's metrics registry in Prometheus text format."""
        return (await self._request("metrics"))["metrics"]

    async def events(self, limit: Optional[int] = None) -> List[dict]:
        """The server's flight-recorder ring, oldest first."""
        params = {} if limit is None else {"limit": int(limit)}
        return (await self._request("events", **params))["events"]

    async def close(self) -> None:
        if self._closed:
            return
        if self._writer is not None and self._reader_task is not None \
                and not self._reader_task.done():
            try:
                await self._send("goodbye", {})
            except (NetworkError, ProtocolError):
                pass
        self._closed = True
        await self._teardown_transport()

    async def __aenter__(self) -> "AsyncRemoteSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"AsyncRemoteSession({self.url!r}, {state})"


class AsyncRemotePreparedHandle:
    """A server-side prepared statement on an async session.

    Returned by :meth:`AsyncRemoteSession.prepare`.  ``run`` is a pure
    constructor — no frame travels until the result set is consumed,
    at which point the cursor opens by handle (never by text).
    """

    def __init__(self, session: AsyncRemoteSession, text: str,
                 options: QueryOptions, meta: dict,
                 key: Tuple[str, str]) -> None:
        self._session = session
        self._text = text
        self._options = options
        self._meta = meta
        self._key = key
        self._closed = False

    @property
    def text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    async def run(self, options: Optional[QueryOptions] = None,
                  **overrides) -> AsyncRemoteResultSet:
        if self._closed:
            raise PreparedError("this prepared handle is closed")
        opts = self._session.options(
            options if options is not None else self._options, **overrides
        )
        return AsyncRemoteResultSet(self._session, self._text, opts,
                                    dict(self._meta),
                                    prepared_key=self._key)

    async def explain(self) -> RemoteExplain:
        return await self._session.explain(self._text, self._options)

    async def close(self) -> None:
        """Deallocate (best effort) and refuse further runs; idempotent."""
        if self._closed:
            return
        self._closed = True
        entry = self._session._prepared.pop(self._key, None)
        if entry is not None and entry[1] == self._session._generation:
            try:
                _result(await self._session._send(
                    "deallocate", {"handle": entry[0]}
                ))
            except (NetworkError, ProtocolError, ReproError):
                pass

    async def __aenter__(self) -> "AsyncRemotePreparedHandle":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"AsyncRemotePreparedHandle(text={self._text!r}, "
                f"algorithm={self.algorithm!r}, {state})")


async def connect_async(url: str, *,
                        algorithm: str = "auto",
                        parallel: Optional[int] = None,
                        partition_mode: str = "auto",
                        timeout: Optional[float] = None,
                        use_cache: bool = True,
                        limit: Optional[int] = None,
                        trace: bool = False,
                        route: Optional[str] = None,
                        fetch_size: int = DEFAULT_FETCH_SIZE,
                        retries: int = DEFAULT_RETRIES,
                        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                        connect_timeout: float = 10.0,
                        wire_encoding: Optional[str] = None
                        ) -> AsyncRemoteSession:
    """Open an :class:`AsyncRemoteSession`: ``await repro.net.connect_async(...)``."""
    options = QueryOptions(
        algorithm=algorithm, parallel=parallel,
        partition_mode=partition_mode, timeout=timeout,
        use_cache=use_cache, limit=limit, trace=trace, route=route,
    )
    session = AsyncRemoteSession(url, options=options, fetch_size=fetch_size,
                                 retries=retries, retry_backoff=retry_backoff,
                                 connect_timeout=connect_timeout,
                                 wire_encoding=wire_encoding)
    return await session._open()
