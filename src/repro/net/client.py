""":class:`RemoteSession` — the client end of the wire protocol.

``connect("repro://host:port")`` opens a TCP connection to a
:class:`~repro.net.server.ReproServer` and returns a session with the
exact :class:`~repro.api.session.Session` execution surface::

    with repro.connect("repro://127.0.0.1:9944") as session:
        for binding in session.run("edge(a,b), edge(b,c)", limit=10):
            ...
        session.explain("edge(a,b), edge(b,c)").render()

``run`` returns a :class:`RemoteResultSet`: the server holds the lazy
result stream as a **server-side cursor** and the client pages it with
``fetchmany``-sized ``fetch`` requests — consuming *k* rows of a huge
join moves O(k) rows over the wire and pulls O(k) rows from the
executor, the same laziness contract as a local
:class:`~repro.api.result.ResultSet`.  Both share the
:class:`~repro.api.result.RowCursor` surface, so iteration, ``rows()``,
``fetchmany``, and ``fetchall`` compose identically.

``connect_async`` is the :mod:`asyncio` twin: ``await session.run(...)``
returns an :class:`AsyncRemoteResultSet` supporting ``async for`` and
awaitable fetches.

Server-reported failures re-raise as their original
:class:`~repro.errors.ReproError` subclasses (parse errors as
:class:`ParseError`, timeouts as :class:`TimeoutExceeded`, ...), so error
handling — including the CLI's exit-code mapping — is transport-agnostic.
"""

from __future__ import annotations

import socket
import time
from collections import deque
from dataclasses import asdict
from typing import Deque, List, Optional, Tuple

from repro.api.options import QueryOptions
from repro.api.result import ResultStats, Row, RowCursor
from repro.datalog.terms import Variable
from repro.errors import CursorError, NetworkError, ProtocolError
from repro.net import protocol
from repro.net.server import DEFAULT_PORT

#: How many rows one iteration-driven fetch pulls by default.
DEFAULT_FETCH_SIZE = 512


def parse_url(url: str) -> Tuple[str, int]:
    """Split ``repro://host[:port]`` into ``(host, port)``."""
    if not isinstance(url, str) or not url.startswith("repro://"):
        raise NetworkError(
            f"remote URL must look like repro://host:port, got {url!r}"
        )
    rest = url[len("repro://"):].rstrip("/")
    if not rest:
        raise NetworkError(f"remote URL {url!r} names no host")
    host, _, port_text = rest.rpartition(":")
    if not host:
        return rest, DEFAULT_PORT
    try:
        port = int(port_text)
    except ValueError:
        raise NetworkError(
            f"remote URL {url!r} has a non-numeric port {port_text!r}"
        ) from None
    if not 0 < port < 65536:
        raise NetworkError(f"remote URL {url!r} port out of range")
    return host, port


def _options_payload(options: QueryOptions) -> dict:
    """The options bundle as wire JSON (``None`` = inherit server default)."""
    return asdict(options)


class RemoteExplain:
    """A plan report fetched over the wire.

    Mirrors the read surface of :class:`~repro.api.explain.Explain`:
    :meth:`as_dict` is the server report verbatim, :meth:`render` the
    server-rendered text.
    """

    def __init__(self, report: dict, rendered: str) -> None:
        self._report = report
        self._rendered = rendered

    def as_dict(self) -> dict:
        return self._report

    def render(self) -> str:
        return self._rendered

    def __str__(self) -> str:
        return self._rendered


class RemoteResultSet(RowCursor):
    """A server-side cursor paged over the wire, with the local surface.

    ``fetchmany(k)`` issues one ``fetch`` of exactly the missing rows;
    iteration pulls pages of the session's ``fetch_size``.  The cursor is
    forward-only and shared across the consumption methods, exactly like
    a local :class:`~repro.api.result.ResultSet`.
    """

    def __init__(self, session: "RemoteSession", query_text: str,
                 options: QueryOptions, meta: dict) -> None:
        self._session = session
        self._text = query_text
        self._options = options
        # The server holds no cursor yet: one is opened lazily at the
        # first fetch, so a result set that is only counted (or never
        # consumed) pins nothing remotely.
        self._cursor_id: Optional[int] = None
        self._variables = tuple(Variable(name) for name in meta["columns"])
        self._meta = meta
        self._buffer: Deque[Row] = deque()
        self._done = False
        self._closed = False
        self._delivered = 0
        self._count: Optional[int] = None
        self._final: dict = {}
        self._seconds = 0.0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query_text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    @property
    def shards(self) -> int:
        return self._meta["shards"]

    @property
    def complete(self) -> bool:
        """True once the full answer has been pulled over the wire."""
        return self._done and not self._buffer

    @property
    def stats(self) -> ResultStats:
        """What this result did, merged from plan metadata and fetches."""
        return ResultStats(
            query=self._text,
            algorithm=self._meta["algorithm"],
            requested_algorithm=self._meta.get(
                "requested_algorithm", self._options.algorithm
            ),
            partitioning=self._meta.get("partitioning", "serial"),
            shards=self._meta["shards"],
            plan_cached=self._meta.get("plan_cached", False),
            result_cached=self._final.get("result_cached", False),
            plan_seconds=0.0,
            execution_seconds=self._seconds,
            rows_delivered=self._delivered,
            complete=self.complete,
            limit=self._options.limit,
            total=self._count,
        )

    # ------------------------------------------------------------------
    # Paging
    # ------------------------------------------------------------------
    def _ensure_cursor(self) -> int:
        """Open the server-side cursor on first use."""
        if self._cursor_id is None:
            response = self._session._request(
                "cursor", query=self._text,
                options=_options_payload(self._options),
            )
            self._cursor_id = response["cursor"]
        return self._cursor_id

    def _fetch(self, size: int) -> List[Row]:
        """One wire ``fetch`` of up to ``size`` rows; updates done state."""
        if self._closed:
            raise CursorError("this remote cursor was closed")
        started = time.perf_counter()
        response = self._session._request(
            "fetch", cursor=self._ensure_cursor(), size=size
        )
        self._seconds += time.perf_counter() - started
        rows = [tuple(row) for row in response["rows"]]
        if response["done"]:
            self._done = True
            self._final = response.get("stats") or {}
            if self._final.get("total") is not None:
                self._count = self._final["total"]
        return rows

    def _check_open(self) -> None:
        """A closed-but-undrained cursor must not read like a clean end."""
        if self._closed and not self._done:
            raise CursorError(
                "this remote cursor was closed before it was drained; "
                "re-run the query for a fresh result set"
            )

    def _pull(self) -> Optional[Row]:
        if not self._buffer:
            self._check_open()
            if self._done:
                return None
            self._buffer.extend(self._fetch(self._session.fetch_size))
            if not self._buffer:
                return None
        self._delivered += 1
        return self._buffer.popleft()

    def fetchmany(self, size: int = 1) -> List[Row]:
        """Up to ``size`` more rows, costing one wire round trip at most.

        Rows already buffered by iteration are served first; the
        remainder is a single ``fetch`` of exactly the missing count, so
        the server's executor advances by at most ``size`` rows.
        """
        out: List[Row] = []
        while self._buffer and len(out) < size:
            out.append(self._buffer.popleft())
        if len(out) < size:
            self._check_open()
        # Loop: the server clamps one fetch to its MAX_FETCH_SIZE, so a
        # huge request takes several round trips — a short return must
        # only ever mean end-of-answer, as with a local result set.
        while len(out) < size and not self._done:
            page = self._fetch(size - len(out))
            if not page:
                break
            out.extend(page)
        self._delivered += len(out)
        return out

    # ------------------------------------------------------------------
    # Whole-answer paths
    # ------------------------------------------------------------------
    def count(self) -> int:
        """The number of answers, via the server's count path.

        Like a local result set's :meth:`~repro.api.result.ResultSet.count`,
        this is a side execution — the cursor position is untouched and
        counting-optimized algorithms / the server's result cache apply.
        """
        if self._count is not None:
            return self._count
        started = time.perf_counter()
        response = self._session._request(
            "count", query=self._text,
            options=_options_payload(self._options),
        )
        self._seconds += time.perf_counter() - started
        self._count = response["count"]
        if response.get("result_cached"):
            self._final.setdefault("result_cached", True)
        return self._count

    def close(self) -> None:
        """Release the server-side cursor early; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._buffer.clear()
        if self._cursor_id is not None and not self._done:
            try:
                self._session._request("close", cursor=self._cursor_id)
            except (NetworkError, CursorError):
                pass  # connection gone or cursor already expired


class RemoteSession:
    """A connected remote client with the local ``Session`` surface.

    Parameters
    ----------
    url:
        ``repro://host[:port]``.
    options:
        Session-default :class:`QueryOptions`; per-call overrides apply
        exactly as on a local session.
    fetch_size:
        Page size for iteration-driven fetches (explicit ``fetchmany(k)``
        always fetches exactly ``k``).
    connect_timeout:
        Seconds to wait for the TCP connection (queries themselves are
        not bounded client-side; use ``QueryOptions.timeout`` for that).
    """

    def __init__(self, url: str, *, options: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE,
                 connect_timeout: float = 10.0) -> None:
        self.url = url
        self.defaults = options if options is not None else QueryOptions()
        self.fetch_size = max(1, int(fetch_size))
        host, port = parse_url(url)
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except OSError as error:
            raise NetworkError(
                f"could not connect to {url}: {error}"
            ) from None
        self._sock.settimeout(None)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0
        self._closed = False
        try:
            self.server_info = self._request("hello")
        except BaseException:
            # A failed handshake (e.g. the endpoint is not a repro
            # server) must not leak the socket out of a constructor the
            # caller never got a handle from.
            self._closed = True
            self._reader.close()
            self._sock.close()
            raise

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _request(self, op: str, **params) -> dict:
        if self._closed:
            raise NetworkError("this remote session is closed")
        self._next_id += 1
        request_id = self._next_id
        frame = {"id": request_id, "op": op, **params}
        try:
            self._sock.sendall(protocol.encode_frame(frame))
            response = protocol.read_frame(self._reader.read)
        except OSError as error:
            raise NetworkError(f"connection to {self.url} failed: {error}") \
                from None
        if response is None:
            raise NetworkError(f"server at {self.url} closed the connection")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"out-of-sequence response: sent id {request_id}, "
                f"got {response.get('id')!r}"
            )
        if response.get("ok"):
            return response
        protocol.raise_remote_error(response.get("error"))

    # ------------------------------------------------------------------
    # The Session surface
    # ------------------------------------------------------------------
    def options(self, options: Optional[QueryOptions] = None,
                **overrides) -> QueryOptions:
        """Resolve per-call options against the session defaults."""
        return QueryOptions.resolve(options, overrides,
                                    defaults=self.defaults)

    def run(self, query, options: Optional[QueryOptions] = None,
            **overrides) -> RemoteResultSet:
        """Open a server-side cursor for ``query``; nothing executes yet.

        Options validate client-side (the same
        :class:`~repro.errors.OptionsError` boundary as a local session)
        before anything touches the wire.
        """
        opts = self.options(options, **overrides)
        text = str(query)
        meta = self._request("run", query=text,
                             options=_options_payload(opts))
        return RemoteResultSet(self, text, opts, meta)

    def explain(self, query, options: Optional[QueryOptions] = None,
                **overrides) -> RemoteExplain:
        """The server's structured plan report for ``query``."""
        opts = self.options(options, **overrides)
        response = self._request("explain", query=str(query),
                                 options=_options_payload(opts))
        return RemoteExplain(response["report"], response["rendered"])

    def stats(self) -> dict:
        """Connection, cursor, and service counters from the server."""
        response = self._request("stats")
        return {key: response[key]
                for key in ("connection", "cursors", "service")}

    def close(self) -> None:
        """Say goodbye and drop the connection; idempotent."""
        if self._closed:
            return
        try:
            self._request("goodbye")
        except (NetworkError, ProtocolError):
            pass
        self._closed = True
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "RemoteSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"RemoteSession({self.url!r}, {state})"


def connect(url: str, *,
            algorithm: str = "auto",
            parallel: Optional[int] = None,
            partition_mode: str = "auto",
            timeout: Optional[float] = None,
            use_cache: bool = True,
            limit: Optional[int] = None,
            fetch_size: int = DEFAULT_FETCH_SIZE,
            connect_timeout: float = 10.0) -> RemoteSession:
    """Open a :class:`RemoteSession`; keyword args become its defaults."""
    options = QueryOptions(
        algorithm=algorithm, parallel=parallel,
        partition_mode=partition_mode, timeout=timeout,
        use_cache=use_cache, limit=limit,
    )
    return RemoteSession(url, options=options, fetch_size=fetch_size,
                         connect_timeout=connect_timeout)


# ----------------------------------------------------------------------
# Async variant
# ----------------------------------------------------------------------
class AsyncRemoteResultSet:
    """The awaitable twin of :class:`RemoteResultSet`.

    Supports ``async for`` (bindings), ``await fetchmany/fetchall/count``,
    and ``await close``.  Shares one forward-only position.
    """

    def __init__(self, session: "AsyncRemoteSession", query_text: str,
                 options: QueryOptions, meta: dict) -> None:
        self._session = session
        self._text = query_text
        self._options = options
        self._cursor_id: Optional[int] = None  # opened at first fetch
        self._variables = tuple(Variable(name) for name in meta["columns"])
        self._meta = meta
        self._buffer: Deque[Row] = deque()
        self._done = False
        self._closed = False
        self._count: Optional[int] = None

    @property
    def columns(self) -> Tuple[str, ...]:
        return tuple(v.name for v in self._variables)

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    @property
    def complete(self) -> bool:
        return self._done and not self._buffer

    async def _ensure_cursor(self) -> int:
        if self._cursor_id is None:
            response = await self._session._request(
                "cursor", query=self._text,
                options=_options_payload(self._options),
            )
            self._cursor_id = response["cursor"]
        return self._cursor_id

    async def _fetch(self, size: int) -> List[Row]:
        if self._closed:
            raise CursorError("this remote cursor was closed")
        response = await self._session._request(
            "fetch", cursor=await self._ensure_cursor(), size=size
        )
        rows = [tuple(row) for row in response["rows"]]
        if response["done"]:
            self._done = True
            stats = response.get("stats") or {}
            if stats.get("total") is not None:
                self._count = stats["total"]
        return rows

    def __aiter__(self):
        return self

    def _check_open(self) -> None:
        if self._closed and not self._done:
            raise CursorError(
                "this remote cursor was closed before it was drained; "
                "re-run the query for a fresh result set"
            )

    async def __anext__(self):
        if not self._buffer:
            self._check_open()
            if self._done:
                raise StopAsyncIteration
            self._buffer.extend(await self._fetch(self._session.fetch_size))
            if not self._buffer:
                raise StopAsyncIteration
        return dict(zip(self._variables, self._buffer.popleft()))

    async def fetchmany(self, size: int = 1) -> List[Row]:
        out: List[Row] = []
        while self._buffer and len(out) < size:
            out.append(self._buffer.popleft())
        if len(out) < size:
            self._check_open()
        # Loop past the server's per-fetch clamp: short = end-of-answer.
        while len(out) < size and not self._done:
            page = await self._fetch(size - len(out))
            if not page:
                break
            out.extend(page)
        return out

    async def fetchall(self) -> List[Row]:
        self._check_open()
        out: List[Row] = list(self._buffer)
        self._buffer.clear()
        while not self._done:
            out.extend(await self._fetch(self._session.fetch_size))
        return out

    async def count(self) -> int:
        if self._count is not None:
            return self._count
        response = await self._session._request(
            "count", query=self._text,
            options=_options_payload(self._options),
        )
        self._count = response["count"]
        return self._count

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buffer.clear()
        if self._cursor_id is not None and not self._done:
            try:
                await self._session._request("close", cursor=self._cursor_id)
            except (NetworkError, CursorError):
                pass


class AsyncRemoteSession:
    """An asyncio remote session: ``await session.run(...)``.

    Obtained from :func:`connect_async`.  One in-flight request at a time
    per connection (requests are serialized by an internal lock, matching
    the server's sequential per-connection processing).
    """

    def __init__(self, url: str, *, options: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE) -> None:
        self.url = url
        self.defaults = options if options is not None else QueryOptions()
        self.fetch_size = max(1, int(fetch_size))
        self._reader = None
        self._writer = None
        self._lock = None
        self._next_id = 0
        self._closed = False
        self.server_info: dict = {}

    async def _open(self) -> "AsyncRemoteSession":
        import asyncio

        host, port = parse_url(self.url)
        self._lock = asyncio.Lock()
        try:
            self._reader, self._writer = await asyncio.open_connection(
                host, port
            )
        except OSError as error:
            raise NetworkError(
                f"could not connect to {self.url}: {error}"
            ) from None
        self.server_info = await self._request("hello")
        return self

    async def _request(self, op: str, **params) -> dict:
        if self._closed or self._writer is None:
            raise NetworkError("this remote session is closed")
        async with self._lock:
            self._next_id += 1
            request_id = self._next_id
            frame = {"id": request_id, "op": op, **params}
            try:
                self._writer.write(protocol.encode_frame(frame))
                await self._writer.drain()
                response = await protocol.read_frame_async(
                    self._reader.readexactly
                )
            except OSError as error:
                raise NetworkError(
                    f"connection to {self.url} failed: {error}"
                ) from None
        if response is None:
            raise NetworkError(f"server at {self.url} closed the connection")
        if response.get("id") != request_id:
            raise ProtocolError(
                f"out-of-sequence response: sent id {request_id}, "
                f"got {response.get('id')!r}"
            )
        if response.get("ok"):
            return response
        protocol.raise_remote_error(response.get("error"))

    def options(self, options: Optional[QueryOptions] = None,
                **overrides) -> QueryOptions:
        return QueryOptions.resolve(options, overrides,
                                    defaults=self.defaults)

    async def run(self, query, options: Optional[QueryOptions] = None,
                  **overrides) -> AsyncRemoteResultSet:
        """Open a server-side cursor for ``query``; nothing executes yet."""
        opts = self.options(options, **overrides)
        text = str(query)
        meta = await self._request("run", query=text,
                                   options=_options_payload(opts))
        return AsyncRemoteResultSet(self, text, opts, meta)

    async def explain(self, query, options: Optional[QueryOptions] = None,
                      **overrides) -> RemoteExplain:
        opts = self.options(options, **overrides)
        response = await self._request("explain", query=str(query),
                                       options=_options_payload(opts))
        return RemoteExplain(response["report"], response["rendered"])

    async def stats(self) -> dict:
        response = await self._request("stats")
        return {key: response[key]
                for key in ("connection", "cursors", "service")}

    async def close(self) -> None:
        if self._closed:
            return
        try:
            await self._request("goodbye")
        except (NetworkError, ProtocolError):
            pass
        self._closed = True
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, ConnectionResetError):
                pass

    async def __aenter__(self) -> "AsyncRemoteSession":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def connect_async(url: str, *,
                        algorithm: str = "auto",
                        parallel: Optional[int] = None,
                        partition_mode: str = "auto",
                        timeout: Optional[float] = None,
                        use_cache: bool = True,
                        limit: Optional[int] = None,
                        fetch_size: int = DEFAULT_FETCH_SIZE
                        ) -> AsyncRemoteSession:
    """Open an :class:`AsyncRemoteSession`: ``await repro.net.connect_async(...)``."""
    options = QueryOptions(
        algorithm=algorithm, parallel=parallel,
        partition_mode=partition_mode, timeout=timeout,
        use_cache=use_cache, limit=limit,
    )
    session = AsyncRemoteSession(url, options=options, fetch_size=fetch_size)
    return await session._open()
