"""``repro.net`` — the wire layer: protocol, asyncio server, remote sessions.

The subsystem that turns the engine + service + api stack into an actual
multi-client system::

    RemoteSession ──frames──►  ReproServer (asyncio)  ──►  QueryService
    (sync/async)               per-connection cursors       (shared plan +
                               + stats                       result caches,
                                                             admission control)

* :mod:`repro.net.protocol` — length-prefixed JSON frames with request
  ids and error envelopes mapping onto the :class:`~repro.errors.ReproError`
  taxonomy (and therefore onto the CLI's exit codes).
* :mod:`repro.net.server` — an :mod:`asyncio` TCP server fronting one
  shared :class:`~repro.service.QueryService`; results are held open as
  **server-side cursors** the client pages with ``FETCH`` requests.
* :mod:`repro.net.client` — ``connect("repro://host:port")`` returning a
  :class:`RemoteSession` with the exact :class:`~repro.api.session.Session`
  surface (``run`` / ``explain`` / ``close``) behind a health-checked
  :class:`ConnectionPool` with bounded-backoff retry of idempotent ops,
  plus ``connect_async`` for ``await session.run(...)`` — a single
  multiplexed connection that pipelines concurrent requests.

Everything here sits at the very top of the layer stack; nothing below
:mod:`repro.cli` imports it at module level.
"""

from repro.net.client import (
    WIRE_ENCODING_ENV,
    AsyncRemotePreparedHandle,
    AsyncRemoteSession,
    ConnectionPool,
    RemotePreparedHandle,
    RemoteResultSet,
    RemoteSession,
    connect,
    connect_async,
    parse_url,
)
from repro.net.protocol import PROTOCOL_VERSION, WIRE_ENCODINGS
from repro.net.server import ReproServer, ServerThread

__all__ = [
    "AsyncRemotePreparedHandle",
    "AsyncRemoteSession",
    "ConnectionPool",
    "PROTOCOL_VERSION",
    "RemotePreparedHandle",
    "RemoteResultSet",
    "RemoteSession",
    "ReproServer",
    "ServerThread",
    "WIRE_ENCODINGS",
    "WIRE_ENCODING_ENV",
    "connect",
    "connect_async",
    "parse_url",
]
