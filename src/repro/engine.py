"""The query-engine façade: one entry point over every join algorithm.

:class:`QueryEngine` owns a registry of algorithm factories keyed by the
system names used throughout the paper's tables (``lb/lftj``, ``lb/ms``,
``psql``, ``monetdb``, ``graphlab``, ...), runs queries with an optional
soft timeout, and returns structured :class:`ExecutionResult` records that
the benchmark harness aggregates into paper-style tables.

The engine also implements the automatic algorithm selection a
general-purpose system would apply (``algorithm="auto"``): Minesweeper for
β-acyclic queries (where it is instance optimal), LFTJ otherwise — which is
exactly the "summary" recommendation of §5.2.

Compilation is separated from execution twice over.  The *logical* half:
:meth:`QueryEngine.prepare` performs the per-query-shape work exactly once
— parsing, hypergraph analysis, algorithm selection, and
global-attribute-order (GAO) search — and returns a reusable
:class:`PreparedQuery`.  The *physical* half: :meth:`QueryEngine.plan`
lowers a prepared query onto a :class:`~repro.exec.plan.PhysicalPlan`
(scan → partition → per-shard join → merge), and every execution entry
point (:meth:`count`, :meth:`bindings`, :meth:`tuples`, :meth:`execute`)
routes through the engine's pluggable
:class:`~repro.exec.executor.PlanExecutor` — serial by default
(behavior-identical to direct algorithm calls), or a multiprocessing
worker pool when the engine is built with ``parallel=N``.  Entry points
accept raw query text, a :class:`ConjunctiveQuery`, a
:class:`PreparedQuery`, or a :class:`~repro.exec.plan.PhysicalPlan`; the
service layer's plan cache (:mod:`repro.service.plan_cache`) stores
compiled plans so repeated parameterized queries skip both halves.

Execution itself has one surface: :meth:`QueryEngine.run` takes a frozen
:class:`~repro.api.options.QueryOptions` bundle — validated at this
boundary — and returns a lazy, streaming
:class:`~repro.api.result.ResultSet`.  The historical entry points
(:meth:`count`, :meth:`bindings`, :meth:`tuples`, :meth:`execute`) are
thin shims over it, and the session facade (:func:`repro.connect`)
layers plan/result caches on the same path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.options import QueryOptions
from repro.api.result import ResultCacheHooks, ResultSet
from repro.errors import (
    ExecutionError,
    ReproError,
    TimeoutExceeded,
    UnknownAlgorithmError,
)
from repro.datalog.gao import GAOChoice, select_gao
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.parser import parse_query
from repro.datalog.query import ConjunctiveQuery
from repro.exec.executor import (
    PlanExecutor,
    ProcessPlanExecutor,
    SerialPlanExecutor,
    _apply_gao,
)
from repro.exec.partitioner import ParallelConfig, choose_scheme
from repro.exec.plan import PhysicalPlan, compile_plan
from repro.joins.base import JoinAlgorithm
from repro.joins.columnar import ColumnAtATimeJoin
from repro.joins.generic import GenericJoin
from repro.joins.graph_engine import GraphEngine
from repro.joins.hybrid import HybridMinesweeperLeapfrog
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.joins.minesweeper import MinesweeperJoin, MinesweeperOptions
from repro.joins.minesweeper.counting import SharingMinesweeperCounter
from repro.joins.naive import NaiveBacktrackingJoin
from repro.joins.pairwise import PairwiseHashJoin
from repro.joins.yannakakis import YannakakisJoin
from repro.obs import trace as obs_trace
from repro.storage.database import Database
from repro.util import TimeBudget

AlgorithmFactory = Callable[[Optional[TimeBudget]], JoinAlgorithm]

# Algorithms that evaluate attribute-at-a-time following a GAO.  For the
# Minesweeper family the precomputed order is only valid when the query is
# β-acyclic (a NEO); on cyclic queries the engine's skeleton logic must
# choose the order itself.
_GAO_DRIVEN = frozenset({"lftj", "lb/lftj", "generic"})
_NEO_DRIVEN = frozenset({"ms", "lb/ms", "ms-count"})


@dataclass
class ExecutionResult:
    """Outcome of one query execution."""

    algorithm: str
    query: str
    count: Optional[int]
    seconds: float
    timed_out: bool = False
    error: Optional[str] = None
    shards: int = 1

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None

    def cell(self, precision: int = 1) -> str:
        """The paper-style table cell: seconds, or "-" for a timeout/error."""
        if not self.succeeded:
            return "-"
        return f"{self.seconds:.{precision}f}"


def run_to_record(supplier: Callable[[], ResultSet], algorithm: str,
                  query) -> ExecutionResult:
    """Drive a lazy result set to a count and record the outcome.

    The shared error-to-record mapping behind :meth:`QueryEngine.execute`
    and ``Session.execute``: planning errors, timeouts, and unsupported
    queries become error/timeout records instead of exceptions, so a
    benchmark grid or a serving worker never crashes on one bad cell.
    ``supplier`` runs the (validating, planning) half and returns the
    :class:`~repro.api.result.ResultSet` to count.
    """
    try:
        result_set = supplier()
    except ReproError as error:
        return ExecutionResult(
            algorithm=algorithm, query=str(query), count=None,
            seconds=0.0, error=str(error),
        )
    started = time.perf_counter()
    try:
        count = result_set.count()
    except TimeoutExceeded:
        return ExecutionResult(
            algorithm=result_set.algorithm, query=result_set.query_text,
            count=None, seconds=time.perf_counter() - started,
            timed_out=True, shards=result_set.shards,
        )
    except ReproError as error:
        # Anything the library can diagnose — unsupported queries,
        # missing relations, schema mismatches — renders as an error
        # cell rather than crashing the caller.
        return ExecutionResult(
            algorithm=result_set.algorithm, query=result_set.query_text,
            count=None, seconds=time.perf_counter() - started,
            error=str(error), shards=result_set.shards,
        )
    return ExecutionResult(
        algorithm=result_set.algorithm, query=result_set.query_text,
        count=count, seconds=time.perf_counter() - started,
        shards=result_set.shards,
    )


@dataclass(frozen=True)
class PreparedQuery:
    """A compiled query: parse + analysis + planning done once, reusable.

    Attributes
    ----------
    text:
        Canonical query text (``str(query)``); together with
        ``requested_algorithm`` this is the natural plan-cache key.
    query:
        The resolved :class:`ConjunctiveQuery`.
    algorithm:
        The concrete algorithm chosen for execution (never ``"auto"``).
    requested_algorithm:
        The algorithm as requested, with ``"auto"`` preserved so callers
        can tell an explicit choice from an automatic one.
    beta_acyclic:
        Whether the query hypergraph is β-acyclic (drives auto selection).
    gao:
        The precomputed global attribute order, or ``None`` when the chosen
        algorithm does not consume a precomputed order (e.g. Minesweeper on
        a cyclic query picks a skeleton-derived order itself).
    """

    text: str
    query: ConjunctiveQuery
    algorithm: str
    requested_algorithm: str
    beta_acyclic: bool
    gao: Optional[GAOChoice] = None

    @property
    def gao_names(self) -> Optional[Tuple[str, ...]]:
        """The precomputed GAO as attribute names, or ``None``."""
        return self.gao.names if self.gao is not None else None

    def cache_key(self) -> Tuple[str, str]:
        """The (canonical text, requested algorithm) plan-cache key."""
        return (self.text, self.requested_algorithm)


def default_registry() -> Dict[str, AlgorithmFactory]:
    """The built-in algorithm registry (worker processes rebuild this)."""
    return {
        # The paper's system names.
        "lb/lftj": lambda budget: LeapfrogTrieJoin(budget=budget),
        "lb/ms": lambda budget: MinesweeperJoin(budget=budget),
        "lb/hybrid": lambda budget: HybridMinesweeperLeapfrog(budget=budget),
        "psql": lambda budget: PairwiseHashJoin(budget=budget),
        "monetdb": lambda budget: ColumnAtATimeJoin(budget=budget),
        "graphlab": lambda budget: GraphEngine(budget=budget),
        # Library-internal aliases and extras.
        "lftj": lambda budget: LeapfrogTrieJoin(budget=budget),
        "ms": lambda budget: MinesweeperJoin(budget=budget),
        "ms-count": lambda budget: SharingMinesweeperCounter(budget=budget),
        "hybrid": lambda budget: HybridMinesweeperLeapfrog(budget=budget),
        "generic": lambda budget: GenericJoin(budget=budget),
        "pairwise": lambda budget: PairwiseHashJoin(budget=budget),
        "columnar": lambda budget: ColumnAtATimeJoin(budget=budget),
        "yannakakis": lambda budget: YannakakisJoin(budget=budget),
        "naive": lambda budget: NaiveBacktrackingJoin(budget=budget),
    }


class QueryEngine:
    """Run conjunctive queries with a selectable join algorithm.

    Parameters
    ----------
    database:
        The catalog of relations to query.
    timeout:
        Default soft timeout in seconds applied to every execution (the
        paper uses 1800 s); ``None`` disables it.
    parallel:
        Default parallelism for every execution: ``None`` (serial), an
        int shard count, or a :class:`~repro.exec.partitioner.ParallelConfig`.
        Constructing the engine with ``parallel`` > 1 also installs a
        process-pool executor, so shards run on worker processes.
        Individual calls can override the *partitioning* via their
        ``parallel`` argument, but shards always run on the engine's
        executor — on a serial engine an overridden call partitions and
        executes the shards in-process (the reference behaviour the
        property tests compare against), it does not fork a pool.
    executor:
        The :class:`~repro.exec.executor.PlanExecutor` that runs physical
        plans.  Defaults to a serial executor, or a process-pool executor
        when ``parallel`` requests more than one shard.  The engine owns a
        defaulted executor (``close()`` releases it); a caller-supplied
        executor is borrowed.
    """

    def __init__(self, database: Database,
                 timeout: Optional[float] = None,
                 parallel: Optional[object] = None,
                 executor: Optional[PlanExecutor] = None) -> None:
        self.database = database
        self.timeout = timeout
        self.parallel = ParallelConfig.coerce(parallel)
        self._owns_executor = executor is None
        if executor is None:
            executor = (
                ProcessPlanExecutor(workers=self.parallel.shards)
                if self.parallel.shards > 1 else SerialPlanExecutor()
            )
        self.executor = executor
        self._registry: Dict[str, AlgorithmFactory] = default_registry()
        self._custom_algorithms: set = set()

    # ------------------------------------------------------------------
    # Registry management
    # ------------------------------------------------------------------
    def register(self, name: str, factory: AlgorithmFactory,
                 replace: bool = False) -> None:
        """Add a custom algorithm under ``name``.

        Custom factories exist only on this engine instance, so they
        cannot run on an out-of-process executor (worker processes
        rebuild the *default* registry); partitioned execution of a
        registered name is rejected rather than silently substituting
        the stock implementation.
        """
        if name in self._registry and not replace:
            raise ExecutionError(f"algorithm {name!r} is already registered")
        self._registry[name] = factory
        self._custom_algorithms.add(name)

    def algorithms(self) -> List[str]:
        """The registered algorithm names, sorted."""
        return sorted(self._registry)

    def make_algorithm(self, name: str,
                       budget: Optional[TimeBudget] = None) -> JoinAlgorithm:
        """Instantiate a registered algorithm."""
        if name == "auto":
            raise ExecutionError(
                "resolve 'auto' with select_algorithm(query) before instantiation"
            )
        factory = self._registry.get(name)
        if factory is None:
            known = ", ".join(self.algorithms())
            raise UnknownAlgorithmError(
                f"unknown algorithm {name!r}; known: {known}"
            )
        return factory(budget)

    # ------------------------------------------------------------------
    # Algorithm selection
    # ------------------------------------------------------------------
    def select_algorithm(self, query: ConjunctiveQuery) -> str:
        """The automatic choice: Minesweeper when β-acyclic, LFTJ otherwise."""
        hypergraph = Hypergraph.of_query(query)
        return "ms" if hypergraph.is_beta_acyclic() else "lftj"

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _resolve(self, query) -> ConjunctiveQuery:
        if isinstance(query, PhysicalPlan):
            return query.prepared.query
        if isinstance(query, PreparedQuery):
            return query.query
        if isinstance(query, ConjunctiveQuery):
            return query
        return parse_query(str(query))

    def prepare(self, query, algorithm: str = "auto") -> PreparedQuery:
        """Compile ``query`` once: parse, analyse, pick algorithm and GAO.

        The returned :class:`PreparedQuery` can be executed repeatedly via
        :meth:`count` / :meth:`bindings` / :meth:`execute` without paying
        parsing, hypergraph analysis, or the (potentially exponential) NEO
        search again.
        """
        if isinstance(query, PhysicalPlan):
            query = query.prepared
        if isinstance(query, PreparedQuery):
            if algorithm in ("auto", query.requested_algorithm, query.algorithm):
                return query
            return self.prepare(query.query, algorithm)
        with obs_trace.span("parse"):
            resolved = self._resolve(query)
        with obs_trace.span("analyze") as analyze_span:
            beta_acyclic = Hypergraph.of_query(resolved).is_beta_acyclic()
            if analyze_span is not None:
                analyze_span.annotate(beta_acyclic=beta_acyclic)
        if algorithm == "auto":
            name = "ms" if beta_acyclic else "lftj"
        else:
            name = algorithm
        if name != "auto" and name not in self._registry:
            known = ", ".join(self.algorithms())
            raise UnknownAlgorithmError(
                f"unknown algorithm {name!r}; known: {known}"
            )
        gao: Optional[GAOChoice] = None
        if name in _GAO_DRIVEN or (name in _NEO_DRIVEN and beta_acyclic):
            with obs_trace.span("gao"):
                gao = select_gao(resolved, policy="auto")
        return PreparedQuery(
            text=str(resolved),
            query=resolved,
            algorithm=name,
            requested_algorithm=algorithm,
            beta_acyclic=beta_acyclic,
            gao=gao,
        )

    def _instantiate(self, prepared: PreparedQuery,
                     budget: Optional[TimeBudget]) -> JoinAlgorithm:
        """Build the algorithm for a prepared query, reusing its GAO.

        Execution routes through the executor seam (which applies the
        GAO itself); this helper remains for callers that need a bare
        algorithm instance.
        """
        return _apply_gao(
            self.make_algorithm(prepared.algorithm, budget),
            prepared.gao_names,
        )

    def plan(self, query, algorithm: str = "auto",
             parallel: Optional[object] = None) -> PhysicalPlan:
        """Lower ``query`` onto a physical plan (scan → partition → join → merge).

        ``parallel`` overrides the engine's default partitioning for this
        plan (how shards *run* is the executor's business — see the class
        docstring).  An already-compiled :class:`PhysicalPlan` passes
        through untouched unless the call explicitly requests a different
        algorithm or partitioning, in which case it is recompiled from
        its prepared query — mirroring how :meth:`prepare` treats a
        :class:`PreparedQuery` with a mismatched algorithm.  Serial
        requests produce the degenerate single-shard plan whose execution
        is identical to calling the algorithm directly.
        """
        if isinstance(query, PhysicalPlan):
            prepared = query.prepared
            compatible_algorithm = algorithm in (
                "auto", prepared.requested_algorithm, prepared.algorithm
            )
            if compatible_algorithm and parallel is None:
                return query
            if parallel is None:
                # Keep the plan's own layout (not the engine default).
                parallel = (
                    ParallelConfig(shards=query.shards,
                                   mode=query.scheme.mode)
                    if query.scheme is not None else ParallelConfig()
                )
            return self.plan(prepared.query, algorithm, parallel)
        prepared = self.prepare(query, algorithm)
        config = (
            ParallelConfig.coerce(parallel) if parallel is not None
            else self.parallel
        )
        scheme = choose_scheme(
            prepared.query, config.shards, mode=config.mode,
            beta_acyclic=prepared.beta_acyclic, database=self.database,
        )
        return compile_plan(prepared, scheme)

    def _check_plan(self, plan: PhysicalPlan) -> PhysicalPlan:
        """Reject plans the engine's executor cannot run faithfully."""
        if (plan.shards > 1 and self.executor.runs_out_of_process
                and plan.algorithm in self._custom_algorithms):
            raise ExecutionError(
                f"algorithm {plan.algorithm!r} was registered on this "
                f"engine and cannot run on worker processes (they only "
                f"see the default registry); execute it serially or use "
                f"a SerialPlanExecutor"
            )
        return plan

    # ------------------------------------------------------------------
    # Execution — run(options) -> ResultSet is the one execution surface;
    # the legacy entry points below are thin shims over it.
    # ------------------------------------------------------------------
    def run(self, query, options: Optional[QueryOptions] = None,
            **overrides) -> ResultSet:
        """Run ``query`` under a :class:`QueryOptions` bundle, lazily.

        Validation happens here, at the API boundary: a ``parallel`` below
        1 or an unknown ``partition_mode`` raises
        :class:`~repro.errors.OptionsError` (a ``ValueError``) before any
        planning starts.  The returned
        :class:`~repro.api.result.ResultSet` executes nothing until
        consumed; iteration streams through the executor's shard-merge
        path.  ``use_cache`` is a session-level concern — an engine has no
        caches, so it is ignored here.
        """
        options = QueryOptions.resolve(options, overrides)
        qtrace: Optional[obs_trace.QueryTrace] = None
        if options.trace:
            qtrace = obs_trace.QueryTrace()
            plan_span = qtrace.begin("plan")
            with qtrace.activate(plan_span):
                plan = self.plan(
                    query, options.algorithm,
                    options.parallel_request(self.parallel),
                )
            plan_span.annotate(algorithm=plan.algorithm).finish()
        else:
            plan = self.plan(
                query, options.algorithm,
                options.parallel_request(self.parallel),
            )
        return self.run_plan(plan, timeout=options.timeout,
                             limit=options.limit, trace=qtrace)

    def run_plan(self, plan: PhysicalPlan, *,
                 timeout: Optional[float] = None,
                 limit: Optional[int] = None,
                 plan_seconds: float = 0.0,
                 plan_cached: bool = False,
                 hooks: Optional[ResultCacheHooks] = None,
                 trace: Optional[obs_trace.QueryTrace] = None) -> ResultSet:
        """Wrap an already-compiled plan in a lazy :class:`ResultSet`.

        The session layer calls this with its cache hooks and plan-cache
        provenance; :meth:`run` calls it bare.  ``timeout=None`` inherits
        the engine default.  ``trace`` is the per-query span tree the
        result set records execution spans into.
        """
        plan = self._check_plan(plan)
        return ResultSet(
            self, plan,
            timeout=timeout if timeout is not None else self.timeout,
            limit=limit,
            plan_seconds=plan_seconds,
            plan_cached=plan_cached,
            hooks=hooks,
            trace=trace,
        )

    def count(self, query, algorithm: str = "auto",
              timeout: Optional[float] = None,
              parallel: Optional[object] = None) -> int:
        """The number of output tuples; raises on timeout or error."""
        options = QueryOptions.from_legacy(algorithm, timeout, parallel)
        return self.run(query, options).count()

    def bindings(self, query, algorithm: str = "auto",
                 timeout: Optional[float] = None,
                 parallel: Optional[object] = None):
        """Iterate the output bindings of ``query``."""
        options = QueryOptions.from_legacy(algorithm, timeout, parallel)
        return iter(self.run(query, options))

    def tuples(self, query, algorithm: str = "auto",
               timeout: Optional[float] = None,
               parallel: Optional[object] = None) -> List[Tuple[int, ...]]:
        """The sorted output tuples in first-occurrence variable order."""
        options = QueryOptions.from_legacy(algorithm, timeout, parallel)
        rows = self.run(query, options).fetchall()
        rows.sort()
        return rows

    def execute(self, query, algorithm: str = "auto",
                timeout: Optional[float] = None,
                parallel: Optional[object] = None) -> ExecutionResult:
        """Run a count query and capture timing, timeouts, and errors."""
        return run_to_record(
            lambda: self.run(
                query, QueryOptions.from_legacy(algorithm, timeout, parallel)
            ),
            algorithm, query,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def warm_up(self) -> None:
        """Pre-start the executor's lazy resources (e.g. the process pool)."""
        self.executor.warm_up()

    def close(self) -> None:
        """Release the engine's executor if the engine created it."""
        if self._owns_executor:
            self.executor.close()

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
