"""The query-engine façade: one entry point over every join algorithm.

:class:`QueryEngine` owns a registry of algorithm factories keyed by the
system names used throughout the paper's tables (``lb/lftj``, ``lb/ms``,
``psql``, ``monetdb``, ``graphlab``, ...), runs queries with an optional
soft timeout, and returns structured :class:`ExecutionResult` records that
the benchmark harness aggregates into paper-style tables.

The engine also implements the automatic algorithm selection a
general-purpose system would apply (``algorithm="auto"``): Minesweeper for
β-acyclic queries (where it is instance optimal), LFTJ otherwise — which is
exactly the "summary" recommendation of §5.2.

Compilation is separated from execution: :meth:`QueryEngine.prepare`
performs the per-query-shape work exactly once — parsing, hypergraph
analysis, algorithm selection, and global-attribute-order (GAO) search —
and returns a reusable :class:`PreparedQuery`.  Every execution entry point
(:meth:`count`, :meth:`bindings`, :meth:`tuples`, :meth:`execute`) accepts
either raw query text, a :class:`ConjunctiveQuery`, or a
:class:`PreparedQuery`; the service layer's plan cache
(:mod:`repro.service.plan_cache`) stores prepared queries so repeated
parameterized queries skip compilation entirely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExecutionError, ReproError, TimeoutExceeded
from repro.datalog.gao import GAOChoice, select_gao
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.parser import parse_query
from repro.datalog.query import ConjunctiveQuery
from repro.joins.base import JoinAlgorithm
from repro.joins.columnar import ColumnAtATimeJoin
from repro.joins.generic import GenericJoin
from repro.joins.graph_engine import GraphEngine
from repro.joins.hybrid import HybridMinesweeperLeapfrog
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.joins.minesweeper import MinesweeperJoin, MinesweeperOptions
from repro.joins.minesweeper.counting import SharingMinesweeperCounter
from repro.joins.naive import NaiveBacktrackingJoin
from repro.joins.pairwise import PairwiseHashJoin
from repro.joins.yannakakis import YannakakisJoin
from repro.storage.database import Database
from repro.util import TimeBudget

AlgorithmFactory = Callable[[Optional[TimeBudget]], JoinAlgorithm]

# Algorithms that evaluate attribute-at-a-time following a GAO.  For the
# Minesweeper family the precomputed order is only valid when the query is
# β-acyclic (a NEO); on cyclic queries the engine's skeleton logic must
# choose the order itself.
_GAO_DRIVEN = frozenset({"lftj", "lb/lftj", "generic"})
_NEO_DRIVEN = frozenset({"ms", "lb/ms", "ms-count"})


@dataclass
class ExecutionResult:
    """Outcome of one query execution."""

    algorithm: str
    query: str
    count: Optional[int]
    seconds: float
    timed_out: bool = False
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None

    def cell(self, precision: int = 1) -> str:
        """The paper-style table cell: seconds, or "-" for a timeout/error."""
        if not self.succeeded:
            return "-"
        return f"{self.seconds:.{precision}f}"


@dataclass(frozen=True)
class PreparedQuery:
    """A compiled query: parse + analysis + planning done once, reusable.

    Attributes
    ----------
    text:
        Canonical query text (``str(query)``); together with
        ``requested_algorithm`` this is the natural plan-cache key.
    query:
        The resolved :class:`ConjunctiveQuery`.
    algorithm:
        The concrete algorithm chosen for execution (never ``"auto"``).
    requested_algorithm:
        The algorithm as requested, with ``"auto"`` preserved so callers
        can tell an explicit choice from an automatic one.
    beta_acyclic:
        Whether the query hypergraph is β-acyclic (drives auto selection).
    gao:
        The precomputed global attribute order, or ``None`` when the chosen
        algorithm does not consume a precomputed order (e.g. Minesweeper on
        a cyclic query picks a skeleton-derived order itself).
    """

    text: str
    query: ConjunctiveQuery
    algorithm: str
    requested_algorithm: str
    beta_acyclic: bool
    gao: Optional[GAOChoice] = None

    @property
    def gao_names(self) -> Optional[Tuple[str, ...]]:
        """The precomputed GAO as attribute names, or ``None``."""
        return self.gao.names if self.gao is not None else None

    def cache_key(self) -> Tuple[str, str]:
        """The (canonical text, requested algorithm) plan-cache key."""
        return (self.text, self.requested_algorithm)


def _default_registry() -> Dict[str, AlgorithmFactory]:
    return {
        # The paper's system names.
        "lb/lftj": lambda budget: LeapfrogTrieJoin(budget=budget),
        "lb/ms": lambda budget: MinesweeperJoin(budget=budget),
        "lb/hybrid": lambda budget: HybridMinesweeperLeapfrog(budget=budget),
        "psql": lambda budget: PairwiseHashJoin(budget=budget),
        "monetdb": lambda budget: ColumnAtATimeJoin(budget=budget),
        "graphlab": lambda budget: GraphEngine(budget=budget),
        # Library-internal aliases and extras.
        "lftj": lambda budget: LeapfrogTrieJoin(budget=budget),
        "ms": lambda budget: MinesweeperJoin(budget=budget),
        "ms-count": lambda budget: SharingMinesweeperCounter(budget=budget),
        "hybrid": lambda budget: HybridMinesweeperLeapfrog(budget=budget),
        "generic": lambda budget: GenericJoin(budget=budget),
        "pairwise": lambda budget: PairwiseHashJoin(budget=budget),
        "columnar": lambda budget: ColumnAtATimeJoin(budget=budget),
        "yannakakis": lambda budget: YannakakisJoin(budget=budget),
        "naive": lambda budget: NaiveBacktrackingJoin(budget=budget),
    }


class QueryEngine:
    """Run conjunctive queries with a selectable join algorithm.

    Parameters
    ----------
    database:
        The catalog of relations to query.
    timeout:
        Default soft timeout in seconds applied to every execution (the
        paper uses 1800 s); ``None`` disables it.
    """

    def __init__(self, database: Database,
                 timeout: Optional[float] = None) -> None:
        self.database = database
        self.timeout = timeout
        self._registry: Dict[str, AlgorithmFactory] = _default_registry()

    # ------------------------------------------------------------------
    # Registry management
    # ------------------------------------------------------------------
    def register(self, name: str, factory: AlgorithmFactory,
                 replace: bool = False) -> None:
        """Add a custom algorithm under ``name``."""
        if name in self._registry and not replace:
            raise ExecutionError(f"algorithm {name!r} is already registered")
        self._registry[name] = factory

    def algorithms(self) -> List[str]:
        """The registered algorithm names, sorted."""
        return sorted(self._registry)

    def make_algorithm(self, name: str,
                       budget: Optional[TimeBudget] = None) -> JoinAlgorithm:
        """Instantiate a registered algorithm."""
        if name == "auto":
            raise ExecutionError(
                "resolve 'auto' with select_algorithm(query) before instantiation"
            )
        factory = self._registry.get(name)
        if factory is None:
            known = ", ".join(self.algorithms())
            raise ExecutionError(f"unknown algorithm {name!r}; known: {known}")
        return factory(budget)

    # ------------------------------------------------------------------
    # Algorithm selection
    # ------------------------------------------------------------------
    def select_algorithm(self, query: ConjunctiveQuery) -> str:
        """The automatic choice: Minesweeper when β-acyclic, LFTJ otherwise."""
        hypergraph = Hypergraph.of_query(query)
        return "ms" if hypergraph.is_beta_acyclic() else "lftj"

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _resolve(self, query) -> ConjunctiveQuery:
        if isinstance(query, PreparedQuery):
            return query.query
        if isinstance(query, ConjunctiveQuery):
            return query
        return parse_query(str(query))

    def prepare(self, query, algorithm: str = "auto") -> PreparedQuery:
        """Compile ``query`` once: parse, analyse, pick algorithm and GAO.

        The returned :class:`PreparedQuery` can be executed repeatedly via
        :meth:`count` / :meth:`bindings` / :meth:`execute` without paying
        parsing, hypergraph analysis, or the (potentially exponential) NEO
        search again.
        """
        if isinstance(query, PreparedQuery):
            if algorithm in ("auto", query.requested_algorithm, query.algorithm):
                return query
            return self.prepare(query.query, algorithm)
        resolved = self._resolve(query)
        beta_acyclic = Hypergraph.of_query(resolved).is_beta_acyclic()
        if algorithm == "auto":
            name = "ms" if beta_acyclic else "lftj"
        else:
            name = algorithm
        if name != "auto" and name not in self._registry:
            known = ", ".join(self.algorithms())
            raise ExecutionError(f"unknown algorithm {name!r}; known: {known}")
        gao: Optional[GAOChoice] = None
        if name in _GAO_DRIVEN or (name in _NEO_DRIVEN and beta_acyclic):
            gao = select_gao(resolved, policy="auto")
        return PreparedQuery(
            text=str(resolved),
            query=resolved,
            algorithm=name,
            requested_algorithm=algorithm,
            beta_acyclic=beta_acyclic,
            gao=gao,
        )

    def _instantiate(self, prepared: PreparedQuery,
                     budget: Optional[TimeBudget]) -> JoinAlgorithm:
        """Build the algorithm for a prepared query, reusing its GAO."""
        instance = self.make_algorithm(prepared.algorithm, budget)
        if (prepared.gao_names is not None
                and getattr(instance, "variable_order", "absent") is None):
            instance.variable_order = prepared.gao_names
        return instance

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def count(self, query, algorithm: str = "auto",
              timeout: Optional[float] = None) -> int:
        """The number of output tuples; raises on timeout or error."""
        prepared = self.prepare(query, algorithm)
        budget = TimeBudget(timeout if timeout is not None else self.timeout)
        return self._instantiate(prepared, budget).count(
            self.database, prepared.query
        )

    def bindings(self, query, algorithm: str = "auto",
                 timeout: Optional[float] = None):
        """Iterate the output bindings of ``query``."""
        prepared = self.prepare(query, algorithm)
        budget = TimeBudget(timeout if timeout is not None else self.timeout)
        return self._instantiate(prepared, budget).enumerate_bindings(
            self.database, prepared.query
        )

    def tuples(self, query, algorithm: str = "auto",
               timeout: Optional[float] = None) -> List[Tuple[int, ...]]:
        """The sorted output tuples in first-occurrence variable order."""
        prepared = self.prepare(query, algorithm)
        variables = prepared.query.variables
        rows = [
            tuple(binding[v] for v in variables)
            for binding in self.bindings(prepared, timeout=timeout)
        ]
        rows.sort()
        return rows

    def execute(self, query, algorithm: str = "auto",
                timeout: Optional[float] = None) -> ExecutionResult:
        """Run a count query and capture timing, timeouts, and errors."""
        try:
            prepared = self.prepare(query, algorithm)
        except ReproError as error:
            return ExecutionResult(
                algorithm=algorithm, query=str(query), count=None,
                seconds=0.0, error=str(error),
            )
        effective_timeout = timeout if timeout is not None else self.timeout
        budget = TimeBudget(effective_timeout)
        started = time.perf_counter()
        try:
            algorithm_instance = self._instantiate(prepared, budget)
            count = algorithm_instance.count(self.database, prepared.query)
            return ExecutionResult(
                algorithm=prepared.algorithm,
                query=prepared.text,
                count=count,
                seconds=time.perf_counter() - started,
            )
        except TimeoutExceeded:
            return ExecutionResult(
                algorithm=prepared.algorithm,
                query=prepared.text,
                count=None,
                seconds=time.perf_counter() - started,
                timed_out=True,
            )
        except ReproError as error:
            # Anything the library can diagnose — unsupported queries,
            # missing relations, schema mismatches — renders as an error
            # cell rather than crashing a benchmark grid or a serving
            # worker.
            return ExecutionResult(
                algorithm=prepared.algorithm,
                query=prepared.text,
                count=None,
                seconds=time.perf_counter() - started,
                error=str(error),
            )
