"""The query-engine façade: one entry point over every join algorithm.

:class:`QueryEngine` owns a registry of algorithm factories keyed by the
system names used throughout the paper's tables (``lb/lftj``, ``lb/ms``,
``psql``, ``monetdb``, ``graphlab``, ...), runs queries with an optional
soft timeout, and returns structured :class:`ExecutionResult` records that
the benchmark harness aggregates into paper-style tables.

The engine also implements the automatic algorithm selection a
general-purpose system would apply (``algorithm="auto"``): Minesweeper for
β-acyclic queries (where it is instance optimal), LFTJ otherwise — which is
exactly the "summary" recommendation of §5.2.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, TimeoutExceeded
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.parser import parse_query
from repro.datalog.query import ConjunctiveQuery
from repro.joins.base import JoinAlgorithm
from repro.joins.columnar import ColumnAtATimeJoin
from repro.joins.generic import GenericJoin
from repro.joins.graph_engine import GraphEngine
from repro.joins.hybrid import HybridMinesweeperLeapfrog
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.joins.minesweeper import MinesweeperJoin, MinesweeperOptions
from repro.joins.minesweeper.counting import SharingMinesweeperCounter
from repro.joins.naive import NaiveBacktrackingJoin
from repro.joins.pairwise import PairwiseHashJoin
from repro.joins.yannakakis import YannakakisJoin
from repro.storage.database import Database
from repro.util import TimeBudget

AlgorithmFactory = Callable[[Optional[TimeBudget]], JoinAlgorithm]


@dataclass
class ExecutionResult:
    """Outcome of one query execution."""

    algorithm: str
    query: str
    count: Optional[int]
    seconds: float
    timed_out: bool = False
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None

    def cell(self, precision: int = 1) -> str:
        """The paper-style table cell: seconds, or "-" for a timeout/error."""
        if not self.succeeded:
            return "-"
        return f"{self.seconds:.{precision}f}"


def _default_registry() -> Dict[str, AlgorithmFactory]:
    return {
        # The paper's system names.
        "lb/lftj": lambda budget: LeapfrogTrieJoin(budget=budget),
        "lb/ms": lambda budget: MinesweeperJoin(budget=budget),
        "lb/hybrid": lambda budget: HybridMinesweeperLeapfrog(budget=budget),
        "psql": lambda budget: PairwiseHashJoin(budget=budget),
        "monetdb": lambda budget: ColumnAtATimeJoin(budget=budget),
        "graphlab": lambda budget: GraphEngine(budget=budget),
        # Library-internal aliases and extras.
        "lftj": lambda budget: LeapfrogTrieJoin(budget=budget),
        "ms": lambda budget: MinesweeperJoin(budget=budget),
        "ms-count": lambda budget: SharingMinesweeperCounter(budget=budget),
        "hybrid": lambda budget: HybridMinesweeperLeapfrog(budget=budget),
        "generic": lambda budget: GenericJoin(budget=budget),
        "pairwise": lambda budget: PairwiseHashJoin(budget=budget),
        "columnar": lambda budget: ColumnAtATimeJoin(budget=budget),
        "yannakakis": lambda budget: YannakakisJoin(budget=budget),
        "naive": lambda budget: NaiveBacktrackingJoin(budget=budget),
    }


class QueryEngine:
    """Run conjunctive queries with a selectable join algorithm.

    Parameters
    ----------
    database:
        The catalog of relations to query.
    timeout:
        Default soft timeout in seconds applied to every execution (the
        paper uses 1800 s); ``None`` disables it.
    """

    def __init__(self, database: Database,
                 timeout: Optional[float] = None) -> None:
        self.database = database
        self.timeout = timeout
        self._registry: Dict[str, AlgorithmFactory] = _default_registry()

    # ------------------------------------------------------------------
    # Registry management
    # ------------------------------------------------------------------
    def register(self, name: str, factory: AlgorithmFactory,
                 replace: bool = False) -> None:
        """Add a custom algorithm under ``name``."""
        if name in self._registry and not replace:
            raise ExecutionError(f"algorithm {name!r} is already registered")
        self._registry[name] = factory

    def algorithms(self) -> List[str]:
        """The registered algorithm names, sorted."""
        return sorted(self._registry)

    def make_algorithm(self, name: str,
                       budget: Optional[TimeBudget] = None) -> JoinAlgorithm:
        """Instantiate a registered algorithm."""
        if name == "auto":
            raise ExecutionError(
                "resolve 'auto' with select_algorithm(query) before instantiation"
            )
        factory = self._registry.get(name)
        if factory is None:
            known = ", ".join(self.algorithms())
            raise ExecutionError(f"unknown algorithm {name!r}; known: {known}")
        return factory(budget)

    # ------------------------------------------------------------------
    # Algorithm selection
    # ------------------------------------------------------------------
    def select_algorithm(self, query: ConjunctiveQuery) -> str:
        """The automatic choice: Minesweeper when β-acyclic, LFTJ otherwise."""
        hypergraph = Hypergraph.of_query(query)
        return "ms" if hypergraph.is_beta_acyclic() else "lftj"

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _resolve(self, query) -> ConjunctiveQuery:
        if isinstance(query, ConjunctiveQuery):
            return query
        return parse_query(str(query))

    def count(self, query, algorithm: str = "auto",
              timeout: Optional[float] = None) -> int:
        """The number of output tuples; raises on timeout or error."""
        resolved = self._resolve(query)
        name = self.select_algorithm(resolved) if algorithm == "auto" else algorithm
        budget = TimeBudget(timeout if timeout is not None else self.timeout)
        return self.make_algorithm(name, budget).count(self.database, resolved)

    def bindings(self, query, algorithm: str = "auto",
                 timeout: Optional[float] = None):
        """Iterate the output bindings of ``query``."""
        resolved = self._resolve(query)
        name = self.select_algorithm(resolved) if algorithm == "auto" else algorithm
        budget = TimeBudget(timeout if timeout is not None else self.timeout)
        return self.make_algorithm(name, budget).enumerate_bindings(
            self.database, resolved
        )

    def tuples(self, query, algorithm: str = "auto",
               timeout: Optional[float] = None) -> List[Tuple[int, ...]]:
        """The sorted output tuples in first-occurrence variable order."""
        resolved = self._resolve(query)
        variables = resolved.variables
        rows = [
            tuple(binding[v] for v in variables)
            for binding in self.bindings(resolved, algorithm=algorithm,
                                         timeout=timeout)
        ]
        rows.sort()
        return rows

    def execute(self, query, algorithm: str = "auto",
                timeout: Optional[float] = None) -> ExecutionResult:
        """Run a count query and capture timing, timeouts, and errors."""
        resolved = self._resolve(query)
        name = self.select_algorithm(resolved) if algorithm == "auto" else algorithm
        effective_timeout = timeout if timeout is not None else self.timeout
        budget = TimeBudget(effective_timeout)
        started = time.perf_counter()
        try:
            algorithm_instance = self.make_algorithm(name, budget)
            count = algorithm_instance.count(self.database, resolved)
            return ExecutionResult(
                algorithm=name,
                query=str(resolved),
                count=count,
                seconds=time.perf_counter() - started,
            )
        except TimeoutExceeded:
            return ExecutionResult(
                algorithm=name,
                query=str(resolved),
                count=None,
                seconds=time.perf_counter() - started,
                timed_out=True,
            )
        except ExecutionError as error:
            return ExecutionResult(
                algorithm=name,
                query=str(resolved),
                count=None,
                seconds=time.perf_counter() - started,
                error=str(error),
            )
