"""Command-line interface for the repro library.

Four subcommands cover the everyday workflows:

``repro datasets``
    List the dataset catalog (original SNAP sizes and the synthetic
    stand-in sizes).

``repro query``
    Run one query — either a named benchmark pattern or a Datalog-style
    query text — over a catalog dataset with a chosen join algorithm.

``repro bench``
    Run a small benchmark grid (systems × datasets × queries) and print
    the paper-style table.

``repro analyze``
    Graph analytics over a dataset: size, triangle count, connected
    components, and the top PageRank nodes.

The module is also importable: :func:`main` takes an argument list and
returns a process exit code, which is how the tests drive it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

from repro.analytics.graph_algorithms import connected_components, pagerank
from repro.bench.harness import BenchmarkConfig, run_grid
from repro.bench.reporting import format_table
from repro.data.catalog import DATASET_CATALOG, dataset_names, load_dataset
from repro.data.sampling import attach_samples
from repro.datalog.parser import parse_query
from repro.engine import QueryEngine
from repro.errors import ReproError
from repro.joins.graph_engine import GraphEngine
from repro.queries.patterns import QUERY_PATTERNS, build_query, pattern
from repro.storage import Database


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worst-case optimal and beyond-worst-case join processing "
                    "for graph patterns (Nguyen et al., 2015 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the dataset catalog")

    query = subparsers.add_parser("query", help="run one query on a dataset")
    query.add_argument("--dataset", required=True, choices=dataset_names(),
                       help="catalog dataset to query")
    group = query.add_mutually_exclusive_group(required=True)
    group.add_argument("--pattern", choices=sorted(QUERY_PATTERNS),
                       help="named benchmark pattern")
    group.add_argument("--text", help="Datalog-style query text")
    query.add_argument("--algorithm", default="auto",
                       help="join algorithm (default: auto)")
    query.add_argument("--selectivity", type=int, default=10,
                       help="node-sample selectivity for patterns that need "
                            "v1/v2 relations (default: 10)")
    query.add_argument("--timeout", type=float, default=None,
                       help="soft timeout in seconds")
    query.add_argument("--scale", type=float, default=1.0,
                       help="dataset scale factor (default: 1.0)")

    bench = subparsers.add_parser("bench", help="run a small benchmark grid")
    bench.add_argument("--systems", default="lb/lftj,lb/ms,psql",
                       help="comma-separated system names")
    bench.add_argument("--datasets", default="ca-GrQc,p2p-Gnutella04",
                       help="comma-separated dataset names")
    bench.add_argument("--queries", default="3-clique",
                       help="comma-separated pattern names")
    bench.add_argument("--selectivity", type=int, default=10,
                       help="selectivity for acyclic patterns (default: 10)")
    bench.add_argument("--timeout", type=float, default=30.0,
                       help="per-cell soft timeout in seconds (default: 30)")

    analyze = subparsers.add_parser("analyze", help="graph analytics on a dataset")
    analyze.add_argument("--dataset", required=True, choices=dataset_names())
    analyze.add_argument("--top", type=int, default=5,
                         help="how many PageRank nodes to show (default: 5)")
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_datasets() -> int:
    print(f"{'dataset':<20} {'paper nodes':>12} {'paper edges':>12} "
          f"{'stand-in edges':>15}  regime")
    for name in dataset_names():
        spec = DATASET_CATALOG[name]
        stand_in = len(load_dataset(name)) // 2
        print(f"{name:<20} {spec.paper_nodes:>12,} {spec.paper_edges:>12,} "
              f"{stand_in:>15,}  {spec.regime}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    database = Database([load_dataset(args.dataset, scale=args.scale)])
    if args.pattern:
        spec = pattern(args.pattern)
        if spec.sample_relations:
            attach_samples(database, args.selectivity,
                           sample_names=spec.sample_relations)
        query = spec.build()
    else:
        query = parse_query(args.text)
    engine = QueryEngine(database, timeout=args.timeout)
    result = engine.execute(query, algorithm=args.algorithm)
    label = args.pattern or args.text
    if result.timed_out:
        print(f"{label} on {args.dataset}: timed out after "
              f"{result.seconds:.1f}s ({result.algorithm})")
        return 2
    if result.error:
        print(f"{label} on {args.dataset}: unsupported by "
              f"{result.algorithm}: {result.error}")
        return 2
    print(f"{label} on {args.dataset}: {result.count:,} results in "
          f"{result.seconds:.3f}s using {result.algorithm}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    config = BenchmarkConfig(timeout=args.timeout, repetitions=1, warmup_discard=0)
    cells = run_grid(
        systems=[s.strip() for s in args.systems.split(",") if s.strip()],
        dataset_names=[d.strip() for d in args.datasets.split(",") if d.strip()],
        query_names=[q.strip() for q in args.queries.split(",") if q.strip()],
        selectivities=(args.selectivity,),
        config=config,
    )
    for query_name in {cell.query for cell in cells}:
        subset = [cell for cell in cells if cell.query == query_name]
        print(format_table(f"{query_name} (seconds, '-' = timeout/unsupported)",
                           subset, rows="dataset", columns="system"))
        print()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    edge = load_dataset(args.dataset)
    database = Database([edge])
    nodes = edge.active_domain()
    started = time.perf_counter()
    triangles = GraphEngine().count(database, build_query("3-clique"))
    triangle_seconds = time.perf_counter() - started
    components = connected_components(database)
    component_count = len(set(components.values()))
    ranks = pagerank(database)
    top = sorted(ranks.items(), key=lambda item: -item[1])[:args.top]

    print(f"dataset: {args.dataset}")
    print(f"  nodes: {len(nodes):,}")
    print(f"  undirected edges: {len(edge) // 2:,}")
    print(f"  triangles: {triangles:,} (counted in {triangle_seconds:.3f}s)")
    print(f"  connected components: {component_count}")
    print(f"  top-{args.top} PageRank nodes: "
          + ", ".join(f"{node} ({rank:.4f})" for node, rank in top))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
