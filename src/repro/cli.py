"""Command-line interface for the repro library.

Ten subcommands cover the everyday workflows:

``repro datasets``
    List the dataset catalog (original SNAP sizes and the synthetic
    stand-in sizes).

``repro query``
    Run one query — either a named benchmark pattern or a Datalog-style
    query text — over a catalog dataset with a chosen join algorithm,
    or (``--connect repro://host:port``) against a running ``repro
    server`` over the wire protocol, or (``--cluster
    repro://h1:p1,h2:p2``) sharded across a fleet of servers.

``repro explain``
    Show the structured plan report for a query without executing it:
    acyclicity class, attribute order, chosen algorithm and why,
    partitioning scheme, and statistics-based size estimates.

``repro bench``
    Run a small benchmark grid (systems × datasets × queries) and print
    the paper-style table.

``repro analyze``
    Two modes.  With a query argument: EXPLAIN ANALYZE — run the query
    traced and print the plan report annotated with actual per-operator
    timings, row counts, and cache provenance; with ``--cluster``, the
    distributed run appends a per-shard timeline (dispatch → queue →
    execute → transfer → merge) with hedge/re-route/straggler
    annotations.  Without one: graph analytics over a dataset (size,
    triangle count, connected components, top PageRank nodes).

``repro metrics``
    Dump the metrics registry in Prometheus text format — the local
    process registry, (``--connect``) a running server's registry over
    the wire protocol's ``metrics`` op, or (``--cluster``) every server
    of a fleet merged into one text with ``server="host:port"`` labels
    plus the coordinator's ``repro_fleet_*`` rollups.

``repro events``
    Dump the query flight recorder — the bounded ring of recent query
    events (trace id, outcome, latency, shard → server map) kept by
    this process, one server (``--connect``), or a whole fleet merged
    and time-ordered (``--cluster``).

``repro serve``
    Start a :class:`~repro.service.QueryService` over a dataset and answer
    query lines read from stdin (an interactive/testable stand-in for a
    network front end).

``repro server``
    The real network front end: an asyncio TCP server speaking the
    :mod:`repro.net` wire protocol, with server-side cursors and
    graceful SIGINT/SIGTERM shutdown.  Clients connect with
    ``repro.connect("repro://host:port")`` or ``repro query --connect``.

``repro workload``
    Drive a declarative workload (query mix + parameter distributions)
    through the service and report throughput, latency percentiles, and
    cache effectiveness — including the cached-vs-cold comparison.
    With ``--cluster``, the same stream fans out over a fleet of
    ``repro server`` processes instead.

Errors are uniform: every failure prints a one-line message to stderr and
exits with a failure-specific code (see the ``EXIT_*`` constants) instead
of a traceback — parse failures, unknown algorithms, invalid options, and
timeouts are each distinguishable by a shell script.

The module is also importable: :func:`main` takes an argument list and
returns a process exit code, which is how the tests drive it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence, Tuple

from repro import __version__ as repro_version
from repro.analytics.graph_algorithms import connected_components, pagerank
from repro.api.options import QueryOptions
from repro.api.session import Session
from repro.bench.harness import BenchmarkConfig, run_cached_vs_cold, run_grid
from repro.bench.reporting import format_table
from repro.data.catalog import DATASET_CATALOG, dataset_names, load_dataset
from repro.data.sampling import attach_samples
from repro.datalog.parser import parse_query
from repro.errors import (
    OptionsError,
    ParseError,
    ReproError,
    TimeoutExceeded,
    UnknownAlgorithmError,
)
from repro.joins.graph_engine import GraphEngine
from repro.obs.analyze import explain_analyze
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import global_registry
from repro.queries.patterns import QUERY_PATTERNS, build_query, pattern
from repro.service import (
    QueryService,
    ServiceConfig,
    WorkloadRunner,
    WorkloadSpec,
)
from repro.storage import Database

#: Distinct process exit codes, one per failure class (2 is argparse's).
EXIT_ERROR = 1              # any other library error
EXIT_USAGE = 2              # bad command line (argparse)
EXIT_PARSE = 3              # query text could not be parsed
EXIT_UNKNOWN_ALGORITHM = 4  # algorithm not in the engine registry
EXIT_BAD_OPTIONS = 5        # invalid query options (parallel < 1, ...)
EXIT_TIMEOUT = 6            # soft timeout exceeded


def _add_target_arguments(sub: argparse.ArgumentParser) -> None:
    """The shared "which query on which dataset, how" argument block."""
    sub.add_argument("--dataset", choices=dataset_names(),
                     help="catalog dataset to query (omit with "
                          "--connect/--cluster)")
    sub.add_argument("--connect", metavar="URL", default=None,
                     help="run against a repro server at repro://host:port "
                          "instead of loading the dataset in-process")
    sub.add_argument("--cluster", metavar="URL", default=None,
                     help="shard the query across the servers of a "
                          "repro://h1:p1,h2:p2,... cluster (one shard per "
                          "server unless --parallel overrides)")
    # Default None so "explicitly asked" is distinguishable: these tune
    # the remote connection pool and are a contradiction without
    # --connect, not silently ignored knobs.
    sub.add_argument("--pool-size", type=int, default=None, metavar="N",
                     help="with --connect: max TCP connections the client "
                          "holds to the server (default: 4)")
    sub.add_argument("--retries", type=int, default=None, metavar="N",
                     help="with --connect: how many times an idempotent "
                          "request is replayed with backoff after a "
                          "connection failure (default: 2)")
    sub.add_argument("--fetch-size", type=int, default=None, metavar="K",
                     help="with --connect: rows per page when streaming "
                          "results from the server-side cursor "
                          "(default: 512)")
    sub.add_argument("--route", choices=("client", "peer"), default=None,
                     help="where distributed coordination happens: "
                          "'client' fans shards out from this process, "
                          "'peer' hands the query to one server which "
                          "sub-shards across its peers and merges "
                          "server-side (needs --connect against a "
                          "--peers server, or --cluster)")
    group = sub.add_mutually_exclusive_group(required=True)
    group.add_argument("--pattern", choices=sorted(QUERY_PATTERNS),
                      help="named benchmark pattern")
    group.add_argument("--text", help="Datalog-style query text")
    sub.add_argument("--algorithm", default="auto",
                     help="join algorithm (default: auto)")
    # Default None so the remote path can tell "explicitly asked" from
    # "left alone": the server owns its dataset, so --selectivity with
    # --connect is a contradiction, not a silently ignored knob.
    sub.add_argument("--selectivity", type=int, default=None,
                     help="node-sample selectivity for patterns that need "
                          "v1/v2 relations (default: 10)")
    sub.add_argument("--scale", type=float, default=1.0,
                     help="dataset scale factor (default: 1.0)")
    sub.add_argument("--parallel", type=int, default=1, metavar="N",
                     help="partition the query into N shards evaluated on "
                          "N worker processes (default: 1, serial)")
    sub.add_argument("--partition-mode", default="auto",
                     choices=("auto", "hash", "hypercube"),
                     help="partitioning scheme for --parallel (default: auto)")


def _add_logging_arguments(sub: argparse.ArgumentParser) -> None:
    """The shared structured-logging knobs for the serving front ends."""
    sub.add_argument("--log-level", default="info",
                     choices=("debug", "info", "warning", "error"),
                     help="JSON log verbosity on stderr (default: info)")
    sub.add_argument("--slow-query-threshold", type=float, default=1.0,
                     metavar="SECONDS",
                     help="log queries at least this slow to the "
                          "slow-query log (0 records every query, "
                          "default: 1.0)")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Worst-case optimal and beyond-worst-case join processing "
                    "for graph patterns (Nguyen et al., 2015 reproduction).",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {repro_version}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("datasets", help="list the dataset catalog")

    query = subparsers.add_parser("query", help="run one query on a dataset")
    _add_target_arguments(query)
    query.add_argument("--timeout", type=float, default=None,
                       help="soft timeout in seconds")
    query.add_argument("--limit", type=int, default=None, metavar="K",
                       help="stop after K output tuples (streamed lazily)")

    explain = subparsers.add_parser(
        "explain", help="show the plan for a query without executing it"
    )
    _add_target_arguments(explain)
    explain.add_argument("--json", action="store_true",
                         help="emit the structured report as JSON")

    bench = subparsers.add_parser("bench", help="run a small benchmark grid")
    bench.add_argument("--systems", default="lb/lftj,lb/ms,psql",
                       help="comma-separated system names")
    bench.add_argument("--datasets", default="ca-GrQc,p2p-Gnutella04",
                       help="comma-separated dataset names")
    bench.add_argument("--queries", default="3-clique",
                       help="comma-separated pattern names")
    bench.add_argument("--selectivity", type=int, default=10,
                       help="selectivity for acyclic patterns (default: 10)")
    bench.add_argument("--timeout", type=float, default=30.0,
                       help="per-cell soft timeout in seconds (default: 30)")
    bench.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="evaluate every cell partitioned into N shards "
                            "on N worker processes (default: 1, serial)")
    bench.add_argument("--partition-mode", default="auto",
                       choices=("auto", "hash", "hypercube"),
                       help="partitioning scheme for --parallel (default: auto)")

    analyze = subparsers.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE a query (or graph analytics on a dataset)",
    )
    analyze.add_argument("query", nargs="?", default=None,
                         help="Datalog-style query text to EXPLAIN ANALYZE; "
                              "omit for dataset-level graph analytics")
    analyze.add_argument("--dataset", choices=dataset_names(),
                         help="catalog dataset (default for query mode: "
                              "ca-GrQc; required for analytics mode)")
    analyze.add_argument("--connect", metavar="URL", default=None,
                         help="with a query: run it against a repro server "
                              "at repro://host:port instead of in-process")
    analyze.add_argument("--cluster", metavar="URL", default=None,
                         help="with a query: shard it across a "
                              "repro://h1:p1,h2:p2,... fleet and append "
                              "the per-shard timeline")
    analyze.add_argument("--route", choices=("client", "peer"),
                         default=None,
                         help="with --connect/--cluster: where distributed "
                              "coordination happens (peer = one server of "
                              "the fleet merges; default: client)")
    analyze.add_argument("--algorithm", default="auto",
                         help="with a query: join algorithm (default: auto)")
    analyze.add_argument("--timeout", type=float, default=None,
                         help="with a query: soft timeout in seconds")
    analyze.add_argument("--selectivity", type=int, default=10,
                         help="with a query: selectivity of the attached "
                              "v1..v4 node samples (default: 10)")
    analyze.add_argument("--json", action="store_true",
                         help="with a query: emit the annotated report "
                              "as JSON")
    analyze.add_argument("--top", type=int, default=5,
                         help="how many PageRank nodes to show (default: 5)")

    metrics = subparsers.add_parser(
        "metrics", help="dump metrics in Prometheus text format"
    )
    metrics.add_argument("--connect", metavar="URL", default=None,
                         help="scrape a running repro server at "
                              "repro://host:port instead of this process")
    metrics.add_argument("--cluster", metavar="URL", default=None,
                         help="scrape every server of a "
                              "repro://h1:p1,h2:p2,... fleet into one "
                              "Prometheus text with server=\"...\" labels")

    events = subparsers.add_parser(
        "events", help="dump the query flight recorder"
    )
    events.add_argument("--json", action="store_true",
                        help="emit events as JSON, one object per line")
    events.add_argument("--limit", type=int, default=None,
                        help="only the most recent N events")
    events.add_argument("--connect", metavar="URL", default=None,
                        help="pull a running repro server's flight "
                             "recorder at repro://host:port instead of "
                             "this process's")
    events.add_argument("--cluster", metavar="URL", default=None,
                        help="merge the flight recorders of every server "
                             "of a repro://h1:p1,h2:p2,... fleet, "
                             "time-ordered")

    serve = subparsers.add_parser(
        "serve", help="answer query lines from stdin through the query service"
    )
    serve.add_argument("--dataset", required=True, choices=dataset_names(),
                       help="catalog dataset to serve")
    serve.add_argument("--selectivity", type=int, default=10,
                       help="selectivity of the attached v1..v4 node samples "
                            "(default: 10)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker pool width (default: 4)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-query soft timeout in seconds")
    serve.add_argument("--scale", type=float, default=1.0,
                       help="dataset scale factor (default: 1.0)")
    serve.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="partition each query into N shards evaluated on "
                            "N worker processes (default: 1, serial)")
    serve.add_argument("--partition-mode", default="auto",
                       choices=("auto", "hash", "hypercube"),
                       help="partitioning scheme for --parallel (default: auto)")
    _add_logging_arguments(serve)

    server = subparsers.add_parser(
        "server", help="serve queries over TCP (repro:// wire protocol)"
    )
    server.add_argument("--dataset", required=True, choices=dataset_names(),
                        help="catalog dataset to serve")
    server.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    server.add_argument("--port", type=int, default=9944,
                        help="bind port, 0 for ephemeral (default: 9944)")
    server.add_argument("--selectivity", type=int, default=10,
                        help="selectivity of the attached v1..v4 node "
                             "samples (default: 10)")
    server.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (default: 1.0)")
    server.add_argument("--workers", type=int, default=4,
                        help="worker pool width (default: 4)")
    server.add_argument("--timeout", type=float, default=None,
                        help="per-query soft timeout in seconds")
    server.add_argument("--cursor-ttl", type=float, default=300.0,
                        help="idle seconds before a server-side cursor "
                             "expires (default: 300)")
    server.add_argument("--prepared-ttl", type=float, default=300.0,
                        help="idle seconds before a prepared statement "
                             "expires (default: 300)")
    server.add_argument("--max-prepared", type=int, default=64,
                        help="prepared statements one connection may hold "
                             "(default: 64)")
    server.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="partition each query into N shards evaluated "
                             "on N worker processes (default: 1, serial)")
    server.add_argument("--partition-mode", default="auto",
                        choices=("auto", "hash", "hypercube"),
                        help="partitioning scheme for --parallel "
                             "(default: auto)")
    server.add_argument("--peers", metavar="H1:P1,H2:P2,...", default=None,
                        help="comma-separated host:port fleet this server "
                             "belongs to (normally including itself); "
                             "enables peer coordination — cluster_* "
                             "frames make this server sub-shard across "
                             "the fleet and merge server-side")
    _add_logging_arguments(server)

    workload = subparsers.add_parser(
        "workload", help="drive a workload through the query service"
    )
    workload.add_argument("--dataset", required=True, choices=dataset_names(),
                          help="catalog dataset to serve (with --cluster: "
                               "used only to instantiate the workload mix; "
                               "the servers own the data)")
    workload.add_argument("--cluster", metavar="URL", default=None,
                          help="drive the workload through a "
                               "repro://h1:p1,h2:p2,... cluster instead of "
                               "an in-process query service")
    workload.add_argument("--spec", default=None,
                          help="JSON workload spec (default: built-in mix)")
    workload.add_argument("--operations", type=int, default=None,
                          help="override the spec's operation count")
    workload.add_argument("--qps", type=float, default=None,
                          help="target request rate (default: open throttle)")
    workload.add_argument("--workers", type=int, default=4,
                          help="worker pool width (default: 4)")
    workload.add_argument("--seed", type=int, default=None,
                          help="override the spec's random seed")
    workload.add_argument("--selectivity", type=int, default=10,
                          help="selectivity of attached node samples "
                               "(default: 10)")
    workload.add_argument("--timeout", type=float, default=None,
                          help="per-query soft timeout in seconds")
    workload.add_argument("--scale", type=float, default=1.0,
                          help="dataset scale factor (default: 1.0)")
    workload.add_argument("--prepare", action="store_true",
                          help="prepare each distinct query shape once and "
                               "execute by compiled handle (zero re-parses)")
    workload.add_argument("--compare-cold", action="store_true",
                          help="also measure an uncached engine loop on a "
                               "repeated-query stream and report the speedup")
    workload.add_argument("--parallel", type=int, default=1, metavar="N",
                          help="partition each query into N shards evaluated "
                               "on N worker processes (default: 1, serial)")
    workload.add_argument("--partition-mode", default="auto",
                          choices=("auto", "hash", "hypercube"),
                          help="partitioning scheme for --parallel "
                               "(default: auto)")
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------
def _cmd_datasets() -> int:
    print(f"{'dataset':<20} {'paper nodes':>12} {'paper edges':>12} "
          f"{'stand-in edges':>15}  regime")
    for name in dataset_names():
        spec = DATASET_CATALOG[name]
        stand_in = len(load_dataset(name)) // 2
        print(f"{name:<20} {spec.paper_nodes:>12,} {spec.paper_edges:>12,} "
              f"{stand_in:>15,}  {spec.regime}")
    return 0


def _target_session(args: argparse.Namespace,
                    timeout: Optional[float] = None) -> Tuple[object, object]:
    """Build the (session, query) pair a query/explain invocation targets.

    Options validate first — an invalid ``--parallel`` is rejected before
    the dataset is even loaded (or the server even dialled).  With
    ``--connect`` the session is a :class:`~repro.net.client.RemoteSession`
    against a running ``repro server``, which owns the dataset (and its
    node samples); without it, the dataset loads in-process.
    """
    options = QueryOptions(timeout=timeout, parallel=args.parallel,
                           partition_mode=args.partition_mode,
                           fetch_size=args.fetch_size,
                           route=getattr(args, "route", None))
    if args.cluster:
        if args.connect:
            raise OptionsError(
                "--connect targets one server and --cluster a fleet; "
                "pass one of them"
            )
        if args.scale != 1.0 or args.selectivity is not None:
            raise OptionsError(
                "--scale/--selectivity shape an in-process dataset; "
                "the servers at --cluster own their own"
            )
        if args.pool_size is not None:
            raise OptionsError(
                "--pool-size tunes the sync remote connection pool; a "
                "cluster session multiplexes one socket per server"
            )
        from repro.dist import ClusterSession
        from repro.net.client import DEFAULT_RETRIES

        # --parallel left at its default (1) means "one shard per
        # healthy server" for a cluster target — sharding is the point.
        session = ClusterSession(
            args.cluster,
            options=options if args.parallel != 1
            else QueryOptions(timeout=timeout,
                              partition_mode=args.partition_mode,
                              fetch_size=args.fetch_size,
                              route=getattr(args, "route", None)),
            retries=DEFAULT_RETRIES if args.retries is None
            else args.retries,
        )
        query = pattern(args.pattern).build() if args.pattern \
            else parse_query(args.text)
        return session, query
    if args.connect:
        if args.scale != 1.0 or args.selectivity is not None:
            # Same rule as repro.connect("repro://..."): the server owns
            # its database, so dataset-shaping flags cannot apply.
            raise OptionsError(
                "--scale/--selectivity shape an in-process dataset; "
                "the server at --connect owns its own"
            )
        from repro.net.client import (
            DEFAULT_POOL_SIZE,
            DEFAULT_RETRIES,
            RemoteSession,
        )

        session: object = RemoteSession(
            args.connect, options=options,
            pool_size=DEFAULT_POOL_SIZE if args.pool_size is None
            else args.pool_size,
            retries=DEFAULT_RETRIES if args.retries is None
            else args.retries,
        )
        query = pattern(args.pattern).build() if args.pattern \
            else parse_query(args.text)
        return session, query
    if args.pool_size is not None or args.retries is not None:
        raise OptionsError(
            "--pool-size/--retries tune the remote connection pool and "
            "need --connect"
        )
    if args.fetch_size is not None:
        raise OptionsError(
            "--fetch-size tunes remote cursor paging and needs --connect"
        )
    if getattr(args, "route", None) is not None:
        raise OptionsError(
            "--route picks where distributed coordination happens and "
            "needs --connect or --cluster; an in-process session has no "
            "fleet to route over"
        )
    if not args.dataset:
        raise OptionsError(
            "either --dataset, --connect, or --cluster is required"
        )
    database = Database([load_dataset(args.dataset, scale=args.scale)])
    if args.pattern:
        spec = pattern(args.pattern)
        if spec.sample_relations:
            attach_samples(database,
                           args.selectivity if args.selectivity is not None
                           else 10,
                           sample_names=spec.sample_relations)
        query = spec.build()
    else:
        query = parse_query(args.text)
    return Session(database, options=options), query


def _cmd_query(args: argparse.Namespace) -> int:
    session, query = _target_session(args, timeout=args.timeout)
    with session:
        result_set = session.run(query, algorithm=args.algorithm,
                                 limit=args.limit)
        count = result_set.count()
        stats = result_set.stats
    label = args.pattern or args.text
    target = args.cluster or args.connect or args.dataset
    sharding = f", {stats.shards} shards" if stats.shards > 1 else ""
    limited = f" (limit {args.limit})" if args.limit is not None else ""
    print(f"{label} on {target}: {count:,} results{limited} in "
          f"{stats.seconds:.3f}s using {stats.algorithm}{sharding}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    session, query = _target_session(args)
    with session:
        report = session.explain(query, algorithm=args.algorithm)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    config = BenchmarkConfig(timeout=args.timeout, repetitions=1,
                             warmup_discard=0, parallel=args.parallel,
                             partition_mode=args.partition_mode)
    cells = run_grid(
        systems=[s.strip() for s in args.systems.split(",") if s.strip()],
        dataset_names=[d.strip() for d in args.datasets.split(",") if d.strip()],
        query_names=[q.strip() for q in args.queries.split(",") if q.strip()],
        selectivities=(args.selectivity,),
        config=config,
    )
    for query_name in {cell.query for cell in cells}:
        subset = [cell for cell in cells if cell.query == query_name]
        print(format_table(f"{query_name} (seconds, '-' = timeout/unsupported)",
                           subset, rows="dataset", columns="system"))
        print()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.query is not None:
        return _cmd_explain_analyze(args)
    if args.connect or args.cluster:
        raise OptionsError(
            "--connect/--cluster need a query argument (EXPLAIN ANALYZE "
            "mode); dataset analytics run in-process"
        )
    if not args.dataset:
        raise OptionsError(
            "analytics mode needs --dataset (pass a query argument for "
            "EXPLAIN ANALYZE instead)"
        )
    edge = load_dataset(args.dataset)
    database = Database([edge])
    nodes = edge.active_domain()
    started = time.perf_counter()
    triangles = GraphEngine().count(database, build_query("3-clique"))
    triangle_seconds = time.perf_counter() - started
    components = connected_components(database)
    component_count = len(set(components.values()))
    ranks = pagerank(database)
    top = sorted(ranks.items(), key=lambda item: -item[1])[:args.top]

    print(f"dataset: {args.dataset}")
    print(f"  nodes: {len(nodes):,}")
    print(f"  undirected edges: {len(edge) // 2:,}")
    print(f"  triangles: {triangles:,} (counted in {triangle_seconds:.3f}s)")
    print(f"  connected components: {component_count}")
    print(f"  top-{args.top} PageRank nodes: "
          + ", ".join(f"{node} ({rank:.4f})" for node, rank in top))
    return 0


def _cmd_explain_analyze(args: argparse.Namespace) -> int:
    """EXPLAIN ANALYZE: run the query traced; print the annotated plan."""
    query = parse_query(args.query)
    route = getattr(args, "route", None)
    if route and not (args.cluster or args.connect):
        raise OptionsError(
            "--route picks where distributed coordination happens; it "
            "needs --connect or --cluster"
        )
    if args.cluster:
        if args.connect:
            raise OptionsError(
                "--connect targets one server and --cluster a fleet; "
                "pass one of them"
            )
        from repro.dist import ClusterSession

        session: object = ClusterSession(args.cluster)
    elif args.connect:
        from repro.net.client import RemoteSession

        session = RemoteSession(args.connect)
    else:
        database = Database([load_dataset(args.dataset or "ca-GrQc")])
        attach_samples(database, args.selectivity,
                       sample_names=("v1", "v2", "v3", "v4"))
        session = Session(database)
    with session:
        report = explain_analyze(session, query, algorithm=args.algorithm,
                                 timeout=args.timeout, route=route)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
        if args.cluster or route == "peer":
            from repro.obs.fleet import render_timeline

            print()
            print(render_timeline(report.trace))
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    if args.cluster and args.connect:
        raise OptionsError(
            "--connect targets one server and --cluster a fleet; "
            "pass one of them"
        )
    if args.cluster:
        from repro.dist import ClusterSession

        with ClusterSession(args.cluster) as cluster:
            text = cluster.metrics()
    elif args.connect:
        from repro.net.client import RemoteSession

        with RemoteSession(args.connect) as session:
            text = session.metrics()
    else:
        text = global_registry().render()
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    """Dump the query flight recorder — local, one server, or a fleet."""
    if args.cluster and args.connect:
        raise OptionsError(
            "--connect targets one server and --cluster a fleet; "
            "pass one of them"
        )
    if args.limit is not None and args.limit < 1:
        raise OptionsError(
            f"--limit must be a positive number of events, got "
            f"{args.limit} (omit it for the whole ring)"
        )
    if args.cluster:
        from repro.dist import ClusterSession

        with ClusterSession(args.cluster) as cluster:
            events = cluster.events(args.limit)
    elif args.connect:
        from repro.net.client import RemoteSession

        with RemoteSession(args.connect) as session:
            events = session.events(args.limit)
    else:
        from repro.obs.events import global_events

        events = global_events().snapshot(args.limit)
    if args.json:
        for event in events:
            print(json.dumps(event, sort_keys=True))
    else:
        from repro.obs.events import format_event

        for event in events:
            print(format_event(event))
        if not events:
            print("(no recorded events)")
    return 0


def _service_database(dataset: str, selectivity: int,
                      scale: float) -> Database:
    """The dataset plus v1..v4 node samples, so every pattern is runnable."""
    database = Database([load_dataset(dataset, scale=scale)])
    attach_samples(database, selectivity,
                   sample_names=("v1", "v2", "v3", "v4"))
    return database


def _graceful_sigterm() -> None:
    """Make SIGTERM interrupt like Ctrl-C so ``finally``/context managers run.

    A drained worker pool and closed caches beat a traceback: ``repro
    serve`` / ``repro server`` catch the resulting KeyboardInterrupt and
    shut down cleanly.  A no-op off the main thread (tests drive the CLI
    in-process).
    """
    import signal

    def _handler(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _handler)
    except ValueError:
        pass


def _cmd_serve(args: argparse.Namespace) -> int:
    configure_logging(level=args.log_level)
    log = get_logger("cli")
    database = _service_database(args.dataset, args.selectivity, args.scale)
    config = ServiceConfig(workers=args.workers, default_timeout=args.timeout,
                           parallel_shards=args.parallel,
                           partition_mode=args.partition_mode,
                           slow_query_seconds=args.slow_query_threshold)
    _graceful_sigterm()
    with QueryService(database, config) as service:
        log.info("serving %s on stdin", args.dataset,
                 extra={"data": {"dataset": args.dataset,
                                 "workers": args.workers,
                                 "edges": len(database.relation("edge"))}})
        print(f"serving {args.dataset} "
              f"({database.relation('edge').arity}-ary edge relation, "
              f"{len(database.relation('edge')):,} tuples); "
              f"one query per line, blank line or EOF to stop")
        try:
            for line in sys.stdin:
                text = line.strip()
                if not text:
                    break
                outcome = service.execute(text)
                if outcome.timed_out:
                    print(f"timeout after {outcome.seconds:.3f}s")
                elif outcome.error:
                    print(f"error: {outcome.error}")
                else:
                    cache = ("result-cache" if outcome.result_cached
                             else "plan-cache" if outcome.plan_cached
                             else "cold")
                    print(f"{outcome.count:,} results in "
                          f"{outcome.seconds:.4f}s "
                          f"[{outcome.algorithm}, {cache}]")
        except KeyboardInterrupt:
            print("interrupted; draining", flush=True)
        stats = service.stats().as_dict()
    log.info("serve loop finished", extra={"data": stats})
    print("served: " + ", ".join(f"{k}={v}" for k, v in stats.items()))
    return 0


def _cmd_server(args: argparse.Namespace) -> int:
    from repro.net.server import ReproServer

    configure_logging(level=args.log_level)
    log = get_logger("cli")
    database = _service_database(args.dataset, args.selectivity, args.scale)
    config = ServiceConfig(workers=args.workers, default_timeout=args.timeout,
                           parallel_shards=args.parallel,
                           partition_mode=args.partition_mode,
                           slow_query_seconds=args.slow_query_threshold)
    _graceful_sigterm()
    with QueryService(database, config) as service:
        server = ReproServer(service, host=args.host, port=args.port,
                             cursor_ttl=args.cursor_ttl,
                             prepared_ttl=args.prepared_ttl,
                             max_prepared=args.max_prepared,
                             peers=args.peers)

        def ready(srv: ReproServer) -> None:
            log.info("server ready on %s", srv.url,
                     extra={"data": {"dataset": args.dataset,
                                     "url": srv.url,
                                     "workers": args.workers}})
            print(f"serving {args.dataset} "
                  f"({len(database.relation('edge')):,} edge tuples) "
                  f"on {srv.url}; SIGINT/SIGTERM to stop", flush=True)

        try:
            # Blocks until SIGINT/SIGTERM: the server stops accepting,
            # closes every open cursor, and returns; the service context
            # then drains the worker pool.
            server.run(ready=ready)
        except KeyboardInterrupt:
            pass
        stats = service.stats().as_dict()
    log.info("server stopped", extra={"data": stats})
    print("server stopped; "
          + ", ".join(f"{k}={v}" for k, v in stats.items()))
    return 0


def _default_workload(database: Database, operations: int,
                      seed: int) -> WorkloadSpec:
    """A built-in LDBC-flavoured mix: hot-node 2-hops, triangles, 3-paths."""
    nodes = sorted(database.relation("edge").active_domain())
    domain = nodes[:min(len(nodes), 64)]
    return WorkloadSpec.from_dict({
        "name": "default-mix",
        "operations": operations,
        "seed": seed,
        "queries": [
            {"name": "two-hop", "weight": 4,
             "template": "edge({src}, b), edge(b, c)",
             "parameters": [{"name": "src", "distribution": "zipf",
                             "skew": 1.2, "values": domain}]},
            {"name": "triangle", "weight": 2,
             "template": "edge(a, b), edge(b, c), edge(a, c), a < b, b < c"},
            {"name": "3-path", "weight": 1,
             "template": "v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)"},
        ],
    })


def _run_cluster_workload(args: argparse.Namespace, spec) -> int:
    """Drive the instantiated workload stream through a cluster.

    Each request fans out as shards over the cluster's servers; a local
    thread pool (``--workers``) keeps ``--qps``-many requests in flight,
    mirroring the in-process runner's open-loop pacing closely enough
    for the same percentile table to be meaningful.
    """
    from concurrent.futures import ThreadPoolExecutor

    from repro.dist import ClusterSession
    from repro.service.workload import WorkloadReport

    report = WorkloadReport(
        name=spec.name, operations=spec.operations,
        succeeded=0, rejected=0, failed=0, elapsed_seconds=0.0,
    )
    options = QueryOptions(
        timeout=args.timeout,
        parallel=args.parallel if args.parallel != 1 else None,
        partition_mode=args.partition_mode,
    )
    with ClusterSession(args.cluster, options=options) as session, \
            ThreadPoolExecutor(max_workers=args.workers) as pool:
        prepared = {}

        def _execute(query, text):
            if args.prepare:
                handle = prepared.get((text, query.algorithm))
                if handle is None:
                    handle = session.prepare(text,
                                             algorithm=query.algorithm)
                    prepared[(text, query.algorithm)] = handle
                result = handle.run()
            else:
                result = session.run(text, algorithm=query.algorithm)
            try:
                return result.count() if query.mode == "count" \
                    else sum(1 for _ in result.rows())
            finally:
                result.close()

        interval = (1.0 / spec.qps) if spec.qps else 0.0
        started = time.perf_counter()
        pending = []
        for index, (query, text) in enumerate(spec.requests()):
            if interval:
                slot = started + index * interval
                delay = slot - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            issued = time.perf_counter()
            pending.append(
                (query.name, issued, pool.submit(_execute, query, text))
            )
        for name, issued, future in pending:
            try:
                future.result()
            except ReproError:
                report.failed += 1
                continue
            report.succeeded += 1
            latency = time.perf_counter() - issued
            report.latencies_by_query.setdefault(name, []).append(latency)
        report.elapsed_seconds = time.perf_counter() - started
        topology = session.stats()["topology"]
        report.service_stats = {
            "cluster_servers": topology["total"],
            "cluster_healthy": topology["healthy"],
            "shards_dispatched": sum(
                server["dispatched"] for server in topology["servers"]
            ),
        }
    print(report.format())
    return 0 if report.failed == 0 else 2


def _cmd_workload(args: argparse.Namespace) -> int:
    database = _service_database(args.dataset, args.selectivity, args.scale)
    if args.spec:
        spec = WorkloadSpec.from_json(args.spec)
    else:
        spec = _default_workload(database, operations=args.operations or 200,
                                 seed=args.seed if args.seed is not None else 0)
    overrides = {}
    if args.operations is not None:
        overrides["operations"] = args.operations
    if args.qps is not None:
        overrides["qps"] = args.qps
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        from dataclasses import replace
        spec = replace(spec, **overrides)

    if args.cluster:
        if args.compare_cold:
            raise OptionsError(
                "--compare-cold measures the in-process engine cache; "
                "it does not apply to a --cluster run"
            )
        return _run_cluster_workload(args, spec)

    config = ServiceConfig(workers=args.workers, default_timeout=args.timeout,
                           parallel_shards=args.parallel,
                           partition_mode=args.partition_mode)
    with QueryService(database, config) as service:
        report = WorkloadRunner(service, spec, prepare=args.prepare).run()
    print(report.format())

    if args.compare_cold:
        unique = sorted({text for _, text in spec.requests()})
        comparison = run_cached_vs_cold(
            database, unique[:8], repeats=10, timeout=args.timeout
        )
        verdict = "identical answers" if comparison.consistent \
            else "ANSWER MISMATCH"
        print(f"\ncached vs cold ({comparison.operations} ops over "
              f"{comparison.unique_queries} unique queries): "
              f"{comparison.cold_qps:.1f} q/s cold vs "
              f"{comparison.cached_qps:.1f} q/s cached "
              f"({comparison.speedup:.1f}x, {verdict})")
        if not comparison.consistent:
            return 2
    return 0


def _fail(message: str, code: int) -> int:
    """Print a one-line error to stderr and return the exit code."""
    print(" ".join(message.split()), file=sys.stderr)
    return code


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Every library failure maps to a one-line stderr message and a
    failure-specific exit code — never a traceback: parse errors exit
    ``EXIT_PARSE``, unknown algorithms ``EXIT_UNKNOWN_ALGORITHM``,
    invalid options ``EXIT_BAD_OPTIONS``, timeouts ``EXIT_TIMEOUT``, and
    anything else the library can diagnose ``EXIT_ERROR``.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "datasets":
            return _cmd_datasets()
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "explain":
            return _cmd_explain(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "analyze":
            return _cmd_analyze(args)
        if args.command == "metrics":
            return _cmd_metrics(args)
        if args.command == "events":
            return _cmd_events(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "server":
            return _cmd_server(args)
        if args.command == "workload":
            return _cmd_workload(args)
    except ParseError as error:
        return _fail(f"parse error: {error}", EXIT_PARSE)
    except UnknownAlgorithmError as error:
        return _fail(f"error: {error}", EXIT_UNKNOWN_ALGORITHM)
    except OptionsError as error:
        return _fail(f"invalid options: {error}", EXIT_BAD_OPTIONS)
    except TimeoutExceeded as error:
        return _fail(f"timed out: {error}", EXIT_TIMEOUT)
    except ReproError as error:
        return _fail(f"error: {error}", EXIT_ERROR)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
