""":class:`ClusterSession` — one query, many machines.

The coordinator is a *client-side* construct: servers stay completely
unaware of each other.  One query flows through four stages:

1. **Plan** — a ``run`` (plan-only) probe on any healthy server yields
   the output columns and algorithm choice (and surfaces parse /
   unknown-algorithm errors with single-server timing); the planner
   (:mod:`repro.dist.planner`) then picks a hash or HyperCube grid
   whose share sizes are weighted by per-relation statistics harvested
   from a server's Explain report.
2. **Dispatch** — each grid cell becomes one shard request carrying the
   scheme + cell in its wire frame; the server filters the relations
   down to that cell (:meth:`Partitioner.shard_database`) and runs the
   rewritten sub-query.  Cells are dealt round-robin over the healthy
   servers on the session's background asyncio loop, all multiplexed
   through one :class:`~repro.net.client.AsyncRemoteSession` socket per
   server.
3. **Gather** — ``asyncio.gather`` with per-shard deadlines.  A shard
   that outlives ``hedge_after`` seconds is *hedged*: duplicated to a
   sibling server, first answer wins (safe — shards are disjoint and
   shard reads are idempotent).  A shard whose server dies mid-gather
   is *re-routed* to a healthy sibling (degraded mode: a dead server
   costs latency, never the answer).
4. **Merge** — disjointness makes this trivial: counts sum, tuples
   concatenate in deterministic cell order, limits clamp exactly
   (:mod:`repro.dist.merge`).

The session is synchronous on the outside — the exact ``Session``
surface (``run`` / ``count`` / ``explain`` / ``prepare`` / ``close``)
— and drives its asyncio fan-out on a private daemon thread, so callers
never touch an event loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.options import QueryOptions
from repro.api.result import ResultStats, Row, RowCursor
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.parser import parse_query
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.errors import (
    CursorError,
    NetworkError,
    OptionsError,
    PreparedError,
    ProtocolError,
    ReproError,
)
from repro.exec.partitioner import Cell, PartitionScheme
from repro.net.client import (
    DEFAULT_FETCH_SIZE,
    DEFAULT_RETRIES,
    DEFAULT_RETRY_BACKOFF,
    AsyncRemoteResultSet,
    AsyncRemoteSession,
    _options_payload,
    _validate_resilience_knobs,
    parse_cluster_url,
)
from repro.net.server import DEFAULT_PORT
from repro.obs.events import global_events
from repro.obs.fleet import (
    ShardRecord,
    fleet_rollup_text,
    merge_prometheus,
    server_label,
    stitch_trace,
)
from repro.obs.metrics import global_registry
from repro.obs.trace import new_trace_id
from repro.dist.merge import merge_counts, merge_rows, straggler_ratio
from repro.dist.planner import DistExplain, DistPlan, plan_query
from repro.dist.topology import ServerState, Topology

#: Errors that mean "this server (or this stream) is unusable" — the
#: only ones that mark a server down and re-route its shards.  Every
#: other ReproError (parse, options, timeout, execution) is the query's
#: own fault and must propagate with single-server fidelity.
_FAILOVER_ERRORS = (NetworkError, ProtocolError, CursorError)

#: Bound on the per-query planning-info cache (β-acyclicity + sizes).
_INFO_CACHE_SIZE = 128


def _endpoint_url(host: str, port: int) -> str:
    """One endpoint back to canonical single-server URL form."""
    if ":" in host:  # IPv6 literal — re-bracket
        return f"repro://[{host}]:{port}"
    return f"repro://{host}:{port}"


@dataclass(frozen=True)
class _QueryInfo:
    """Locally derived planning facts for one query text."""

    query: ConjunctiveQuery
    beta_acyclic: bool
    sizes: Dict[int, int]  # atom index -> relation cardinality


@dataclass(frozen=True)
class _GatherContext:
    """Distributed trace context threaded through one gather.

    ``trace_id`` is always generated — even untraced queries carry it so
    server-side flight-recorder events correlate; the full span stitch
    only happens when ``traced`` (``QueryOptions.trace``) is on.
    """

    trace_id: str
    traced: bool


class _LoopThread:
    """A private asyncio loop on a daemon thread; sync callers submit."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-loop", daemon=True,
        )
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        try:
            self.loop.run_forever()
        finally:
            # Cancel stragglers (hedge losers, abandoned gathers) so
            # their transports close before the loop does.
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self.loop.close()

    def call(self, coro):
        """Run ``coro`` on the loop thread; block for (and raise) its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def close(self) -> None:
        if self.loop.is_closed():
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)


class ClusterResultSet(RowCursor):
    """A distributed answer with the local result-set surface.

    Construction is pure (the plan probe already ran); the shard
    fan-out fires lazily at the first row pull, and the merged answer
    materializes client-side — the gather must see every shard to
    merge, so there is no cross-shard streaming to preserve.
    :meth:`count` never fetches rows: it fans out the servers' count
    paths and sums.
    """

    def __init__(self, cluster: "ClusterSession", text: str,
                 options: QueryOptions, plan: DistPlan, meta: dict) -> None:
        self._cluster = cluster
        self._text = text
        self._options = options
        self._plan = plan
        self._meta = meta
        self._variables = tuple(Variable(name) for name in meta["columns"])
        self._rows: Optional[List[Row]] = None
        self._position = 0
        self._delivered = 0
        self._count: Optional[int] = None
        self._execution_seconds = 0.0
        self._closed = False
        # One trace id per distributed query, minted up front: every
        # shard dispatch (hedges and re-routes included) is stamped with
        # it, so all participating servers' logs correlate even when
        # tracing itself is off.
        self._trace_id = new_trace_id()
        self._trace: Optional[dict] = None
        self._gather_info: dict = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query_text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    @property
    def shards(self) -> int:
        return self._plan.shards

    @property
    def complete(self) -> bool:
        return self._rows is not None

    @property
    def trace_id(self) -> str:
        """The query-level trace id every shard dispatch carries."""
        return self._trace_id

    @property
    def gather_info(self) -> dict:
        """Shard → server map and hedge/re-route counts of the gather."""
        return dict(self._gather_info)

    @property
    def stats(self) -> ResultStats:
        scheme = self._plan.scheme
        return ResultStats(
            query=self._text,
            algorithm=self._meta["algorithm"],
            requested_algorithm=self._meta.get(
                "requested_algorithm", self._options.algorithm
            ),
            partitioning=scheme.key() if scheme is not None else "serial",
            shards=self._plan.shards,
            plan_cached=self._meta.get("plan_cached", False),
            result_cached=False,
            plan_seconds=0.0,
            execution_seconds=self._execution_seconds,
            rows_delivered=self._delivered,
            complete=self.complete,
            limit=self._options.limit,
            total=self._count,
            trace=self._trace,
        )

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        if self._rows is not None:
            return
        started = time.perf_counter()
        rows, info = self._cluster._gather_rows(
            self._text, self._options, self._plan, self._meta,
            self._trace_id,
        )
        self._execution_seconds += time.perf_counter() - started
        self._rows = rows
        self._gather_info = info
        self._trace = info.get("trace")
        # Per-shard counts are limit-clamped by pushdown and the merge
        # clamps again, so len(rows) == min(total, limit) — exactly what
        # count() reports on a limited local result set.
        self._count = len(rows)

    def _pull(self) -> Optional[Row]:
        if self._closed and self._rows is None:
            raise CursorError(
                "this distributed result set was closed before it was "
                "consumed; re-run the query for a fresh result set"
            )
        self._materialize()
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        self._delivered += 1
        return row

    def count(self) -> int:
        """The number of answers, via every shard's count path, summed."""
        if self._count is None:
            started = time.perf_counter()
            value, info = self._cluster._gather_count(
                self._text, self._options, self._plan, self._meta,
                self._trace_id,
            )
            self._execution_seconds += time.perf_counter() - started
            self._count = value
            self._gather_info = info
            if self._trace is None:
                self._trace = info.get("trace")
        return self._count

    def close(self) -> None:
        """Drop the materialized answer; idempotent."""
        self._closed = True

    def __repr__(self) -> str:
        state = "materialized" if self._rows is not None else "pending"
        return (f"ClusterResultSet(query={self._text!r}, "
                f"shards={self._plan.shards}, {state})")


class ClusterPreparedHandle:
    """A reusable query shape on a cluster.

    Preparing validates the text once (one plan probe) and warms the
    statistics cache; each :meth:`run` re-plans the shard grid against
    the topology's *current* health, so a handle prepared on a full
    fleet keeps working — degraded — after a server dies.
    """

    def __init__(self, cluster: "ClusterSession", text: str,
                 options: QueryOptions, meta: dict,
                 query: ConjunctiveQuery) -> None:
        self._cluster = cluster
        self._text = text
        self._options = options
        self._meta = meta
        self._query = query
        self._closed = False

    @property
    def text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    def run(self, options: Optional[QueryOptions] = None,
            **overrides) -> ClusterResultSet:
        if self._closed:
            raise PreparedError("this prepared handle is closed")
        opts = self._cluster.options(
            options if options is not None else self._options, **overrides
        )
        plan = self._cluster._plan_sync(self._query, self._text, opts)
        return ClusterResultSet(self._cluster, self._text, opts, plan,
                                dict(self._meta))

    def explain(self) -> DistExplain:
        return self._cluster.explain(self._text, self._options)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ClusterPreparedHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"ClusterPreparedHandle(text={self._text!r}, "
                f"algorithm={self.algorithm!r}, {state})")


class ClusterSession:
    """A connected cluster client with the local ``Session`` surface.

    Parameters
    ----------
    url:
        ``repro://h1:p1,h2:p2,...`` — the multi-host cluster grammar of
        :func:`~repro.net.client.parse_cluster_url`.
    options:
        Session-default :class:`QueryOptions`.  ``parallel`` here (or
        per call) fixes the shard count; by default every query runs
        one shard per currently-healthy server.
    hedge_after:
        Seconds a shard may run before a duplicate is dispatched to a
        sibling server (first answer wins); ``None`` disables hedging.
    shard_deadline:
        Hard per-shard deadline in seconds; a shard that misses it is
        treated like a transport failure and re-routed.  ``None`` (the
        default) leaves shards bounded only by ``QueryOptions.timeout``
        server-side.
    retries / retry_backoff / connect_timeout / fetch_size / wire_encoding:
        Per-server resilience knobs, passed to each underlying
        :class:`~repro.net.client.AsyncRemoteSession`.
    """

    def __init__(self, url: str, *,
                 options: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 connect_timeout: float = 10.0,
                 hedge_after: Optional[float] = None,
                 shard_deadline: Optional[float] = None,
                 wire_encoding: Optional[str] = None) -> None:
        _validate_resilience_knobs(None, retries, retry_backoff)
        for name, value in (("hedge_after", hedge_after),
                            ("shard_deadline", shard_deadline)):
            if value is not None and (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float)) or value <= 0):
                raise OptionsError(
                    f"{name} must be a positive number of seconds or "
                    f"None, got {value!r}"
                )
        self.url = url
        self.defaults = options if options is not None else QueryOptions()
        self.fetch_size = max(1, int(fetch_size))
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.connect_timeout = connect_timeout
        self.hedge_after = hedge_after
        self.shard_deadline = shard_deadline
        self._wire_encoding = wire_encoding
        endpoints = parse_cluster_url(url)
        self.topology = Topology(
            [_endpoint_url(host, port) for host, port in endpoints]
        )
        self._sessions: Dict[str, AsyncRemoteSession] = {}
        self._session_locks: Dict[str, asyncio.Lock] = {}
        self._info_cache: "OrderedDict[str, _QueryInfo]" = OrderedDict()
        self._closed = False
        self._loop = _LoopThread()
        try:
            self._loop.call(self._open_initial())
        except BaseException:
            # A failed constructor must not leak sockets or the loop
            # thread (mirrors the RemoteSession handshake discipline).
            self._closed = True
            try:
                self._loop.call(self._close_sessions())
            except Exception:
                pass
            self._loop.close()
            raise

    # ------------------------------------------------------------------
    # Connection management (loop thread)
    # ------------------------------------------------------------------
    async def _open_initial(self) -> None:
        """Dial every configured server; survivors define initial health.

        A cluster with *some* dead servers comes up degraded rather than
        failing — only an entirely unreachable fleet is an error.
        """
        errors: List[ReproError] = []
        for server in self.topology.servers:
            try:
                await self._session_for(server)
            except _FAILOVER_ERRORS as error:
                self.topology.mark_down(server)
                errors.append(error)
        if not self.topology.healthy():
            raise NetworkError(
                f"no server of the cluster is reachable "
                f"(first failure: {errors[0]})"
            )

    async def _session_for(self, server: ServerState) -> AsyncRemoteSession:
        """The (lazily revived) multiplexed session for one server."""
        lock = self._session_locks.setdefault(server.url, asyncio.Lock())
        async with lock:
            session = self._sessions.get(server.url)
            if session is not None and not session._closed:
                return session
            session = AsyncRemoteSession(
                server.url, options=self.defaults,
                fetch_size=self.fetch_size, retries=self.retries,
                retry_backoff=self.retry_backoff,
                connect_timeout=self.connect_timeout,
                wire_encoding=self._wire_encoding,
            )
            await session._open()
            self._sessions[server.url] = session
            return session

    def _candidates(self) -> List[ServerState]:
        """Failover order: healthy servers first, then down ones.

        Down servers ride at the back so a restarted server is probed
        (and revived) only after every known-good option failed —
        self-healing without a heartbeat.
        """
        up = [s for s in self.topology.servers if s.healthy]
        down = [s for s in self.topology.servers if not s.healthy]
        return up + down

    async def _on_any_server(self, op: str, params: dict) -> dict:
        """One idempotent request with whole-fleet failover.

        Transport failures mark the server down and move on; any other
        server-reported error propagates untouched (it would fail the
        same way everywhere).
        """
        errors: List[ReproError] = []
        for server in self._candidates():
            try:
                session = await self._session_for(server)
                body = await session._request(op, **params)
            except _FAILOVER_ERRORS as error:
                self.topology.mark_down(server)
                errors.append(error)
                continue
            self.topology.mark_up(server)
            return body
        raise errors[-1] if errors else NetworkError(
            "every server of the cluster is marked down"
        )

    # ------------------------------------------------------------------
    # Planning (loop thread)
    # ------------------------------------------------------------------
    @staticmethod
    def _resolve_query(query: object, text: str) -> ConjunctiveQuery:
        if isinstance(query, ConjunctiveQuery):
            return query
        inner = getattr(query, "query", None)  # PreparedQuery duck-type
        if isinstance(inner, ConjunctiveQuery):
            return inner
        return parse_query(text)

    async def _query_info(self, text: str,
                          query: ConjunctiveQuery) -> _QueryInfo:
        """β-acyclicity (local) + relation sizes (one server's Explain).

        Sizes feed share weighting only — stale or missing statistics
        degrade the grid's balance, never the answer — so they are
        cached per query text and fetched with ``algorithm="auto"``
        (independent of the caller's algorithm choice).
        """
        info = self._info_cache.get(text)
        if info is not None:
            self._info_cache.move_to_end(text)
            return info
        beta = Hypergraph.of_query(query).is_beta_acyclic()
        sizes: Dict[int, int] = {}
        try:
            body = await self._on_any_server("explain", {
                "query": text,
                "options": _options_payload(QueryOptions()),
            })
        except _FAILOVER_ERRORS:
            raise
        except ReproError:
            body = None  # statistics are optional; planning degrades
        if body is not None:
            cardinality = {
                estimate["name"]: estimate["cardinality"]
                for estimate in body["report"].get("relation_estimates", [])
            }
            for index, atom in enumerate(query.atoms):
                if atom.name in cardinality:
                    sizes[index] = cardinality[atom.name]
        info = _QueryInfo(query=query, beta_acyclic=beta, sizes=sizes)
        self._info_cache[text] = info
        while len(self._info_cache) > _INFO_CACHE_SIZE:
            self._info_cache.popitem(last=False)
        return info

    async def _plan_for(self, query: ConjunctiveQuery, text: str,
                        opts: QueryOptions) -> DistPlan:
        info = await self._query_info(text, query)
        if opts.parallel is not None:
            shards = opts.parallel
        else:
            shards = max(1, len(self.topology.healthy()))
        if not query.variables:
            shards = 1  # a variable-free query cannot partition; proxy it
        return plan_query(
            info.query, shards=shards, mode=opts.partition_mode,
            beta_acyclic=info.beta_acyclic, sizes=info.sizes,
        )

    def _plan_sync(self, query: ConjunctiveQuery, text: str,
                   opts: QueryOptions) -> DistPlan:
        self._check_open()
        return self._loop.call(self._plan_for(query, text, opts))

    # ------------------------------------------------------------------
    # Dispatch / gather / merge (loop thread)
    # ------------------------------------------------------------------
    async def _gather(self, kind: str, text: str, opts: QueryOptions,
                      plan: DistPlan, meta: dict, trace_id: str):
        """Fan out, gather, merge — and account for what happened.

        Returns ``(value, info)`` where ``info`` carries the stitched
        trace (when tracing is on), the shard → server map, and the
        hedge / re-route counts; the same facts land on the flight
        recorder as one ``coordinator`` event per gather, success or
        failure.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        ctx = _GatherContext(trace_id=trace_id, traced=bool(opts.trace))
        records: List[ShardRecord] = []
        scheme_key = plan.scheme.key() if plan.scheme is not None \
            else "serial"
        merge_interval: Optional[Tuple[float, float]] = None
        try:
            if plan.scheme is None:
                value = await self._proxy(kind, text, opts, meta, ctx,
                                          records)
            else:
                # Shards run serially server-side: the grid is already
                # the parallelism, and n_servers × n_cores of
                # over-subscription would thrash the very fleet this
                # layer exists to scale.
                shard_opts = opts.merged(parallel=1)
                assignments = self.topology.assign(plan.cells)
                records = [
                    ShardRecord(index=index, span_id=new_trace_id(),
                                cell=tuple(cell))
                    for index, (cell, _) in enumerate(assignments)
                ]
                tasks = [
                    asyncio.ensure_future(self._execute_shard(
                        kind, text, shard_opts, plan.scheme, cell,
                        server, meta, ctx, record,
                    ))
                    for (cell, server), record in zip(assignments, records)
                ]
                outcomes = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
                failure = next(
                    (o for o in outcomes if isinstance(o, BaseException)),
                    None,
                )
                if failure is not None:
                    raise failure
                payloads = [payload for payload, _ in outcomes]
                seconds = [elapsed for _, elapsed in outcomes]
                ratio = straggler_ratio(seconds)
                if ratio is not None:
                    global_registry().histogram(
                        "repro_dist_straggler_ratio").observe(ratio)
                merge_started = loop.time()
                if kind == "count":
                    value = merge_counts(payloads, opts.limit)
                else:
                    value = merge_rows(payloads, opts.limit)
                merge_interval = (merge_started, loop.time())
        except BaseException as error:
            now = loop.time()
            self._finalize_records(records, now)
            if isinstance(error, Exception):
                self._record_flight(
                    kind, text, ctx, records, started, now, meta,
                    outcome="timeout"
                    if "Timeout" in type(error).__name__ else "error",
                    error=str(error),
                )
            raise
        finished = loop.time()
        self._finalize_records(records, finished)
        info = self._gather_summary(
            kind, ctx, records, started, finished, merge_interval,
            scheme_key, meta,
        )
        self._record_flight(kind, text, ctx, records, started, finished,
                            meta, outcome="ok")
        return value, info

    @staticmethod
    def _finalize_records(records: Sequence[ShardRecord],
                          now: float) -> None:
        """Close out attempts the gather abandoned (hedge losers whose
        cancellation has not been delivered yet, failed fan-outs)."""
        for record in records:
            for attempt in record.attempts:
                attempt.finish(now, "cancelled")

    @staticmethod
    def _shard_map(records: Sequence[ShardRecord]) -> Dict[str, str]:
        return {str(record.index): server_label(record.server)
                for record in records if record.server}

    def _gather_summary(self, kind: str, ctx: _GatherContext,
                        records: Sequence[ShardRecord], started: float,
                        finished: float,
                        merge_interval: Optional[Tuple[float, float]],
                        scheme_key: str, meta: dict) -> dict:
        trace = None
        if ctx.traced:
            annotations = {"mode": kind, "scheme": scheme_key}
            if meta.get("algorithm"):
                annotations["algorithm"] = meta["algorithm"]
            trace = stitch_trace(
                trace_id=ctx.trace_id, started=started, finished=finished,
                shards=records,
                merge_start=merge_interval[0] if merge_interval else None,
                merge_end=merge_interval[1] if merge_interval else None,
                annotations=annotations,
            )
        return {
            "trace": trace,
            "trace_id": ctx.trace_id,
            "seconds": round(finished - started, 6),
            "shard_map": self._shard_map(records),
            "hedges": sum(record.hedges for record in records),
            "reroutes": sum(record.reroutes for record in records),
        }

    def _record_flight(self, kind: str, text: str, ctx: _GatherContext,
                       records: Sequence[ShardRecord], started: float,
                       finished: float, meta: dict, *, outcome: str,
                       error: Optional[str] = None) -> None:
        global_events().record(
            source="coordinator", trace_id=ctx.trace_id, query=text,
            mode=kind, outcome=outcome, error=error,
            seconds=round(max(0.0, finished - started), 6),
            algorithm=meta.get("algorithm"),
            shards=len(records),
            shard_map=self._shard_map(records) or None,
            hedges=sum(record.hedges for record in records),
            reroutes=sum(record.reroutes for record in records),
        )

    async def _proxy(self, kind: str, text: str, opts: QueryOptions,
                     meta: dict, ctx: _GatherContext,
                     records: List[ShardRecord]):
        """Single-shard path: the whole query on one server, failover."""
        payload = _options_payload(opts)
        loop = asyncio.get_running_loop()
        record = ShardRecord(index=0, span_id=new_trace_id())
        records.append(record)
        errors: List[ReproError] = []
        attempt_kind = "primary"
        for server in self._candidates():
            attempt = record.new_attempt(server.url, attempt_kind,
                                         loop.time())
            span_wire = {"id": record.span_id, "shard": record.index,
                         "attempt": attempt.tag}
            try:
                session = await self._session_for(server)
                if kind == "count":
                    body = await session._request(
                        "count", query=text, options=payload,
                        trace_id=ctx.trace_id, span=span_wire,
                    )
                    attempt.server_trace = body.get("trace")
                    value = body["count"]
                else:
                    result_set = AsyncRemoteResultSet(
                        session, text, opts, dict(meta),
                        trace_id=ctx.trace_id, span=span_wire,
                    )
                    value = await result_set.fetchall()
                    attempt.server_trace = result_set.server_trace
            except _FAILOVER_ERRORS as error:
                attempt.finish(loop.time(), "error", str(error))
                self.topology.mark_down(server)
                errors.append(error)
                attempt_kind = "reroute"
                continue
            except ReproError as error:
                attempt.finish(loop.time(), "error", str(error))
                raise
            attempt.finish(loop.time(), "ok")
            record.server = server.url
            self.topology.mark_up(server)
            return value
        raise errors[-1] if errors else NetworkError(
            "every server of the cluster is marked down"
        )

    async def _execute_shard(self, kind: str, text: str,
                             opts: QueryOptions, scheme: PartitionScheme,
                             cell: Cell, server: ServerState, meta: dict,
                             ctx: _GatherContext, record: ShardRecord):
        """One shard to completion: dispatch, hedge, re-route, account."""
        registry = global_registry()
        shard_counter = registry.counter("repro_dist_shards_total")
        shard_wire = {"scheme": scheme.to_wire(), "cell": list(cell)}
        shard_counter.inc(event="dispatched")
        loop = asyncio.get_running_loop()
        tried: set = set()
        attempt_kind = "primary"
        while True:
            tried.add(server.url)
            server.dispatched += 1
            started = loop.time()
            try:
                result, attempt = await self._attempt_shard(
                    kind, text, opts, shard_wire, server, meta, ctx,
                    record, attempt_kind,
                )
            except _FAILOVER_ERRORS as error:
                self.topology.mark_down(server)
                sibling = self.topology.sibling(server, exclude=tried)
                if sibling is None:
                    shard_counter.inc(event="failed")
                    raise NetworkError(
                        f"shard {tuple(cell)} failed on every reachable "
                        f"server (last, from {server.url}: {error})"
                    ) from error
                shard_counter.inc(event="rerouted")
                server = sibling
                attempt_kind = "reroute"
                continue
            elapsed = loop.time() - started
            registry.histogram("repro_dist_server_seconds").observe(
                elapsed, server=attempt.server,
            )
            record.server = attempt.server
            self.topology.mark_up(server)
            return result, elapsed

    async def _attempt_shard(self, kind: str, text: str,
                             opts: QueryOptions, shard_wire: dict,
                             server: ServerState, meta: dict,
                             ctx: _GatherContext, record: ShardRecord,
                             attempt_kind: str):
        """One dispatch attempt, bounded by the shard deadline."""
        if self.shard_deadline is None:
            return await self._hedged(kind, text, opts, shard_wire,
                                      server, meta, ctx, record,
                                      attempt_kind)
        try:
            return await asyncio.wait_for(
                self._hedged(kind, text, opts, shard_wire, server, meta,
                             ctx, record, attempt_kind),
                self.shard_deadline,
            )
        except asyncio.TimeoutError:
            raise NetworkError(
                f"shard on {server.url} missed its "
                f"{self.shard_deadline}s deadline"
            ) from None

    async def _hedged(self, kind: str, text: str, opts: QueryOptions,
                      shard_wire: dict, server: ServerState, meta: dict,
                      ctx: _GatherContext, record: ShardRecord,
                      attempt_kind: str):
        """Primary dispatch with hedged re-dispatch of stragglers.

        After ``hedge_after`` seconds with no answer, the same shard is
        duplicated to a sibling; the first success wins and the loser is
        cancelled (its server-side cursor, if any, falls to the cursor
        registry's idle expiry).  Safe because shards are disjoint and
        shard reads are idempotent — the duplicate computes the exact
        same rows.  The hedge reuses the shard's span id with a distinct
        attempt tag, so both servers' logs name the same logical shard.
        """
        primary = asyncio.ensure_future(
            self._shard_once(kind, text, opts, shard_wire, server, meta,
                             ctx, record, attempt_kind)
        )
        if self.hedge_after is None:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=self.hedge_after)
        if done:
            return primary.result()
        sibling = self.topology.sibling(server)
        if sibling is None:
            return await primary
        global_registry().counter(
            "repro_dist_shards_total").inc(event="hedged")
        hedge = asyncio.ensure_future(
            self._shard_once(kind, text, opts, shard_wire, sibling, meta,
                             ctx, record, "hedge")
        )
        pending = {primary, hedge}
        first_error: Optional[BaseException] = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED,
                )
                for task in done:
                    if task.exception() is None:
                        return task.result()
                    if first_error is None:
                        first_error = task.exception()
            raise first_error
        finally:
            for task in pending:
                task.cancel()

    async def _shard_once(self, kind: str, text: str, opts: QueryOptions,
                          shard_wire: dict, server: ServerState,
                          meta: dict, ctx: _GatherContext,
                          record: ShardRecord, attempt_kind: str):
        """One shard request on one server, no retries beyond the
        session's own idempotent-op replay.  Returns ``(value, attempt)``
        so the caller knows which dispatch actually answered."""
        loop = asyncio.get_running_loop()
        attempt = record.new_attempt(server.url, attempt_kind, loop.time())
        span_wire = {"id": record.span_id, "shard": record.index,
                     "attempt": attempt.tag}
        try:
            session = await self._session_for(server)
            if kind == "count":
                body = await session._request(
                    "count", query=text, options=_options_payload(opts),
                    shard=shard_wire, trace_id=ctx.trace_id,
                    span=span_wire,
                )
                attempt.server_trace = body.get("trace")
                value = body["count"]
            else:
                result_set = AsyncRemoteResultSet(
                    session, text, opts, dict(meta), shard=shard_wire,
                    trace_id=ctx.trace_id, span=span_wire,
                )
                value = await result_set.fetchall()
                attempt.server_trace = result_set.server_trace
        except asyncio.CancelledError:
            attempt.finish(loop.time(), "cancelled")
            raise
        except ReproError as error:
            attempt.finish(loop.time(), "error", str(error))
            raise
        attempt.finish(loop.time(), "ok")
        return value, attempt

    # ------------------------------------------------------------------
    # Sync bridges
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise NetworkError("this cluster session is closed")

    def _gather_rows(self, text: str, opts: QueryOptions,
                     plan: DistPlan, meta: dict,
                     trace_id: str) -> Tuple[List[Row], dict]:
        self._check_open()
        return self._loop.call(
            self._gather("rows", text, opts, plan, meta, trace_id)
        )

    def _gather_count(self, text: str, opts: QueryOptions,
                      plan: DistPlan, meta: dict,
                      trace_id: str) -> Tuple[int, dict]:
        self._check_open()
        return self._loop.call(
            self._gather("count", text, opts, plan, meta, trace_id)
        )

    # ------------------------------------------------------------------
    # The Session surface
    # ------------------------------------------------------------------
    def options(self, options: Optional[QueryOptions] = None,
                **overrides) -> QueryOptions:
        """Resolve per-call options against the session defaults."""
        return QueryOptions.resolve(options, overrides,
                                    defaults=self.defaults)

    def run(self, query, options: Optional[QueryOptions] = None,
            **overrides) -> ClusterResultSet:
        """Plan a distributed execution; shards fly at first consumption.

        The plan probe (one ``run`` frame on a healthy server) runs
        eagerly so parse and options errors surface here, with exactly
        the single-server timing.
        """
        self._check_open()
        opts = self.options(options, **overrides)
        text = str(query)
        meta, plan = self._loop.call(self._run_async(query, text, opts))
        return ClusterResultSet(self, text, opts, plan, meta)

    async def _run_async(self, query, text: str, opts: QueryOptions
                         ) -> Tuple[dict, DistPlan]:
        meta = await self._on_any_server("run", {
            "query": text, "options": _options_payload(opts),
        })
        parsed = self._resolve_query(query, text)
        plan = await self._plan_for(parsed, text, opts)
        return meta, plan

    def count(self, query, options: Optional[QueryOptions] = None,
              **overrides) -> int:
        """The number of answers — per-shard counts, summed client-side."""
        return self.run(query, options, **overrides).count()

    def prepare(self, query, options: Optional[QueryOptions] = None,
                **overrides) -> ClusterPreparedHandle:
        """Validate once, re-plan per run against current fleet health."""
        self._check_open()
        opts = self.options(options, **overrides)
        text = str(query)
        meta, parsed = self._loop.call(
            self._prepare_async(query, text, opts)
        )
        return ClusterPreparedHandle(self, text, opts, meta, parsed)

    async def _prepare_async(self, query, text: str, opts: QueryOptions
                             ) -> Tuple[dict, ConjunctiveQuery]:
        meta = await self._on_any_server("run", {
            "query": text, "options": _options_payload(opts),
        })
        parsed = self._resolve_query(query, text)
        await self._query_info(text, parsed)  # warm the statistics cache
        return meta, parsed

    def explain(self, query, options: Optional[QueryOptions] = None,
                **overrides) -> DistExplain:
        """One server's plan report plus the distributed section."""
        self._check_open()
        opts = self.options(options, **overrides)
        text = str(query)
        return self._loop.call(self._explain_async(query, text, opts))

    async def _explain_async(self, query, text: str,
                             opts: QueryOptions) -> DistExplain:
        body = await self._on_any_server("explain", {
            "query": text, "options": _options_payload(opts),
        })
        parsed = self._resolve_query(query, text)
        plan = await self._plan_for(parsed, text, opts)
        if plan.scheme is not None:
            assignments = tuple(
                (cell, server.url)
                for cell, server in self.topology.assign(plan.cells)
            )
        else:
            assignments = ()
        return DistExplain(
            report=body["report"], rendered=body["rendered"], plan=plan,
            assignments=assignments,
            healthy_servers=len(self.topology.healthy()),
            total_servers=len(self.topology),
        )

    def stats(self) -> dict:
        """Topology health and per-server dispatch accounting (local —
        no wire traffic; per-server internals come from ``repro stats``
        against each server)."""
        return {
            "topology": self.topology.describe(),
            "client": {
                "hedge_after": self.hedge_after,
                "shard_deadline": self.shard_deadline,
                "retries": self.retries,
            },
        }

    def metrics(self) -> str:
        """One Prometheus text for the whole fleet.

        Every healthy server is scraped concurrently; each sample line
        gains a ``server="host:port"`` label so per-server series stay
        distinguishable after the merge, and the coordinator's own
        ``repro_fleet_*`` rollups (scrape latency, unreachable count,
        healthy/configured gauges) ride along unlabelled-by-server.
        """
        self._check_open()
        return self._loop.call(self._metrics_async())

    async def _metrics_async(self) -> str:
        registry = global_registry()
        loop = asyncio.get_running_loop()
        servers = self.topology.healthy()

        async def scrape(server: ServerState):
            label = server_label(server.url)
            started = loop.time()
            try:
                session = await self._session_for(server)
                text = await session.metrics()
            except _FAILOVER_ERRORS:
                self.topology.mark_down(server)
                registry.counter("repro_fleet_unreachable_total").inc(
                    server=label,
                )
                return label, None
            registry.histogram("repro_fleet_scrape_seconds").observe(
                loop.time() - started, server=label,
            )
            return label, text

        scraped = await asyncio.gather(*(scrape(s) for s in servers))
        per_server = OrderedDict(
            (label, text)
            for label, text in sorted(scraped)
            if text is not None
        )
        gauge = registry.gauge("repro_fleet_servers")
        gauge.set(len(self.topology.healthy()), state="healthy")
        gauge.set(len(self.topology), state="configured")
        return merge_prometheus(per_server,
                                extra=fleet_rollup_text(registry))

    def events(self, limit: Optional[int] = None) -> List[dict]:
        """The fleet's flight recorder, merged and time-ordered.

        Pulls every healthy server's event ring and interleaves it with
        the coordinator's own gather events; each entry gains a
        ``server`` field naming where it was recorded.  Unreachable
        servers are skipped (and marked down) — a partial fleet still
        answers.
        """
        self._check_open()
        return self._loop.call(self._events_async(limit))

    async def _events_async(self, limit: Optional[int]) -> List[dict]:
        merged: List[dict] = []

        async def pull(server: ServerState):
            label = server_label(server.url)
            try:
                session = await self._session_for(server)
                events = await session.events(limit)
            except _FAILOVER_ERRORS:
                self.topology.mark_down(server)
                return
            for event in events:
                # In-process server threads share this process's global
                # ring, so their pull would echo our own coordinator
                # events back — keep only what the server itself wrote.
                if event.get("source") != "coordinator":
                    merged.append(dict(event, server=label))

        await asyncio.gather(*(pull(s) for s in self.topology.healthy()))
        for event in global_events().snapshot(limit):
            if event.get("source") == "coordinator":
                merged.append(dict(event, server="coordinator"))
        merged.sort(key=lambda event: event.get("ts") or 0.0)
        if limit is not None and limit >= 0:
            merged = merged[-limit:] if limit else []
        return merged

    def close(self) -> None:
        """Close every server session and stop the loop; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.call(self._close_sessions())
        finally:
            self._loop.close()

    async def _close_sessions(self) -> None:
        for session in list(self._sessions.values()):
            try:
                await session.close()
            except (NetworkError, ProtocolError):
                pass
        self._sessions.clear()

    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        up = len(self.topology.healthy())
        return (f"ClusterSession({self.url!r}, {state}, "
                f"{up}/{len(self.topology)} healthy)")
