""":class:`ClusterSession` — one query, many machines.

This module is the *client-side front end* over the side-agnostic
:class:`~repro.dist.gather.GatherEngine` (the engine also powers the
server-side :class:`~repro.dist.gather.PeerCoordinator`).  One query
flows through four stages:

1. **Plan** — a ``run`` (plan-only) probe on any healthy server yields
   the output columns and algorithm choice (and surfaces parse /
   unknown-algorithm errors with single-server timing); the planner
   (:mod:`repro.dist.planner`) then picks a hash or HyperCube grid
   whose share sizes are weighted by per-relation statistics harvested
   from a server's Explain report.
2. **Dispatch** — each grid cell becomes one shard request carrying the
   scheme + cell in its wire frame; the server filters the relations
   down to that cell (:meth:`Partitioner.shard_database`) and runs the
   rewritten sub-query.  Cells are dealt round-robin over the healthy
   servers on the session's background asyncio loop, all multiplexed
   through one :class:`~repro.net.client.AsyncRemoteSession` socket per
   server.
3. **Gather** — ``asyncio.gather`` with per-shard deadlines, hedged
   re-dispatch of stragglers, and mid-gather re-route around dead
   servers (all in the engine).
4. **Merge** — counts sum, tuples concatenate in deterministic cell
   order, limits clamp exactly (:mod:`repro.dist.merge`).

Under ``QueryOptions(route="peer")`` stages 2–4 move *server-side*: the
session hands the whole query — as a ``cluster_*`` frame with ``hop=0``
and the fleet's peer list — to one server, which sub-shards across its
peers and merges before answering, so only the merged answer crosses
the final hop.  If that merging peer dies mid-gather, the session
re-routes the whole query to a sibling peer.

The session is synchronous on the outside — the exact ``Session``
surface (``run`` / ``count`` / ``explain`` / ``prepare`` / ``close``)
— and drives its asyncio fan-out on a private daemon thread, so callers
never touch an event loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.api.options import QueryOptions
from repro.api.result import ResultStats, Row, RowCursor
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.errors import (
    CursorError,
    NetworkError,
    OptionsError,
    PreparedError,
    ProtocolError,
)
from repro.net.client import (
    DEFAULT_FETCH_SIZE,
    DEFAULT_RETRIES,
    DEFAULT_RETRY_BACKOFF,
    AsyncRemoteResultSet,
    _options_payload,
    _validate_resilience_knobs,
    parse_cluster_url,
)
from repro.obs.events import global_events
from repro.obs.fleet import (
    fleet_rollup_text,
    merge_prometheus,
    server_label,
)
from repro.obs.metrics import global_registry
from repro.obs.trace import new_trace_id
from repro.dist.gather import (
    _FAILOVER_ERRORS,
    GatherEngine,
    _endpoint_url,
    resolve_query,
)
from repro.dist.planner import DistExplain, DistPlan
from repro.dist.topology import ServerState, Topology


class _LoopThread:
    """A private asyncio loop on a daemon thread; sync callers submit."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster-loop", daemon=True,
        )
        self._thread.start()
        self._started.wait()

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.call_soon(self._started.set)
        try:
            self.loop.run_forever()
        finally:
            # Cancel stragglers (hedge losers, abandoned gathers) so
            # their transports close before the loop does.
            pending = asyncio.all_tasks(self.loop)
            for task in pending:
                task.cancel()
            if pending:
                self.loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            self.loop.close()

    def call(self, coro):
        """Run ``coro`` on the loop thread; block for (and raise) its result."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result()

    def close(self) -> None:
        if self.loop.is_closed():
            return
        self.loop.call_soon_threadsafe(self.loop.stop)
        self._thread.join(timeout=30)


class ClusterResultSet(RowCursor):
    """A distributed answer with the local result-set surface.

    Construction is pure (the plan probe already ran); the shard
    fan-out fires lazily at the first row pull, and the merged answer
    materializes client-side — the gather must see every shard to
    merge, so there is no cross-shard streaming to preserve.
    :meth:`count` never fetches rows: it fans out the servers' count
    paths and sums.
    """

    def __init__(self, cluster: "ClusterSession", text: str,
                 options: QueryOptions, plan: DistPlan, meta: dict) -> None:
        self._cluster = cluster
        self._text = text
        self._options = options
        self._plan = plan
        self._meta = meta
        self._variables = tuple(Variable(name) for name in meta["columns"])
        self._rows: Optional[List[Row]] = None
        self._position = 0
        self._delivered = 0
        self._count: Optional[int] = None
        self._execution_seconds = 0.0
        self._closed = False
        # One trace id per distributed query, minted up front: every
        # shard dispatch (hedges and re-routes included) is stamped with
        # it, so all participating servers' logs correlate even when
        # tracing itself is off.
        self._trace_id = new_trace_id()
        self._trace: Optional[dict] = None
        self._gather_info: dict = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def query_text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    @property
    def shards(self) -> int:
        return self._plan.shards

    @property
    def complete(self) -> bool:
        return self._rows is not None

    @property
    def trace_id(self) -> str:
        """The query-level trace id every shard dispatch carries."""
        return self._trace_id

    @property
    def gather_info(self) -> dict:
        """Shard → server map and hedge/re-route counts of the gather.

        Under ``route="peer"`` this is the *merging server's* summary
        (its shard map names the peers it dispatched to) plus a
        ``coordinator`` key naming which server merged.
        """
        return dict(self._gather_info)

    @property
    def stats(self) -> ResultStats:
        scheme = self._plan.scheme
        return ResultStats(
            query=self._text,
            algorithm=self._meta["algorithm"],
            requested_algorithm=self._meta.get(
                "requested_algorithm", self._options.algorithm
            ),
            partitioning=scheme.key() if scheme is not None else "serial",
            shards=self._plan.shards,
            plan_cached=self._meta.get("plan_cached", False),
            result_cached=False,
            plan_seconds=0.0,
            execution_seconds=self._execution_seconds,
            rows_delivered=self._delivered,
            complete=self.complete,
            limit=self._options.limit,
            total=self._count,
            trace=self._trace,
        )

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def _materialize(self) -> None:
        if self._rows is not None:
            return
        started = time.perf_counter()
        rows, info = self._cluster._gather_rows(
            self._text, self._options, self._plan, self._meta,
            self._trace_id,
        )
        self._execution_seconds += time.perf_counter() - started
        self._rows = rows
        self._gather_info = info
        self._trace = info.get("trace")
        # Per-shard counts are limit-clamped by pushdown and the merge
        # clamps again, so len(rows) == min(total, limit) — exactly what
        # count() reports on a limited local result set.
        self._count = len(rows)

    def _pull(self) -> Optional[Row]:
        if self._closed and self._rows is None:
            raise CursorError(
                "this distributed result set was closed before it was "
                "consumed; re-run the query for a fresh result set"
            )
        self._materialize()
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        self._delivered += 1
        return row

    def count(self) -> int:
        """The number of answers, via every shard's count path, summed."""
        if self._count is None:
            started = time.perf_counter()
            value, info = self._cluster._gather_count(
                self._text, self._options, self._plan, self._meta,
                self._trace_id,
            )
            self._execution_seconds += time.perf_counter() - started
            self._count = value
            self._gather_info = info
            if self._trace is None:
                self._trace = info.get("trace")
        return self._count

    def close(self) -> None:
        """Drop the materialized answer; idempotent."""
        self._closed = True

    def __repr__(self) -> str:
        state = "materialized" if self._rows is not None else "pending"
        return (f"ClusterResultSet(query={self._text!r}, "
                f"shards={self._plan.shards}, {state})")


class ClusterPreparedHandle:
    """A reusable query shape on a cluster.

    Preparing validates the text once (one plan probe) and warms the
    statistics cache; each :meth:`run` re-plans the shard grid against
    the topology's *current* health, so a handle prepared on a full
    fleet keeps working — degraded — after a server dies.
    """

    def __init__(self, cluster: "ClusterSession", text: str,
                 options: QueryOptions, meta: dict,
                 query: ConjunctiveQuery) -> None:
        self._cluster = cluster
        self._text = text
        self._options = options
        self._meta = meta
        self._query = query
        self._closed = False

    @property
    def text(self) -> str:
        return self._text

    @property
    def algorithm(self) -> str:
        return self._meta["algorithm"]

    def run(self, options: Optional[QueryOptions] = None,
            **overrides) -> ClusterResultSet:
        if self._closed:
            raise PreparedError("this prepared handle is closed")
        opts = self._cluster.options(
            options if options is not None else self._options, **overrides
        )
        plan = self._cluster._plan_sync(self._query, self._text, opts)
        return ClusterResultSet(self._cluster, self._text, opts, plan,
                                dict(self._meta))

    def explain(self) -> DistExplain:
        return self._cluster.explain(self._text, self._options)

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "ClusterPreparedHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"ClusterPreparedHandle(text={self._text!r}, "
                f"algorithm={self.algorithm!r}, {state})")


class ClusterSession:
    """A connected cluster client with the local ``Session`` surface.

    Parameters
    ----------
    url:
        ``repro://h1:p1,h2:p2,...`` — the multi-host cluster grammar of
        :func:`~repro.net.client.parse_cluster_url`.
    options:
        Session-default :class:`QueryOptions`.  ``parallel`` here (or
        per call) fixes the shard count; by default every query runs
        one shard per currently-healthy server.  ``route="peer"`` makes
        every gather travel as one peer-coordinated ``cluster_*`` query
        to a single server (which must be started with ``--peers``),
        merged server-side.
    hedge_after:
        Seconds a shard may run before a duplicate is dispatched to a
        sibling server (first answer wins); ``None`` disables hedging.
    shard_deadline:
        Hard per-shard deadline in seconds; a shard that misses it is
        treated like a transport failure and re-routed.  ``None`` (the
        default) leaves shards bounded only by ``QueryOptions.timeout``
        server-side.
    retries / retry_backoff / connect_timeout / fetch_size / wire_encoding:
        Per-server resilience knobs, passed to each underlying
        :class:`~repro.net.client.AsyncRemoteSession`.
    """

    def __init__(self, url: str, *,
                 options: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 connect_timeout: float = 10.0,
                 hedge_after: Optional[float] = None,
                 shard_deadline: Optional[float] = None,
                 wire_encoding: Optional[str] = None) -> None:
        _validate_resilience_knobs(None, retries, retry_backoff)
        for name, value in (("hedge_after", hedge_after),
                            ("shard_deadline", shard_deadline)):
            if value is not None and (
                    isinstance(value, bool)
                    or not isinstance(value, (int, float)) or value <= 0):
                raise OptionsError(
                    f"{name} must be a positive number of seconds or "
                    f"None, got {value!r}"
                )
        self.url = url
        self.defaults = options if options is not None else QueryOptions()
        self.fetch_size = max(1, int(fetch_size))
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.connect_timeout = connect_timeout
        self.hedge_after = hedge_after
        self.shard_deadline = shard_deadline
        endpoints = parse_cluster_url(url)
        self._engine = GatherEngine(
            Topology([_endpoint_url(host, port)
                      for host, port in endpoints]),
            defaults=self.defaults, fetch_size=self.fetch_size,
            retries=self.retries, retry_backoff=self.retry_backoff,
            connect_timeout=connect_timeout, hedge_after=hedge_after,
            shard_deadline=shard_deadline, wire_encoding=wire_encoding,
            source="coordinator", peer_dispatch=False,
        )
        self.topology = self._engine.topology
        self._closed = False
        self._loop = _LoopThread()
        try:
            self._loop.call(self._engine.open_initial())
        except BaseException:
            # A failed constructor must not leak sockets or the loop
            # thread (mirrors the RemoteSession handshake discipline).
            self._closed = True
            try:
                self._loop.call(self._engine.close_sessions())
            except Exception:
                pass
            self._loop.close()
            raise

    # ------------------------------------------------------------------
    # Peer delegation (loop thread)
    # ------------------------------------------------------------------
    async def _peer_gather(self, kind: str, text: str, opts: QueryOptions,
                           meta: dict, trace_id: str):
        """Hand the whole query to one server's peer coordinator.

        The frame carries ``hop=0`` (fan out) and the session's own
        fleet as the ``peers`` list, so the merging server coordinates
        exactly the topology this client was configured with — no
        server-side ``--peers`` required.  If the merging peer dies
        mid-gather the *whole query* re-routes to a sibling peer:
        peer-coordinated gathers are idempotent reads, so a fresh merge
        elsewhere returns the identical answer.
        """
        peers = self._engine.peer_list()
        payload = _options_payload(opts)
        errors: List[Exception] = []
        for server in self._engine.candidates():
            try:
                session = await self._engine.session_for(server)
                if kind == "count":
                    body = await session._request(
                        "cluster_count", query=text, options=payload,
                        hop=0, peers=peers, trace_id=trace_id,
                    )
                    value = body["count"]
                else:
                    result_set = AsyncRemoteResultSet(
                        session, text, opts, dict(meta),
                        trace_id=trace_id,
                        open_op="cluster_cursor",
                        open_extra={"hop": 0, "peers": peers},
                    )
                    value = await result_set.fetchall()
                    body = dict(result_set.open_body)
                    trace = (result_set.server_stats or {}).get("trace")
                    if trace is not None:
                        body["trace"] = trace
            except _FAILOVER_ERRORS as error:
                self.topology.mark_down(server)
                errors.append(error)
                continue
            self.topology.mark_up(server)
            return value, self._peer_info(body, server, trace_id)
        raise errors[-1] if errors else NetworkError(
            "every server of the cluster is marked down"
        )

    @staticmethod
    def _peer_info(body: dict, server: ServerState,
                   trace_id: str) -> dict:
        """The peer's gather summary in client ``gather_info`` shape."""
        return {
            "trace": body.get("trace"),
            "trace_id": body.get("trace_id") or trace_id,
            "seconds": body.get("seconds"),
            "shard_map": body.get("shard_map") or {},
            "hedges": body.get("hedges", 0),
            "reroutes": body.get("reroutes", 0),
            "coordinator": server_label(server.url),
            "route": "peer",
        }

    # ------------------------------------------------------------------
    # Sync bridges
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise NetworkError("this cluster session is closed")

    def _plan_sync(self, query: ConjunctiveQuery, text: str,
                   opts: QueryOptions) -> DistPlan:
        self._check_open()
        return self._loop.call(self._engine.plan_for(query, text, opts))

    def _gather_rows(self, text: str, opts: QueryOptions,
                     plan: DistPlan, meta: dict,
                     trace_id: str) -> Tuple[List[Row], dict]:
        self._check_open()
        if opts.route == "peer":
            return self._loop.call(
                self._peer_gather("rows", text, opts, meta, trace_id)
            )
        return self._loop.call(
            self._engine.gather("rows", text, opts, plan, meta, trace_id)
        )

    def _gather_count(self, text: str, opts: QueryOptions,
                      plan: DistPlan, meta: dict,
                      trace_id: str) -> Tuple[int, dict]:
        self._check_open()
        if opts.route == "peer":
            return self._loop.call(
                self._peer_gather("count", text, opts, meta, trace_id)
            )
        return self._loop.call(
            self._engine.gather("count", text, opts, plan, meta, trace_id)
        )

    # ------------------------------------------------------------------
    # The Session surface
    # ------------------------------------------------------------------
    def options(self, options: Optional[QueryOptions] = None,
                **overrides) -> QueryOptions:
        """Resolve per-call options against the session defaults."""
        return QueryOptions.resolve(options, overrides,
                                    defaults=self.defaults)

    def run(self, query, options: Optional[QueryOptions] = None,
            **overrides) -> ClusterResultSet:
        """Plan a distributed execution; shards fly at first consumption.

        The plan probe (one ``run`` frame on a healthy server) runs
        eagerly so parse and options errors surface here, with exactly
        the single-server timing.  The client-side plan is computed
        either way — under ``route="peer"`` it is a preview (the
        merging server re-plans against its own health), but columns,
        algorithm, and shard count still describe the query.
        """
        self._check_open()
        opts = self.options(options, **overrides)
        text = str(query)
        meta, plan = self._loop.call(self._run_async(query, text, opts))
        return ClusterResultSet(self, text, opts, plan, meta)

    async def _run_async(self, query, text: str, opts: QueryOptions
                         ) -> Tuple[dict, DistPlan]:
        meta = await self._engine.on_any_server("run", {
            "query": text, "options": _options_payload(opts),
        })
        parsed = resolve_query(query, text)
        plan = await self._engine.plan_for(parsed, text, opts)
        return meta, plan

    def count(self, query, options: Optional[QueryOptions] = None,
              **overrides) -> int:
        """The number of answers — per-shard counts, summed client-side."""
        return self.run(query, options, **overrides).count()

    def prepare(self, query, options: Optional[QueryOptions] = None,
                **overrides) -> ClusterPreparedHandle:
        """Validate once, re-plan per run against current fleet health."""
        self._check_open()
        opts = self.options(options, **overrides)
        text = str(query)
        meta, parsed = self._loop.call(
            self._prepare_async(query, text, opts)
        )
        return ClusterPreparedHandle(self, text, opts, meta, parsed)

    async def _prepare_async(self, query, text: str, opts: QueryOptions
                             ) -> Tuple[dict, ConjunctiveQuery]:
        meta = await self._engine.on_any_server("run", {
            "query": text, "options": _options_payload(opts),
        })
        parsed = resolve_query(query, text)
        # Warm the statistics cache.
        await self._engine.query_info(text, parsed)
        return meta, parsed

    def explain(self, query, options: Optional[QueryOptions] = None,
                **overrides) -> DistExplain:
        """One server's plan report plus the distributed section.

        ``route`` is ignored here: the report always shows *this
        session's* distributed plan, which under ``route="peer"`` is
        what the merging server would compute for the same fleet.
        """
        self._check_open()
        opts = self.options(options, **overrides)
        text = str(query)
        return self._loop.call(self._explain_async(query, text, opts))

    async def _explain_async(self, query, text: str,
                             opts: QueryOptions) -> DistExplain:
        body = await self._engine.on_any_server("explain", {
            "query": text, "options": _options_payload(opts),
        })
        parsed = resolve_query(query, text)
        plan = await self._engine.plan_for(parsed, text, opts)
        if plan.scheme is not None:
            assignments = tuple(
                (cell, server.url)
                for cell, server in self.topology.assign(plan.cells)
            )
        else:
            assignments = ()
        return DistExplain(
            report=body["report"], rendered=body["rendered"], plan=plan,
            assignments=assignments,
            healthy_servers=len(self.topology.healthy()),
            total_servers=len(self.topology),
        )

    def stats(self) -> dict:
        """Topology health and per-server dispatch accounting (local —
        no wire traffic; per-server internals come from ``repro stats``
        against each server)."""
        return {
            "topology": self.topology.describe(),
            "client": {
                "hedge_after": self.hedge_after,
                "shard_deadline": self.shard_deadline,
                "retries": self.retries,
            },
        }

    def metrics(self) -> str:
        """One Prometheus text for the whole fleet.

        Every healthy server is scraped concurrently; each sample line
        gains a ``server="host:port"`` label so per-server series stay
        distinguishable after the merge, and the coordinator's own
        ``repro_fleet_*`` rollups (scrape latency, unreachable count,
        healthy/configured gauges) ride along unlabelled-by-server.
        """
        self._check_open()
        return self._loop.call(self._metrics_async())

    async def _metrics_async(self) -> str:
        registry = global_registry()
        loop = asyncio.get_running_loop()
        servers = self.topology.healthy()

        async def scrape(server: ServerState):
            label = server_label(server.url)
            started = loop.time()
            try:
                session = await self._engine.session_for(server)
                text = await session.metrics()
            except _FAILOVER_ERRORS:
                self.topology.mark_down(server)
                registry.counter("repro_fleet_unreachable_total").inc(
                    server=label,
                )
                return label, None
            registry.histogram("repro_fleet_scrape_seconds").observe(
                loop.time() - started, server=label,
            )
            return label, text

        scraped = await asyncio.gather(*(scrape(s) for s in servers))
        per_server = OrderedDict(
            (label, text)
            for label, text in sorted(scraped)
            if text is not None
        )
        gauge = registry.gauge("repro_fleet_servers")
        gauge.set(len(self.topology.healthy()), state="healthy")
        gauge.set(len(self.topology), state="configured")
        return merge_prometheus(per_server,
                                extra=fleet_rollup_text(registry))

    def events(self, limit: Optional[int] = None) -> List[dict]:
        """The fleet's flight recorder, merged and time-ordered.

        Pulls every healthy server's event ring and interleaves it with
        the coordinator's own gather events; each entry gains a
        ``server`` field naming where it was recorded.  Unreachable
        servers are skipped (and marked down) — a partial fleet still
        answers.
        """
        self._check_open()
        if limit is not None and (isinstance(limit, bool)
                                  or not isinstance(limit, int)
                                  or limit < 1):
            raise OptionsError(
                f"events limit must be a positive int or None, "
                f"got {limit!r}"
            )
        return self._loop.call(self._events_async(limit))

    async def _events_async(self, limit: Optional[int]) -> List[dict]:
        merged: List[dict] = []

        async def pull(server: ServerState):
            label = server_label(server.url)
            try:
                session = await self._engine.session_for(server)
                events = await session.events(limit)
            except _FAILOVER_ERRORS:
                self.topology.mark_down(server)
                return
            for event in events:
                # In-process server threads share this process's global
                # ring, so their pull would echo our own coordinator
                # events back — keep only what the server itself wrote.
                if event.get("source") != "coordinator":
                    merged.append(dict(event, server=label))

        await asyncio.gather(*(pull(s) for s in self.topology.healthy()))
        for event in global_events().snapshot(limit):
            if event.get("source") == "coordinator":
                merged.append(dict(event, server="coordinator"))
        merged.sort(key=lambda event: event.get("ts") or 0.0)
        if limit is not None and limit >= 0:
            merged = merged[-limit:] if limit else []
        return merged

    def close(self) -> None:
        """Close every server session and stop the loop; idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            self._loop.call(self._engine.close_sessions())
        finally:
            self._loop.close()

    def __enter__(self) -> "ClusterSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        up = len(self.topology.healthy())
        return (f"ClusterSession({self.url!r}, {state}, "
                f"{up}/{len(self.topology)} healthy)")
