"""The side-agnostic distributed gather engine.

:class:`GatherEngine` is the core that PR 8's client-side coordinator
was welded to: shard dispatch over multiplexed
:class:`~repro.net.client.AsyncRemoteSession` sockets, per-shard
deadlines, hedged re-dispatch, mid-gather re-route, merge under the
:mod:`repro.dist.merge` laws, and trace stitching.  It is pure asyncio
and runs wherever an event loop already lives:

* :class:`~repro.dist.coordinator.ClusterSession` drives it from a
  private loop thread — the classic client-side coordinator
  (``route="client"``).
* :class:`PeerCoordinator` drives it from a
  :class:`~repro.net.server.ReproServer`'s own loop — any server with a
  ``--peers`` topology can accept a whole cluster query
  (``cluster_run`` / ``cluster_count`` / ``cluster_cursor`` ops),
  sub-shard it across the fleet, and merge *server-side*, so only the
  merged answer crosses the final hop to the client
  (``route="peer"``).

Loop avoidance: when the engine runs inside a peer
(``peer_dispatch=True``), every sub-shard it dispatches goes out as a
``cluster_*`` frame with ``hop=1``; receiving servers refuse to
re-fan-out a frame with ``hop >= 1`` and execute the shard locally, so
a cluster query visits the fleet exactly once no matter how the peer
lists are wired.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.options import QueryOptions
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.parser import parse_query
from repro.datalog.query import ConjunctiveQuery
from repro.errors import (
    CursorError,
    NetworkError,
    OptionsError,
    ProtocolError,
    ReproError,
)
from repro.exec.partitioner import Cell, PartitionScheme
from repro.net.client import (
    DEFAULT_FETCH_SIZE,
    DEFAULT_RETRIES,
    DEFAULT_RETRY_BACKOFF,
    AsyncRemoteResultSet,
    AsyncRemoteSession,
    _options_payload,
    parse_cluster_url,
)
from repro.obs.events import global_events
from repro.obs.fleet import ShardRecord, server_label, stitch_trace
from repro.obs.metrics import global_registry
from repro.obs.trace import new_trace_id
from repro.dist.merge import merge_counts, merge_rows, straggler_ratio
from repro.dist.planner import DistPlan, plan_query
from repro.dist.topology import ServerState, Topology

#: Errors that mean "this server (or this stream) is unusable" — the
#: only ones that mark a server down and re-route its shards.  Every
#: other ReproError (parse, options, timeout, execution) is the query's
#: own fault and must propagate with single-server fidelity.
_FAILOVER_ERRORS = (NetworkError, ProtocolError, CursorError)

#: Bound on the per-query planning-info cache (β-acyclicity + sizes).
_INFO_CACHE_SIZE = 128


def _endpoint_url(host: str, port: int) -> str:
    """One endpoint back to canonical single-server URL form."""
    if ":" in host:  # IPv6 literal — re-bracket
        return f"repro://[{host}]:{port}"
    return f"repro://{host}:{port}"


def parse_peers(entries: Sequence[str]) -> List[str]:
    """``host:port`` peer entries → canonical ``repro://`` URLs.

    This is the one grammar for both ``repro server --peers`` and the
    ``peers`` field of a ``cluster_*`` wire frame; it reuses the strict
    cluster-URL parser, so trailing commas, whitespace, and duplicate
    servers fail with the same errors a bad ``--cluster`` URL would.
    """
    if not entries:
        raise OptionsError(
            "peer list is empty; configure the fleet with "
            "--peers h1:p1,h2:p2 or send a non-empty 'peers' list"
        )
    cluster = "repro://" + ",".join(str(entry) for entry in entries)
    return [_endpoint_url(host, port)
            for host, port in parse_cluster_url(cluster)]


@dataclass(frozen=True)
class _QueryInfo:
    """Locally derived planning facts for one query text."""

    query: ConjunctiveQuery
    beta_acyclic: bool
    sizes: Dict[int, int]  # atom index -> relation cardinality


@dataclass(frozen=True)
class GatherContext:
    """Distributed trace context threaded through one gather.

    ``trace_id`` is always generated — even untraced queries carry it so
    server-side flight-recorder events correlate; the full span stitch
    only happens when ``traced`` (``QueryOptions.trace``) is on.
    """

    trace_id: str
    traced: bool


def resolve_query(query: object, text: str) -> ConjunctiveQuery:
    if isinstance(query, ConjunctiveQuery):
        return query
    inner = getattr(query, "query", None)  # PreparedQuery duck-type
    if isinstance(inner, ConjunctiveQuery):
        return inner
    return parse_query(text)


class GatherEngine:
    """Shard dispatch / hedge / re-route / merge over one topology.

    Parameters
    ----------
    topology:
        The fleet this engine fans out over; health state lives here.
    defaults:
        Session-default :class:`QueryOptions` handed to each underlying
        :class:`AsyncRemoteSession`.
    hedge_after / shard_deadline:
        Straggler policy — duplicate a shard to a sibling after
        ``hedge_after`` seconds (first answer wins), fail-and-re-route a
        shard that misses ``shard_deadline``.
    retries / retry_backoff / connect_timeout / fetch_size / wire_encoding:
        Per-server resilience knobs for the underlying sessions.
    source:
        The flight-recorder source tag for this engine's gather events:
        ``"coordinator"`` client-side, ``"peer"`` server-side.
    peer_dispatch:
        When true, sub-shards go out as ``cluster_count`` /
        ``cluster_cursor`` frames stamped ``hop=1`` and carrying the
        peer list, so the receiving server executes the shard locally
        instead of re-fanning-out (loop avoidance).
    statistics:
        Optional async ``text -> explain-report body | None`` used for
        share weighting.  ``None`` means "ask any server over the wire"
        (the client-side default); a peer passes a local-service probe
        so planning costs no extra network hop.
    """

    def __init__(self, topology: Topology, *,
                 defaults: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 connect_timeout: float = 10.0,
                 hedge_after: Optional[float] = None,
                 shard_deadline: Optional[float] = None,
                 wire_encoding: Optional[str] = None,
                 source: str = "coordinator",
                 peer_dispatch: bool = False,
                 statistics: Optional[
                     Callable[[str], Awaitable[Optional[dict]]]
                 ] = None) -> None:
        self.topology = topology
        self.defaults = defaults if defaults is not None else QueryOptions()
        self.fetch_size = max(1, int(fetch_size))
        self.retries = int(retries)
        self.retry_backoff = float(retry_backoff)
        self.connect_timeout = connect_timeout
        self.hedge_after = hedge_after
        self.shard_deadline = shard_deadline
        self.wire_encoding = wire_encoding
        self.source = source
        self.peer_dispatch = peer_dispatch
        self._statistics = statistics
        self._sessions: Dict[str, AsyncRemoteSession] = {}
        self._session_locks: Dict[str, asyncio.Lock] = {}
        self._info_cache: "OrderedDict[str, _QueryInfo]" = OrderedDict()

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    async def open_initial(self) -> None:
        """Dial every configured server; survivors define initial health.

        A fleet with *some* dead servers comes up degraded rather than
        failing — only an entirely unreachable fleet is an error.
        """
        errors: List[ReproError] = []
        for server in self.topology.servers:
            try:
                await self.session_for(server)
            except _FAILOVER_ERRORS as error:
                self.topology.mark_down(server)
                errors.append(error)
        if not self.topology.healthy():
            raise NetworkError(
                f"no server of the cluster is reachable "
                f"(first failure: {errors[0]})"
            )

    async def session_for(self, server: ServerState) -> AsyncRemoteSession:
        """The (lazily revived) multiplexed session for one server."""
        lock = self._session_locks.setdefault(server.url, asyncio.Lock())
        async with lock:
            session = self._sessions.get(server.url)
            if session is not None and not session._closed:
                return session
            session = AsyncRemoteSession(
                server.url, options=self.defaults,
                fetch_size=self.fetch_size, retries=self.retries,
                retry_backoff=self.retry_backoff,
                connect_timeout=self.connect_timeout,
                wire_encoding=self.wire_encoding,
            )
            await session._open()
            self._sessions[server.url] = session
            return session

    def candidates(self) -> List[ServerState]:
        """Failover order: healthy servers first, then down ones.

        Down servers ride at the back so a restarted server is probed
        (and revived) only after every known-good option failed —
        self-healing without a heartbeat.
        """
        up = [s for s in self.topology.servers if s.healthy]
        down = [s for s in self.topology.servers if not s.healthy]
        return up + down

    async def on_any_server(self, op: str, params: dict) -> dict:
        """One idempotent request with whole-fleet failover.

        Transport failures mark the server down and move on; any other
        server-reported error propagates untouched (it would fail the
        same way everywhere).
        """
        errors: List[ReproError] = []
        for server in self.candidates():
            try:
                session = await self.session_for(server)
                body = await session._request(op, **params)
            except _FAILOVER_ERRORS as error:
                self.topology.mark_down(server)
                errors.append(error)
                continue
            self.topology.mark_up(server)
            return body
        raise errors[-1] if errors else NetworkError(
            "every server of the cluster is marked down"
        )

    async def close_sessions(self) -> None:
        for session in list(self._sessions.values()):
            try:
                await session.close()
            except (NetworkError, ProtocolError):
                pass
        self._sessions.clear()

    def peer_list(self) -> List[str]:
        """The fleet as ``host:port`` labels — what rides in a
        ``cluster_*`` frame's ``peers`` field."""
        return [server_label(server.url)
                for server in self.topology.servers]

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    async def query_info(self, text: str,
                         query: ConjunctiveQuery) -> _QueryInfo:
        """β-acyclicity (local) + relation sizes (one Explain probe).

        Sizes feed share weighting only — stale or missing statistics
        degrade the grid's balance, never the answer — so they are
        cached per query text and fetched with ``algorithm="auto"``
        (independent of the caller's algorithm choice).
        """
        info = self._info_cache.get(text)
        if info is not None:
            self._info_cache.move_to_end(text)
            return info
        beta = Hypergraph.of_query(query).is_beta_acyclic()
        sizes: Dict[int, int] = {}
        if self._statistics is not None:
            body = await self._statistics(text)
        else:
            try:
                body = await self.on_any_server("explain", {
                    "query": text,
                    "options": _options_payload(QueryOptions()),
                })
            except _FAILOVER_ERRORS:
                raise
            except ReproError:
                body = None  # statistics are optional; planning degrades
        if body is not None:
            cardinality = {
                estimate["name"]: estimate["cardinality"]
                for estimate in body["report"].get("relation_estimates", [])
            }
            for index, atom in enumerate(query.atoms):
                if atom.name in cardinality:
                    sizes[index] = cardinality[atom.name]
        info = _QueryInfo(query=query, beta_acyclic=beta, sizes=sizes)
        self._info_cache[text] = info
        while len(self._info_cache) > _INFO_CACHE_SIZE:
            self._info_cache.popitem(last=False)
        return info

    async def plan_for(self, query: ConjunctiveQuery, text: str,
                       opts: QueryOptions) -> DistPlan:
        info = await self.query_info(text, query)
        if opts.parallel is not None:
            shards = opts.parallel
        else:
            shards = max(1, len(self.topology.healthy()))
        if not query.variables:
            shards = 1  # a variable-free query cannot partition; proxy it
        return plan_query(
            info.query, shards=shards, mode=opts.partition_mode,
            beta_acyclic=info.beta_acyclic, sizes=info.sizes,
        )

    # ------------------------------------------------------------------
    # Dispatch / gather / merge
    # ------------------------------------------------------------------
    async def gather(self, kind: str, text: str, opts: QueryOptions,
                     plan: DistPlan, meta: dict, trace_id: str):
        """Fan out, gather, merge — and account for what happened.

        Returns ``(value, info)`` where ``info`` carries the stitched
        trace (when tracing is on), the shard → server map, and the
        hedge / re-route counts; the same facts land on the flight
        recorder as one event per gather (tagged with this engine's
        ``source``), success or failure.
        """
        loop = asyncio.get_running_loop()
        started = loop.time()
        ctx = GatherContext(trace_id=trace_id, traced=bool(opts.trace))
        records: List[ShardRecord] = []
        scheme_key = plan.scheme.key() if plan.scheme is not None \
            else "serial"
        merge_interval: Optional[Tuple[float, float]] = None
        try:
            if plan.scheme is None:
                value = await self._proxy(kind, text, opts, meta, ctx,
                                          records)
            else:
                # Shards run serially server-side: the grid is already
                # the parallelism, and n_servers × n_cores of
                # over-subscription would thrash the very fleet this
                # layer exists to scale.
                shard_opts = opts.merged(parallel=1)
                assignments = self.topology.assign(plan.cells)
                records = [
                    ShardRecord(index=index, span_id=new_trace_id(),
                                cell=tuple(cell))
                    for index, (cell, _) in enumerate(assignments)
                ]
                tasks = [
                    asyncio.ensure_future(self._execute_shard(
                        kind, text, shard_opts, plan.scheme, cell,
                        server, meta, ctx, record,
                    ))
                    for (cell, server), record in zip(assignments, records)
                ]
                outcomes = await asyncio.gather(
                    *tasks, return_exceptions=True
                )
                failure = next(
                    (o for o in outcomes if isinstance(o, BaseException)),
                    None,
                )
                if failure is not None:
                    raise failure
                payloads = [payload for payload, _ in outcomes]
                seconds = [elapsed for _, elapsed in outcomes]
                ratio = straggler_ratio(seconds)
                if ratio is not None:
                    global_registry().histogram(
                        "repro_dist_straggler_ratio").observe(ratio)
                merge_started = loop.time()
                if kind == "count":
                    value = merge_counts(payloads, opts.limit)
                else:
                    value = merge_rows(payloads, opts.limit)
                merge_interval = (merge_started, loop.time())
        except BaseException as error:
            now = loop.time()
            self._finalize_records(records, now)
            if isinstance(error, Exception):
                self._record_flight(
                    kind, text, ctx, records, started, now, meta,
                    outcome="timeout"
                    if "Timeout" in type(error).__name__ else "error",
                    error=str(error),
                )
            raise
        finished = loop.time()
        self._finalize_records(records, finished)
        info = self._gather_summary(
            kind, ctx, records, started, finished, merge_interval,
            scheme_key, meta,
        )
        self._record_flight(kind, text, ctx, records, started, finished,
                            meta, outcome="ok")
        return value, info

    @staticmethod
    def _finalize_records(records: Sequence[ShardRecord],
                          now: float) -> None:
        """Close out attempts the gather abandoned (hedge losers whose
        cancellation has not been delivered yet, failed fan-outs)."""
        for record in records:
            for attempt in record.attempts:
                attempt.finish(now, "cancelled")

    @staticmethod
    def _shard_map(records: Sequence[ShardRecord]) -> Dict[str, str]:
        return {str(record.index): server_label(record.server)
                for record in records if record.server}

    def _gather_summary(self, kind: str, ctx: GatherContext,
                        records: Sequence[ShardRecord], started: float,
                        finished: float,
                        merge_interval: Optional[Tuple[float, float]],
                        scheme_key: str, meta: dict) -> dict:
        trace = None
        if ctx.traced:
            annotations = {"mode": kind, "scheme": scheme_key,
                           "source": self.source}
            if meta.get("algorithm"):
                annotations["algorithm"] = meta["algorithm"]
            trace = stitch_trace(
                trace_id=ctx.trace_id, started=started, finished=finished,
                shards=records,
                merge_start=merge_interval[0] if merge_interval else None,
                merge_end=merge_interval[1] if merge_interval else None,
                annotations=annotations,
            )
        return {
            "trace": trace,
            "trace_id": ctx.trace_id,
            "seconds": round(finished - started, 6),
            "shard_map": self._shard_map(records),
            "hedges": sum(record.hedges for record in records),
            "reroutes": sum(record.reroutes for record in records),
        }

    def _record_flight(self, kind: str, text: str, ctx: GatherContext,
                       records: Sequence[ShardRecord], started: float,
                       finished: float, meta: dict, *, outcome: str,
                       error: Optional[str] = None) -> None:
        global_events().record(
            source=self.source, trace_id=ctx.trace_id, query=text,
            mode=kind, outcome=outcome, error=error,
            seconds=round(max(0.0, finished - started), 6),
            algorithm=meta.get("algorithm"),
            shards=len(records),
            shard_map=self._shard_map(records) or None,
            hedges=sum(record.hedges for record in records),
            reroutes=sum(record.reroutes for record in records),
        )

    def _dispatch_wire(self, shard_wire: Optional[dict]) -> dict:
        """Frame extras for one sub-request under this engine's side.

        A peer-side engine stamps every dispatch ``hop=1`` (and names
        the fleet) so the receiving server executes the shard locally
        instead of re-fanning-out; the client-side engine sends the
        classic single-server ops, which carry no hop at all.
        """
        extras: dict = {}
        if shard_wire is not None:
            extras["shard"] = shard_wire
        if self.peer_dispatch:
            extras["hop"] = 1
            extras["peers"] = self.peer_list()
        return extras

    def _ops_for(self, kind: str) -> Tuple[str, str]:
        """(count op, cursor op) for sub-dispatch under this side."""
        if self.peer_dispatch:
            return "cluster_count", "cluster_cursor"
        return "count", "cursor"

    async def _proxy(self, kind: str, text: str, opts: QueryOptions,
                     meta: dict, ctx: GatherContext,
                     records: List[ShardRecord]):
        """Single-shard path: the whole query on one server, failover."""
        payload = _options_payload(opts)
        loop = asyncio.get_running_loop()
        record = ShardRecord(index=0, span_id=new_trace_id())
        records.append(record)
        errors: List[ReproError] = []
        attempt_kind = "primary"
        count_op, cursor_op = self._ops_for(kind)
        for server in self.candidates():
            attempt = record.new_attempt(server.url, attempt_kind,
                                         loop.time())
            span_wire = {"id": record.span_id, "shard": record.index,
                         "attempt": attempt.tag}
            extras = self._dispatch_wire(None)
            try:
                session = await self.session_for(server)
                if kind == "count":
                    body = await session._request(
                        count_op, query=text, options=payload,
                        trace_id=ctx.trace_id, span=span_wire, **extras,
                    )
                    attempt.server_trace = body.get("trace")
                    value = body["count"]
                else:
                    result_set = AsyncRemoteResultSet(
                        session, text, opts, dict(meta),
                        trace_id=ctx.trace_id, span=span_wire,
                        open_op=cursor_op, open_extra=extras or None,
                    )
                    value = await result_set.fetchall()
                    attempt.server_trace = result_set.server_trace
            except _FAILOVER_ERRORS as error:
                attempt.finish(loop.time(), "error", str(error))
                self.topology.mark_down(server)
                errors.append(error)
                attempt_kind = "reroute"
                continue
            except ReproError as error:
                attempt.finish(loop.time(), "error", str(error))
                raise
            attempt.finish(loop.time(), "ok")
            record.server = server.url
            self.topology.mark_up(server)
            return value
        raise errors[-1] if errors else NetworkError(
            "every server of the cluster is marked down"
        )

    async def _execute_shard(self, kind: str, text: str,
                             opts: QueryOptions, scheme: PartitionScheme,
                             cell: Cell, server: ServerState, meta: dict,
                             ctx: GatherContext, record: ShardRecord):
        """One shard to completion: dispatch, hedge, re-route, account."""
        registry = global_registry()
        shard_counter = registry.counter("repro_dist_shards_total")
        shard_wire = {"scheme": scheme.to_wire(), "cell": list(cell)}
        shard_counter.inc(event="dispatched")
        loop = asyncio.get_running_loop()
        tried: set = set()
        attempt_kind = "primary"
        while True:
            tried.add(server.url)
            server.dispatched += 1
            started = loop.time()
            try:
                result, attempt = await self._attempt_shard(
                    kind, text, opts, shard_wire, server, meta, ctx,
                    record, attempt_kind,
                )
            except _FAILOVER_ERRORS as error:
                self.topology.mark_down(server)
                sibling = self.topology.sibling(server, exclude=tried)
                if sibling is None:
                    shard_counter.inc(event="failed")
                    raise NetworkError(
                        f"shard {tuple(cell)} failed on every reachable "
                        f"server (last, from {server.url}: {error})"
                    ) from error
                shard_counter.inc(event="rerouted")
                server = sibling
                attempt_kind = "reroute"
                continue
            elapsed = loop.time() - started
            registry.histogram("repro_dist_server_seconds").observe(
                elapsed, server=attempt.server,
            )
            record.server = attempt.server
            self.topology.mark_up(server)
            return result, elapsed

    async def _attempt_shard(self, kind: str, text: str,
                             opts: QueryOptions, shard_wire: dict,
                             server: ServerState, meta: dict,
                             ctx: GatherContext, record: ShardRecord,
                             attempt_kind: str):
        """One dispatch attempt, bounded by the shard deadline."""
        if self.shard_deadline is None:
            return await self._hedged(kind, text, opts, shard_wire,
                                      server, meta, ctx, record,
                                      attempt_kind)
        try:
            return await asyncio.wait_for(
                self._hedged(kind, text, opts, shard_wire, server, meta,
                             ctx, record, attempt_kind),
                self.shard_deadline,
            )
        except asyncio.TimeoutError:
            raise NetworkError(
                f"shard on {server.url} missed its "
                f"{self.shard_deadline}s deadline"
            ) from None

    async def _hedged(self, kind: str, text: str, opts: QueryOptions,
                      shard_wire: dict, server: ServerState, meta: dict,
                      ctx: GatherContext, record: ShardRecord,
                      attempt_kind: str):
        """Primary dispatch with hedged re-dispatch of stragglers.

        After ``hedge_after`` seconds with no answer, the same shard is
        duplicated to a sibling; the first success wins and the loser is
        cancelled (its server-side cursor, if any, falls to the cursor
        registry's idle expiry).  Safe because shards are disjoint and
        shard reads are idempotent — the duplicate computes the exact
        same rows.  The hedge reuses the shard's span id with a distinct
        attempt tag, so both servers' logs name the same logical shard.
        """
        primary = asyncio.ensure_future(
            self._shard_once(kind, text, opts, shard_wire, server, meta,
                             ctx, record, attempt_kind)
        )
        if self.hedge_after is None:
            return await primary
        done, _ = await asyncio.wait({primary}, timeout=self.hedge_after)
        if done:
            return primary.result()
        sibling = self.topology.sibling(server)
        if sibling is None:
            return await primary
        global_registry().counter(
            "repro_dist_shards_total").inc(event="hedged")
        hedge = asyncio.ensure_future(
            self._shard_once(kind, text, opts, shard_wire, sibling, meta,
                             ctx, record, "hedge")
        )
        pending = {primary, hedge}
        first_error: Optional[BaseException] = None
        try:
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED,
                )
                for task in done:
                    if task.exception() is None:
                        return task.result()
                    if first_error is None:
                        first_error = task.exception()
            raise first_error
        finally:
            for task in pending:
                task.cancel()

    async def _shard_once(self, kind: str, text: str, opts: QueryOptions,
                          shard_wire: dict, server: ServerState,
                          meta: dict, ctx: GatherContext,
                          record: ShardRecord, attempt_kind: str):
        """One shard request on one server, no retries beyond the
        session's own idempotent-op replay.  Returns ``(value, attempt)``
        so the caller knows which dispatch actually answered."""
        loop = asyncio.get_running_loop()
        attempt = record.new_attempt(server.url, attempt_kind, loop.time())
        span_wire = {"id": record.span_id, "shard": record.index,
                     "attempt": attempt.tag}
        count_op, cursor_op = self._ops_for(kind)
        extras = self._dispatch_wire(shard_wire)
        try:
            session = await self.session_for(server)
            if kind == "count":
                body = await session._request(
                    count_op, query=text, options=_options_payload(opts),
                    trace_id=ctx.trace_id, span=span_wire, **extras,
                )
                attempt.server_trace = body.get("trace")
                value = body["count"]
            else:
                result_set = AsyncRemoteResultSet(
                    session, text, opts, dict(meta),
                    trace_id=ctx.trace_id, span=span_wire,
                    open_op=cursor_op, open_extra=extras or None,
                )
                value = await result_set.fetchall()
                attempt.server_trace = result_set.server_trace
        except asyncio.CancelledError:
            attempt.finish(loop.time(), "cancelled")
            raise
        except ReproError as error:
            attempt.finish(loop.time(), "error", str(error))
            raise
        attempt.finish(loop.time(), "ok")
        return value, attempt


class PeerCoordinator:
    """A server-side front end over :class:`GatherEngine`.

    Lives inside a :class:`~repro.net.server.ReproServer` and runs on
    the server's own event loop — no extra thread.  A ``cluster_*``
    frame with ``hop=0`` lands here: the query is planned against the
    *local* service (plan cache and statistics, no extra network hop),
    sub-sharded across the configured peers with ``hop=1``, and merged
    server-side, so only the merged answer crosses back to the client.

    The peer list may (and normally does) include this server itself —
    its own shards just loop back over TCP like anyone else's, which
    keeps the topology uniform and the code path single.
    """

    def __init__(self, service, peers: Sequence[str], *,
                 defaults: Optional[QueryOptions] = None,
                 fetch_size: int = DEFAULT_FETCH_SIZE,
                 retries: int = DEFAULT_RETRIES,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 connect_timeout: float = 10.0,
                 hedge_after: Optional[float] = None,
                 shard_deadline: Optional[float] = None,
                 wire_encoding: Optional[str] = None) -> None:
        self.service = service
        self.peers = tuple(peers)
        urls = parse_peers(self.peers)
        self.engine = GatherEngine(
            Topology(urls), defaults=defaults, fetch_size=fetch_size,
            retries=retries, retry_backoff=retry_backoff,
            connect_timeout=connect_timeout, hedge_after=hedge_after,
            shard_deadline=shard_deadline, wire_encoding=wire_encoding,
            source="peer", peer_dispatch=True,
            statistics=self._statistics,
        )
        self._opened = False

    async def _call(self, fn):
        """Run blocking service work on the service's worker pool."""
        return await asyncio.wrap_future(self.service.pool.submit(fn))

    async def _statistics(self, text: str) -> Optional[dict]:
        """Share-weighting statistics from the local service.

        Failure degrades the grid's balance, never the answer, so any
        query-level error collapses to "no statistics".
        """
        def probe():
            report = self.service.session.explain(text)
            return {"report": report.as_dict()}

        try:
            return await self._call(probe)
        except ReproError:
            return None

    async def _ensure_open(self) -> None:
        if not self._opened:
            await self.engine.open_initial()
            self._opened = True

    async def _plan_probe(self, text: str, options: dict):
        """Plan the query against the local service: validates text and
        options with single-server fidelity and yields the meta the
        client's ``run`` response mirrors."""
        def plan():
            opts = self.service.session.options(**dict(options or {}))
            result_set = self.service.session.run(text, opts)
            return opts, result_set

        opts, result_set = await self._call(plan)
        meta = {
            "columns": list(result_set.columns),
            "algorithm": result_set.algorithm,
            "requested_algorithm":
                result_set.plan.prepared.requested_algorithm,
            "plan_cached": result_set.stats.plan_cached,
        }
        query = resolve_query(result_set.plan.prepared, text)
        return opts, meta, query

    async def describe(self, text: str, options: dict) -> dict:
        """The ``cluster_run`` body: plan-probe meta plus the
        distributed shape this fleet would use."""
        await self._ensure_open()
        opts, meta, query = await self._plan_probe(text, options)
        plan = await self.engine.plan_for(query, text, opts)
        global_registry().counter("repro_peer_total").inc(event="plan")
        scheme = plan.scheme
        return dict(
            meta,
            shards=plan.shards,
            partitioning=scheme.key() if scheme is not None else "serial",
            route="peer",
            fanout=True,
        )

    async def gather(self, kind: str, text: str, options: dict,
                     trace_id: Optional[str] = None):
        """Plan locally, fan out with ``hop=1``, merge server-side.

        Returns ``(value, info, meta, plan)`` — ``info`` is the engine's
        gather summary (stitched trace included when tracing is on, with
        the client's trace id adopted so the merge subtree lands under
        the client's query span).
        """
        await self._ensure_open()
        opts, meta, query = await self._plan_probe(text, options)
        plan = await self.engine.plan_for(query, text, opts)
        tid = trace_id if isinstance(trace_id, str) and trace_id \
            else new_trace_id()
        value, info = await self.engine.gather(
            kind, text, opts, plan, meta, tid,
        )
        global_registry().counter("repro_peer_total").inc(event="gather")
        return value, info, meta, plan

    async def close(self) -> None:
        await self.engine.close_sessions()
