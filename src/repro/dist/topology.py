""":class:`Topology` — the cluster's server list and per-server health.

The coordinator's view of the fleet is deliberately simple: an ordered
ring of servers, each either *up* or *down*.  Shards are dealt round-robin
over the healthy ring; when a dispatch fails with a transport error the
server is marked down and the shard re-routes to the next healthy sibling
(degraded mode — a dead server costs latency, never the answer, as long
as one server survives).  A later successful exchange marks the server
back up, so a restarted server rejoins the rotation without any explicit
administration.

Health here is *observed*, not probed: there is no background
heartbeat.  The first request after a server dies pays the discovery
cost (a connect or send failure), which is exactly the retry machinery's
price anyway — and it keeps the topology free of timers and threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import NetworkError
from repro.exec.partitioner import Cell


@dataclass
class ServerState:
    """One server of the cluster, with its observed health."""

    url: str
    index: int          # position in the configured ring (stable)
    healthy: bool = True
    failures: int = 0   # transport failures observed (lifetime)
    dispatched: int = 0  # shards this server was asked to run

    def describe(self) -> dict:
        return {
            "url": self.url,
            "healthy": self.healthy,
            "failures": self.failures,
            "dispatched": self.dispatched,
        }


class Topology:
    """An ordered ring of servers with observed per-server health.

    The configured order is stable for the lifetime of the session —
    shard → server assignment is deterministic given the same set of
    healthy servers, which keeps distributed runs reproducible and the
    Explain output honest.
    """

    def __init__(self, urls: Sequence[str]) -> None:
        if not urls:
            raise NetworkError("a cluster topology needs at least one server")
        if len(set(urls)) != len(urls):
            raise NetworkError(
                f"cluster URL names the same server twice: {list(urls)!r}"
            )
        self.servers: Tuple[ServerState, ...] = tuple(
            ServerState(url=url, index=index)
            for index, url in enumerate(urls)
        )

    def __len__(self) -> int:
        return len(self.servers)

    def healthy(self) -> List[ServerState]:
        """The currently-up servers, in ring order."""
        return [server for server in self.servers if server.healthy]

    def require_healthy(self) -> List[ServerState]:
        up = self.healthy()
        if not up:
            raise NetworkError(
                f"every server of the cluster is marked down: "
                f"{[s.url for s in self.servers]}"
            )
        return up

    def mark_down(self, server: ServerState) -> None:
        server.healthy = False
        server.failures += 1

    def mark_up(self, server: ServerState) -> None:
        server.healthy = True

    def assign(self, cells: Sequence[Cell]
               ) -> List[Tuple[Cell, ServerState]]:
        """Deal the shard cells round-robin over the healthy ring.

        With ``shards == len(healthy)`` every server gets exactly one
        shard; with more shards than servers the deal wraps, so load
        stays within one shard of even.  Pure — dispatch accounting is
        the coordinator's job, so Explain can preview an assignment
        without skewing the stats.
        """
        up = self.require_healthy()
        return [
            (cell, up[position % len(up)])
            for position, cell in enumerate(cells)
        ]

    def sibling(self, server: ServerState,
                exclude: Iterable[str] = ()) -> Optional[ServerState]:
        """The next healthy server after ``server`` in ring order.

        ``exclude`` names servers already tried for this shard; ``None``
        when no healthy alternative remains.  Ring order (rather than
        "first healthy") spreads re-routed and hedged shards over the
        survivors instead of piling them all onto server 0.
        """
        excluded = set(exclude)
        excluded.add(server.url)
        total = len(self.servers)
        for step in range(1, total + 1):
            candidate = self.servers[(server.index + step) % total]
            if candidate.healthy and candidate.url not in excluded:
                return candidate
        return None

    def describe(self) -> dict:
        """A JSON-friendly snapshot (surfaced by ``ClusterSession.stats``)."""
        return {
            "servers": [server.describe() for server in self.servers],
            "healthy": len(self.healthy()),
            "total": len(self.servers),
        }

    def __repr__(self) -> str:
        up = len(self.healthy())
        return f"Topology({up}/{len(self.servers)} healthy)"
