"""Merging per-shard answers: disjointness does the heavy lifting.

Both partitioning schemes route every output binding to exactly one
grid cell (hash: the bucket of the split attribute; HyperCube: the one
cell consistent with every grid attribute's hash), so the distributed
merge needs no deduplication, no sorting, and no cross-shard state:

* counts **sum** — each answer is counted on exactly one shard;
* rows **concatenate** — gathering in deterministic cell order makes
  the merged row stream reproducible run to run.

``limit`` composes with pushdown: the coordinator sends the limit to
every shard (no shard streams more than the caller can consume) and
clamps the concatenation, since Σ min(cᵢ, L) can exceed L while
min(Σ cᵢ, L) == min(Σ min(cᵢ, L), L) — the clamp is exact.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.api.result import Row


def merge_counts(counts: Iterable[int],
                 limit: Optional[int] = None) -> int:
    """Total answers across disjoint shards, clamped to ``limit``.

    Each per-shard count is itself limit-clamped by pushdown, so the
    sum can overshoot; the clamp restores exactly ``min(total, limit)``.
    """
    total = sum(counts)
    if limit is not None:
        total = min(total, limit)
    return total


def merge_rows(pages: Iterable[Sequence[Row]],
               limit: Optional[int] = None) -> List[Row]:
    """Concatenate disjoint per-shard answers, clamped to ``limit``."""
    merged: List[Row] = []
    for page in pages:
        if limit is not None:
            remaining = limit - len(merged)
            if remaining <= 0:
                break
            merged.extend(page[:remaining])
        else:
            merged.extend(page)
    return merged


def straggler_ratio(seconds: Sequence[float]) -> Optional[float]:
    """Slowest shard over the median shard — the tail-latency signal.

    A ratio near 1 means balanced shards; a large ratio means one hot
    shard gated the gather (the skew that share-sizing and hedging
    exist to fight).  ``None`` when fewer than two shards ran or the
    median is not positive (degenerate timings carry no signal).
    """
    if len(seconds) < 2:
        return None
    ordered = sorted(seconds)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        median = ordered[middle]
    else:
        median = (ordered[middle - 1] + ordered[middle]) / 2.0
    if median <= 0.0:
        return None
    return ordered[-1] / median
