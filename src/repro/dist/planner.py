"""Skew-aware distributed planning: grid choice, share sizing, Explain.

The coordinator reuses the single-machine partitioning machinery
(:mod:`repro.exec.partitioner`) but makes one distributed-specific
refinement: **share sizing**.  The HyperCube/shares result says the
per-axis bucket counts ``p_v`` should satisfy ``p_v ∝ N^{w_v/Σw}`` where
the weight ``w_v`` of attribute ``v`` aggregates the (log-scaled) sizes
of the relations that bind it, weighted by the AGM fractional edge
cover ``x_A`` — exactly the exponents :mod:`repro.datalog.agm` already
computes.  Heavy attributes (bound by large, high-cover relations) get
more buckets, so one hot shard doesn't gate the fleet; without
statistics every axis weighs the same and the grid degrades to the
balanced split :func:`~repro.exec.partitioner.choose_scheme` produces.

Everything here is pure — no sockets, no clocks — so the planner and
the :class:`DistExplain` report it feeds are golden-testable offline.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, log2
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalog.agm import agm_bound, fractional_edge_cover
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.query import ConjunctiveQuery
from repro.errors import ExecutionError, QueryError, ReproError
from repro.exec.partitioner import (
    PARTITION_MODES,
    Cell,
    PartitionScheme,
)

#: Floor for axis weights so a zero-weight axis (no statistics, or a
#: weightless cover) still receives a positive share of the grid.
_MIN_WEIGHT = 1e-6


def share_weights(query: ConjunctiveQuery,
                  sizes: Dict[int, int]) -> Dict[str, float]:
    """Per-attribute share weights from the AGM fractional edge cover.

    ``w_v = Σ_{atoms A binding v} x_A · log2(max(|R_A|, 2))`` — the
    exponent of ``v``'s contribution to the AGM bound.  Requires a size
    for *every* atom (self-joins contribute one entry per atom index);
    returns ``{}`` when statistics are incomplete or the cover LP is
    infeasible, which callers treat as "weigh every axis equally".
    """
    if not sizes:
        return {}
    ordered: List[int] = []
    for index in range(len(query.atoms)):
        if index not in sizes:
            return {}
        ordered.append(sizes[index])
    try:
        cover = fractional_edge_cover(Hypergraph.of_query(query), ordered)
    except QueryError:
        return {}
    weights: Dict[str, float] = {}
    for index, atom in enumerate(query.atoms):
        contribution = cover.weights[index] * log2(max(ordered[index], 2))
        for variable in set(atom.variables):
            weights[variable.name] = \
                weights.get(variable.name, 0.0) + contribution
    return weights


def _weighted_dims(shards: int, weights: Sequence[float]) -> List[int]:
    """Assign the prime factors of ``shards`` to axes by share weight.

    The shares optimum puts ``p_i ∝ shards^{w_i/Σw}`` buckets on axis
    ``i``; bucket counts must be integers whose product is ``shards``,
    so the prime factors (largest first) go greedily to whichever axis
    is currently furthest below its ideal share.  Equal weights recover
    a balanced near-cubic grid.
    """
    total = sum(weights) or 1.0
    ideal = [shards ** (weight / total) for weight in weights]
    dims = [1] * len(weights)
    factors: List[int] = []
    remaining = shards
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        best = max(
            range(len(dims)),
            key=lambda index: (ideal[index] / dims[index], -index),
        )
        dims[best] *= factor
    return dims


def choose_distributed_scheme(
        query: ConjunctiveQuery, shards: int, mode: str = "auto",
        beta_acyclic: Optional[bool] = None,
        sizes: Optional[Dict[int, int]] = None,
) -> Tuple[Optional[PartitionScheme], Tuple[Tuple[str, float], ...]]:
    """The partitioning for a distributed run, plus the weights used.

    Mirrors :func:`~repro.exec.partitioner.choose_scheme` (hash for
    β-acyclic queries, HyperCube for cyclic ones with ≥ 2 shared
    attributes) but sizes HyperCube shares by the AGM-derived weights
    instead of splitting evenly.  Returns ``(None, ())`` for a serial
    request; the second element reports each chosen axis's weight for
    the Explain output.
    """
    if shards <= 1:
        return None, ()
    if mode not in PARTITION_MODES:
        raise ExecutionError(
            f"unknown partition mode {mode!r}; "
            f"expected one of {PARTITION_MODES}"
        )
    variables = query.variables
    if not variables:
        raise ExecutionError("cannot partition a query with no variables")
    degree = {v: len(query.atoms_with(v)) for v in variables}
    weights = share_weights(query, sizes or {})
    # Most-shared first; heavier share weight breaks ties (the hot
    # attribute wants the most buckets); the name keeps it deterministic.
    ranked = sorted(
        variables,
        key=lambda v: (-degree[v], -weights.get(v.name, 0.0), v.name),
    )
    if mode == "auto":
        cyclic = (not beta_acyclic) if beta_acyclic is not None else False
        shared = [v for v in ranked if degree[v] >= 2]
        mode = "hypercube" if cyclic and len(shared) >= 2 else "hash"
    if mode == "hash":
        chosen = ranked[0]
        weight = weights.get(chosen.name, 1.0)
        scheme = PartitionScheme("hash", ((chosen.name, shards),))
        return scheme, ((chosen.name, weight),)
    axes = min(len(ranked), 3, max(1, shards.bit_length() - 1))
    axis_variables = ranked[:axes]
    axis_weights = [
        max(weights.get(v.name, 0.0), _MIN_WEIGHT) for v in axis_variables
    ]
    dims = _weighted_dims(shards, axis_weights)
    grid = tuple(
        (variable.name, dim)
        for variable, dim in zip(axis_variables, dims) if dim > 1
    )
    if not grid:  # shards > 1 always factors, but stay defensive
        grid = ((ranked[0].name, shards),)
    used = {name for name, _ in grid}
    reported = tuple(
        (variable.name, weight)
        for variable, weight in zip(axis_variables, axis_weights)
        if variable.name in used
    )
    return PartitionScheme("hypercube", grid), reported


def estimate_shard_agm(query: ConjunctiveQuery, scheme: PartitionScheme,
                       sizes: Dict[int, int]) -> Optional[float]:
    """Expected AGM bound of one grid cell, from whole-relation sizes.

    Each constrained atom's fragment holds roughly ``|R| / Π dims`` over
    the axes the atom binds (free axes replicate, so they don't shrink
    it); the cell-local AGM bound over those fragment sizes is the
    theoretical per-shard output ceiling the Explain report shows.
    ``None`` when statistics are incomplete.
    """
    if not sizes:
        return None
    axis_dims = dict(scheme.grid)
    fragment_sizes: Dict[int, int] = {}
    for index, atom in enumerate(query.atoms):
        if index not in sizes:
            return None
        divisor = 1
        for name in {v.name for v in atom.variables}:
            if name in axis_dims:
                divisor *= axis_dims[name]
        size = sizes[index]
        fragment_sizes[index] = ceil(size / divisor) if size else 0
    try:
        return agm_bound(query, fragment_sizes)
    except ReproError:
        return None


@dataclass(frozen=True)
class DistPlan:
    """One query's distributed execution plan, before server assignment."""

    scheme: Optional[PartitionScheme]  # None = single-shard proxy
    cells: Tuple[Cell, ...]
    weights: Tuple[Tuple[str, float], ...]  # grid axis -> share weight
    shard_agm_bound: Optional[float]  # per-cell output ceiling
    total_agm_bound: Optional[float]  # whole-query output ceiling
    notes: Tuple[str, ...] = ()

    @property
    def shards(self) -> int:
        return len(self.cells) if self.scheme is not None else 1


def plan_query(query: ConjunctiveQuery, *, shards: int,
               mode: str = "auto", beta_acyclic: Optional[bool] = None,
               sizes: Optional[Dict[int, int]] = None) -> DistPlan:
    """Plan a distributed run: scheme, cells, weights, and AGM ceilings."""
    scheme, weights = choose_distributed_scheme(
        query, shards, mode=mode, beta_acyclic=beta_acyclic, sizes=sizes,
    )
    notes: List[str] = []
    total_bound: Optional[float] = None
    if sizes and all(index in sizes for index in range(len(query.atoms))):
        try:
            total_bound = agm_bound(query, sizes)
        except ReproError:
            total_bound = None
    if scheme is None:
        return DistPlan(
            scheme=None, cells=(), weights=(),
            shard_agm_bound=None, total_agm_bound=total_bound,
            notes=("single shard: the whole query is proxied to one "
                   "server",),
        )
    if weights and any(w > _MIN_WEIGHT for _, w in weights):
        notes.append("share weights from per-relation statistics and "
                     "AGM fractional edge cover exponents")
    else:
        notes.append("no statistics: equal share weights")
    shard_bound = estimate_shard_agm(query, scheme, sizes or {})
    return DistPlan(
        scheme=scheme,
        cells=tuple(scheme.cells()),
        weights=weights,
        shard_agm_bound=shard_bound,
        total_agm_bound=total_bound,
        notes=tuple(notes),
    )


@dataclass(frozen=True)
class DistExplain:
    """A plan report with a distributed section appended.

    Wraps one server's :class:`~repro.api.explain.Explain` report (the
    single-machine plan every shard runs) and adds what only the
    coordinator knows: the shard → server assignment, the share-sizing
    weights, and the per-shard AGM ceiling.  Duck-types the Explain
    read surface (``as_dict`` / ``render``) so the CLI renders it
    unchanged.
    """

    report: dict                  # base single-server explain report
    rendered: str                 # base server-rendered text
    plan: DistPlan
    assignments: Tuple[Tuple[Cell, str], ...]  # cell -> server URL
    healthy_servers: int
    total_servers: int

    def as_dict(self) -> dict:
        distributed = {
            "servers": {
                "healthy": self.healthy_servers,
                "total": self.total_servers,
            },
            "scheme": (self.plan.scheme.key()
                       if self.plan.scheme is not None else "serial"),
            "shards": self.plan.shards,
            "share_weights": [
                [name, weight] for name, weight in self.plan.weights
            ],
            "shard_agm_bound": self.plan.shard_agm_bound,
            "total_agm_bound": self.plan.total_agm_bound,
            "assignments": [
                [list(cell), url] for cell, url in self.assignments
            ],
            "notes": list(self.plan.notes),
        }
        merged = dict(self.report)
        merged["distributed"] = distributed
        return merged

    def render(self) -> str:
        lines = [self.rendered, "", "distributed execution:"]
        lines.append(
            f"  servers: {self.healthy_servers} healthy / "
            f"{self.total_servers} configured"
        )
        if self.plan.scheme is None:
            lines.append(
                "  single shard: the whole query is proxied to one server"
            )
        else:
            lines.append(
                f"  scheme: {self.plan.scheme.key()} "
                f"({self.plan.shards} shards)"
            )
            if self.plan.weights:
                rendered_weights = ", ".join(
                    f"{name}={weight:.2f}"
                    for name, weight in self.plan.weights
                )
                lines.append(f"  share weights: {rendered_weights}")
            if self.plan.shard_agm_bound is not None:
                lines.append(
                    f"  per-shard output bound (AGM): "
                    f"<= {self.plan.shard_agm_bound:,.0f} tuples"
                )
            if self.plan.total_agm_bound is not None:
                lines.append(
                    f"  total output bound (AGM): "
                    f"<= {self.plan.total_agm_bound:,.0f} tuples"
                )
            lines.append("  shard -> server:")
            for cell, url in self.assignments:
                coordinate = ", ".join(str(value) for value in cell)
                lines.append(f"    cell ({coordinate}) -> {url}")
        for note in self.plan.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
