""":mod:`repro.dist` — cross-server sharded execution.

One query, many machines: a client-side coordinator partitions a query
with the existing :class:`~repro.exec.partitioner.Partitioner` schemes
(hash for β-acyclic queries, HyperCube for cyclic ones, share sizes
weighted by per-relation statistics and AGM exponents), routes each
shard's constrained sub-query to a different :mod:`repro.net` server
over multiplexed :class:`~repro.net.client.AsyncRemoteSession` sockets,
gathers under per-shard deadlines with hedged re-dispatch of
stragglers, and merges — shard disjointness means counts sum and
tuples concatenate with no dedup.

The public entry point is ``repro.connect("repro://h1:p1,h2:p2")``,
which returns a :class:`ClusterSession` with the exact ``Session``
surface (``run`` / ``count`` / ``explain`` / ``prepare`` / ``close``).

The engine underneath is side-agnostic: :class:`GatherEngine` runs the
same dispatch/hedge/re-route/merge loop whether its caller is the
client-side :class:`ClusterSession` or the server-side
:class:`PeerCoordinator` (``QueryOptions(route="peer")`` — the merge
happens next to the data and only the merged answer crosses the final
hop).
"""

from repro.dist.coordinator import ClusterPreparedHandle, ClusterResultSet, \
    ClusterSession
from repro.dist.gather import GatherEngine, PeerCoordinator, parse_peers
from repro.dist.merge import merge_counts, merge_rows, straggler_ratio
from repro.dist.planner import DistExplain, DistPlan, plan_query, \
    share_weights
from repro.dist.topology import ServerState, Topology

__all__ = [
    "ClusterPreparedHandle",
    "ClusterResultSet",
    "ClusterSession",
    "DistExplain",
    "DistPlan",
    "GatherEngine",
    "PeerCoordinator",
    "ServerState",
    "Topology",
    "merge_counts",
    "merge_rows",
    "parse_peers",
    "plan_query",
    "share_weights",
    "straggler_ratio",
]
