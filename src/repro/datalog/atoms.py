"""Atoms of a conjunctive query: relational atoms and comparison filters."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.errors import QueryError
from repro.datalog.terms import Constant, Term, Variable, is_variable


# Comparison operators supported by the query workload.  The paper's queries
# only use ``<`` (symmetry breaking on cliques/cycles) but supporting the full
# set costs nothing and makes the library more generally useful.
_COMPARISON_OPS = ("<", "<=", ">", ">=", "=", "!=")

_OP_FUNCS = {
    "<": lambda x, y: x < y,
    "<=": lambda x, y: x <= y,
    ">": lambda x, y: x > y,
    ">=": lambda x, y: x >= y,
    "=": lambda x, y: x == y,
    "!=": lambda x, y: x != y,
}


@dataclass(frozen=True)
class Atom:
    """A relational atom ``relation(term_1, ..., term_k)``.

    ``name`` is the relation symbol as it appears in the catalog.  Distinct
    atoms may refer to the same relation (self-joins), which is the common
    case for graph-pattern queries over a single ``edge`` relation.
    """

    name: str
    terms: Tuple[Term, ...]

    def __init__(self, name: str, terms: Sequence[Term]) -> None:
        if not name:
            raise QueryError("atom must have a non-empty relation name")
        if not terms:
            raise QueryError(f"atom {name!r} must have at least one term")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "terms", tuple(terms))

    @property
    def arity(self) -> int:
        """Number of terms in the atom."""
        return len(self.terms)

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """The distinct variables of the atom in order of first occurrence."""
        seen: List[Variable] = []
        for term in self.terms:
            if is_variable(term) and term not in seen:
                seen.append(term)
        return tuple(seen)

    @property
    def constants(self) -> Tuple[Constant, ...]:
        """The constants appearing in the atom, in positional order."""
        return tuple(t for t in self.terms if isinstance(t, Constant))

    def positions_of(self, variable: Variable) -> Tuple[int, ...]:
        """Return every argument position at which ``variable`` occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == variable)

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.name}({args})"

    def __repr__(self) -> str:
        return f"Atom({self.name!r}, {list(self.terms)!r})"


@dataclass(frozen=True)
class ComparisonAtom:
    """A comparison filter such as ``a < b`` or ``a != 3``.

    Both sides are terms; at least one side must be a variable for the
    comparison to be meaningful inside a query.
    """

    left: Term
    op: str
    right: Term

    def __post_init__(self) -> None:
        if self.op not in _COMPARISON_OPS:
            raise QueryError(
                f"unsupported comparison operator {self.op!r}; "
                f"expected one of {_COMPARISON_OPS}"
            )
        if not (is_variable(self.left) or is_variable(self.right)):
            raise QueryError(
                f"comparison {self} relates two constants; fold it away instead"
            )

    @property
    def variables(self) -> Tuple[Variable, ...]:
        """Distinct variables mentioned by the comparison."""
        out: List[Variable] = []
        for term in (self.left, self.right):
            if is_variable(term) and term not in out:
                out.append(term)
        return tuple(out)

    def evaluate(self, binding: dict) -> bool:
        """Evaluate the comparison under ``binding`` (Variable -> int).

        Raises ``KeyError`` if a variable in the comparison is unbound.
        """
        left = binding[self.left] if is_variable(self.left) else self.left.value
        right = binding[self.right] if is_variable(self.right) else self.right.value
        return _OP_FUNCS[self.op](left, right)

    def is_evaluable(self, bound_variables: Iterable[Variable]) -> bool:
        """Return True when every variable of the comparison is bound."""
        bound = set(bound_variables)
        return all(v in bound for v in self.variables)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"

    def __repr__(self) -> str:
        return f"ComparisonAtom({self.left!r}, {self.op!r}, {self.right!r})"


@dataclass(frozen=True)
class _FilterBundle:
    """Internal helper grouping filters by the variable set they need.

    Not part of the public API; used by executors to decide when a filter
    becomes checkable during attribute-at-a-time evaluation.
    """

    filters: Tuple[ComparisonAtom, ...] = field(default_factory=tuple)

    def evaluable_with(self, bound: Sequence[Variable]) -> Tuple[ComparisonAtom, ...]:
        return tuple(f for f in self.filters if f.is_evaluable(bound))
