"""Query hypergraphs, acyclicity analysis, and join trees.

The structure of a join query ``Q`` is the hypergraph ``H(Q) = (V, E)``
whose vertices are the query variables and whose hyperedges are the
variable sets of the atoms.  Two notions of acyclicity matter for the
paper:

* **α-acyclicity** — the classical notion under which the Yannakakis
  algorithm runs in linear time.  Tested with the GYO reduction, which also
  yields a join tree.
* **β-acyclicity** — the stronger notion required for Minesweeper's
  instance-optimality guarantee.  A hypergraph is β-acyclic iff vertices can
  be repeatedly eliminated in *nest-point* order (a vertex is a nest point
  when the edges containing it form a chain under inclusion).  The reverse
  of such an elimination order is exactly the *nested elimination order*
  (NEO) that Minesweeper wants as its global attribute order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable


Edge = FrozenSet[Variable]


@dataclass(frozen=True)
class JoinTreeNode:
    """A node of a join tree: one hyperedge plus the indexes of its children."""

    edge_index: int
    children: Tuple[int, ...] = ()


@dataclass
class JoinTree:
    """A join tree over the hyperedges of an α-acyclic hypergraph.

    ``parent[i]`` is the parent edge index of edge ``i`` (or ``None`` for the
    root).  The tree satisfies the running-intersection property: for every
    variable, the edges containing it form a connected subtree.
    """

    edges: List[Edge]
    parent: Dict[int, Optional[int]]
    root: int

    def children_of(self, index: int) -> List[int]:
        """Return the child edge indexes of ``index``."""
        return [i for i, p in self.parent.items() if p == index]

    def postorder(self) -> List[int]:
        """Edge indexes in post-order (children before parents)."""
        order: List[int] = []
        visited: Set[int] = set()

        def visit(node: int) -> None:
            visited.add(node)
            for child in self.children_of(node):
                if child not in visited:
                    visit(child)
            order.append(node)

        visit(self.root)
        # Disconnected components (cross products) hang off nothing; visit them
        # too so that semijoin passes see every edge.
        for index in range(len(self.edges)):
            if index not in visited:
                visit(index)
        return order


class Hypergraph:
    """The hypergraph ``H(Q)`` of a conjunctive query.

    The hypergraph keeps one hyperedge *per atom* (not per distinct variable
    set) so that edge indexes line up with atom indexes; duplicate variable
    sets are common in graph patterns (e.g. two ``edge`` atoms sharing both
    endpoints never happens, but unary sample relations can coincide with
    projections of binary ones).
    """

    def __init__(self, vertices: Sequence[Variable], edges: Sequence[Iterable[Variable]]):
        self.vertices: Tuple[Variable, ...] = tuple(vertices)
        self.edges: List[Edge] = [frozenset(edge) for edge in edges]
        vertex_set = set(self.vertices)
        for edge in self.edges:
            extra = edge - vertex_set
            if extra:
                raise QueryError(
                    f"hyperedge {sorted(v.name for v in edge)} mentions unknown "
                    f"vertices {sorted(v.name for v in extra)}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def of_query(cls, query: ConjunctiveQuery) -> "Hypergraph":
        """Build the hypergraph of ``query`` (one edge per atom)."""
        edges = [set(atom.variables) for atom in query.atoms]
        return cls(query.variables, edges)

    # ------------------------------------------------------------------
    # Simple structure
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def edges_with(self, vertex: Variable) -> List[Edge]:
        """All hyperedges containing ``vertex``."""
        return [edge for edge in self.edges if vertex in edge]

    def primal_graph(self) -> Dict[Variable, Set[Variable]]:
        """The primal (Gaifman) graph: vertices adjacent iff they co-occur."""
        adjacency: Dict[Variable, Set[Variable]] = {v: set() for v in self.vertices}
        for edge in self.edges:
            for u in edge:
                for v in edge:
                    if u != v:
                        adjacency[u].add(v)
        return adjacency

    def is_connected(self) -> bool:
        """True if the primal graph is connected (no cross products)."""
        if not self.vertices:
            return True
        adjacency = self.primal_graph()
        seen: Set[Variable] = set()
        stack = [self.vertices[0]]
        while stack:
            vertex = stack.pop()
            if vertex in seen:
                continue
            seen.add(vertex)
            stack.extend(adjacency[vertex] - seen)
        return len(seen) == len(self.vertices)

    def connected_components(self) -> List[Set[Variable]]:
        """Connected components of the primal graph."""
        adjacency = self.primal_graph()
        remaining = set(self.vertices)
        components: List[Set[Variable]] = []
        while remaining:
            start = next(iter(remaining))
            component: Set[Variable] = set()
            stack = [start]
            while stack:
                vertex = stack.pop()
                if vertex in component:
                    continue
                component.add(vertex)
                stack.extend(adjacency[vertex] - component)
            components.append(component)
            remaining -= component
        return components

    # ------------------------------------------------------------------
    # α-acyclicity (GYO reduction) and join trees
    # ------------------------------------------------------------------
    def gyo_reduction(self) -> Tuple[bool, Optional[JoinTree]]:
        """Run the GYO ear-removal reduction.

        Returns ``(is_alpha_acyclic, join_tree)``.  The join tree is only
        returned when the hypergraph is α-acyclic; its edge indexes refer to
        the original edge list of this hypergraph.
        """
        # Work on the distinct non-empty edges, remembering original indexes.
        live: Dict[int, Set[Variable]] = {
            i: set(edge) for i, edge in enumerate(self.edges) if edge
        }
        parent: Dict[int, Optional[int]] = {i: None for i in range(len(self.edges))}

        def vertex_edge_count(vertex: Variable) -> int:
            return sum(1 for edge in live.values() if vertex in edge)

        changed = True
        while changed and len(live) > 1:
            changed = False
            # Rule 1: remove vertices occurring in exactly one live edge.
            for index, edge in list(live.items()):
                isolated = {v for v in edge if vertex_edge_count(v) == 1}
                if isolated:
                    edge -= isolated
                    changed = True
            # Rule 2: remove edges contained in another live edge, recording
            # the containing edge as the join-tree parent.
            for index, edge in list(live.items()):
                for other_index, other in live.items():
                    if other_index == index:
                        continue
                    if edge <= other:
                        parent[index] = other_index
                        del live[index]
                        changed = True
                        break
                if changed and index not in live:
                    break

        remaining = [index for index, edge in live.items() if edge]
        if len(remaining) > 1:
            return False, None

        # α-acyclic: build the join tree.  The last surviving edge (or edge 0
        # if everything emptied out) becomes the root; empty original edges
        # attach to the root as trivial children.
        if remaining:
            root = remaining[0]
        elif live:
            root = next(iter(live))
        else:
            root = 0
        for index in range(len(self.edges)):
            if index != root and parent[index] is None:
                parent[index] = root
        parent[root] = None
        tree = JoinTree(edges=list(self.edges), parent=parent, root=root)
        return True, tree

    def is_alpha_acyclic(self) -> bool:
        """True iff the hypergraph is α-acyclic."""
        acyclic, _ = self.gyo_reduction()
        return acyclic

    def join_tree(self) -> JoinTree:
        """Return a join tree; raises :class:`QueryError` if not α-acyclic."""
        acyclic, tree = self.gyo_reduction()
        if not acyclic or tree is None:
            raise QueryError("hypergraph is not alpha-acyclic; no join tree exists")
        return tree

    # ------------------------------------------------------------------
    # β-acyclicity and nest points
    # ------------------------------------------------------------------
    @staticmethod
    def _is_nest_point(vertex: Variable, edges: Sequence[Set[Variable]]) -> bool:
        """A vertex is a nest point if the edges containing it form a ⊆-chain."""
        containing = [edge for edge in edges if vertex in edge]
        containing.sort(key=len)
        for first, second in zip(containing, containing[1:]):
            if not first <= second:
                return False
        return True

    def _live_edges(self) -> List[Set[Variable]]:
        return [set(edge) for edge in self.edges if edge]

    def nest_point_elimination(self) -> Optional[List[Variable]]:
        """Greedily eliminate nest points.

        Returns the elimination order (a list of all vertices) if the
        hypergraph is β-acyclic, or ``None`` otherwise.  Greedy elimination
        is complete for β-acyclicity: if a hypergraph has any nest point
        elimination order, eliminating an arbitrary nest point first still
        leaves a β-acyclic hypergraph.
        """
        edges = self._live_edges()
        remaining = list(self.vertices)
        order: List[Variable] = []
        while remaining:
            nest = None
            for vertex in remaining:
                if self._is_nest_point(vertex, edges):
                    nest = vertex
                    break
            if nest is None:
                return None
            order.append(nest)
            remaining.remove(nest)
            edges = [edge - {nest} for edge in edges]
            edges = [edge for edge in edges if edge]
        return order

    def is_beta_acyclic(self) -> bool:
        """True iff the hypergraph is β-acyclic."""
        return self.nest_point_elimination() is not None

    def all_nest_point_orders(self, limit: int = 5000) -> List[List[Variable]]:
        """Enumerate nest-point elimination orders (bounded by ``limit``).

        Benchmark queries have at most seven variables, so exhaustive
        enumeration is cheap; the limit is a safety valve for adversarial
        inputs.
        """
        results: List[List[Variable]] = []

        def recurse(edges: List[Set[Variable]], remaining: List[Variable],
                    prefix: List[Variable]) -> None:
            if len(results) >= limit:
                return
            if not remaining:
                results.append(list(prefix))
                return
            for vertex in remaining:
                if not self._is_nest_point(vertex, edges):
                    continue
                next_edges = [edge - {vertex} for edge in edges]
                next_edges = [edge for edge in next_edges if edge]
                next_remaining = [v for v in remaining if v != vertex]
                prefix.append(vertex)
                recurse(next_edges, next_remaining, prefix)
                prefix.pop()
                if len(results) >= limit:
                    return

        recurse(self._live_edges(), list(self.vertices), [])
        return results

    # ------------------------------------------------------------------
    # Sub-hypergraphs
    # ------------------------------------------------------------------
    def restrict_to_edges(self, indexes: Sequence[int]) -> "Hypergraph":
        """The sub-hypergraph induced by the given edge indexes."""
        selected = [self.edges[i] for i in indexes]
        vertices = [v for v in self.vertices if any(v in edge for edge in selected)]
        return Hypergraph(vertices, selected)

    def __repr__(self) -> str:
        edges = [
            "{" + ",".join(sorted(v.name for v in edge)) + "}" for edge in self.edges
        ]
        return f"Hypergraph(vertices={[v.name for v in self.vertices]}, edges={edges})"


@dataclass
class AcyclicityReport:
    """Summary of the structural analysis of a query used by the planner."""

    alpha_acyclic: bool
    beta_acyclic: bool
    join_tree: Optional[JoinTree] = None
    nest_point_order: Optional[List[Variable]] = field(default=None)


def analyse(query: ConjunctiveQuery) -> AcyclicityReport:
    """Run the full acyclicity analysis used by algorithm selection."""
    hypergraph = Hypergraph.of_query(query)
    alpha, tree = hypergraph.gyo_reduction()
    nest_order = hypergraph.nest_point_elimination()
    return AcyclicityReport(
        alpha_acyclic=alpha,
        beta_acyclic=nest_order is not None,
        join_tree=tree,
        nest_point_order=nest_order,
    )
