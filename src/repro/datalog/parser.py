"""A small parser for textual conjunctive queries.

The syntax follows the Datalog-ish form the paper uses for its workload::

    edge(a, b), edge(b, c), edge(a, c), a < b < c
    v1(a), v2(d), edge(a, b), edge(b, c), edge(c, d)

Grammar (informal)::

    query      := item ("," item)*
    item       := atom | comparison_chain
    atom       := NAME "(" term ("," term)* ")"
    term       := NAME | INTEGER
    comparison_chain := term (OP term)+        # "a < b < c" expands pairwise
    OP         := "<" | "<=" | ">" | ">=" | "=" | "!="

Lower-case identifiers are variables; integers are constants.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import ParseError
from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Constant, Term, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<int>\d+)
  | (?P<op><=|>=|!=|<|>|=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
    """,
    re.VERBOSE,
)


class _Token:
    """A lexed token with a kind, a value, and a source position."""

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int) -> None:
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.value!r}, {self.pos})"


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at position {pos}")
        kind = match.lastgroup
        value = match.group()
        if kind not in ("ws", "dot"):
            tokens.append(_Token(kind, value, pos))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: Sequence[_Token], text: str) -> None:
        self._tokens = list(tokens)
        self._text = text
        self._index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of query: {self._text!r}")
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._advance()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} at position {token.pos}, got {token.value!r}"
            )
        return token

    # -- grammar -------------------------------------------------------
    def parse(self) -> Tuple[List[Atom], List[ComparisonAtom]]:
        atoms: List[Atom] = []
        filters: List[ComparisonAtom] = []
        while self._peek() is not None:
            item = self._parse_item()
            if isinstance(item, Atom):
                atoms.append(item)
            else:
                filters.extend(item)
            token = self._peek()
            if token is None:
                break
            if token.kind != "comma":
                raise ParseError(
                    f"expected ',' at position {token.pos}, got {token.value!r}"
                )
            self._advance()
        return atoms, filters

    def _parse_item(self) -> Union[Atom, List[ComparisonAtom]]:
        token = self._peek()
        if token is None:
            raise ParseError("empty query item")
        if token.kind == "name":
            nxt = (
                self._tokens[self._index + 1]
                if self._index + 1 < len(self._tokens)
                else None
            )
            if nxt is not None and nxt.kind == "lparen":
                return self._parse_atom()
        return self._parse_comparison_chain()

    def _parse_atom(self) -> Atom:
        name = self._expect("name").value
        self._expect("lparen")
        terms: List[Term] = [self._parse_term()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._advance()
            terms.append(self._parse_term())
        self._expect("rparen")
        return Atom(name, terms)

    def _parse_term(self) -> Term:
        token = self._advance()
        if token.kind == "name":
            return Variable(token.value)
        if token.kind == "int":
            return Constant(int(token.value))
        raise ParseError(
            f"expected a variable or integer at position {token.pos}, "
            f"got {token.value!r}"
        )

    def _parse_comparison_chain(self) -> List[ComparisonAtom]:
        terms: List[Term] = [self._parse_term()]
        ops: List[str] = []
        while self._peek() is not None and self._peek().kind == "op":
            ops.append(self._advance().value)
            terms.append(self._parse_term())
        if not ops:
            token = self._peek()
            pos = token.pos if token is not None else len(self._text)
            raise ParseError(f"expected a comparison operator at position {pos}")
        # "a < b < c" expands to the pairwise comparisons a < b and b < c.
        return [
            ComparisonAtom(terms[i], ops[i], terms[i + 1]) for i in range(len(ops))
        ]


def parse_query(text: str, head: Optional[Sequence[str]] = None) -> ConjunctiveQuery:
    """Parse a textual conjunctive query.

    Parameters
    ----------
    text:
        The query body, e.g. ``"edge(a,b), edge(b,c), edge(a,c), a<b<c"``.
    head:
        Optional list of output variable names.  Defaults to all variables.

    Returns
    -------
    ConjunctiveQuery
        The parsed query.

    Examples
    --------
    >>> q = parse_query("edge(a, b), edge(b, c), edge(a, c), a < b < c")
    >>> q.num_atoms, q.num_variables, len(q.filters)
    (3, 3, 2)
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("query text is empty")
    atoms, filters = _Parser(tokens, text).parse()
    if not atoms:
        raise ParseError("query contains no relational atoms")
    head_vars = [Variable(name) for name in head] if head is not None else None
    return ConjunctiveQuery(atoms, filters, head_vars)
