"""Query-frontend substrate: conjunctive queries over named relations.

The paper expresses graph-pattern workloads as Datalog-style conjunctive
queries (for example ``edge(a, b), edge(b, c), edge(a, c), a < b < c`` for
the triangle query).  This package provides:

* the query representation (:mod:`repro.datalog.terms`,
  :mod:`repro.datalog.atoms`, :mod:`repro.datalog.query`),
* a small parser for the textual form (:mod:`repro.datalog.parser`),
* hypergraph structure and acyclicity analysis
  (:mod:`repro.datalog.hypergraph`),
* global attribute order (GAO) selection including the nested elimination
  order used by Minesweeper (:mod:`repro.datalog.gao`),
* the AGM output-size bound (:mod:`repro.datalog.agm`).
"""

from repro.datalog.terms import Constant, Term, Variable
from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.parser import parse_query
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.gao import (
    GAOChoice,
    nested_elimination_order,
    select_gao,
    is_nested_elimination_order,
)
from repro.datalog.agm import agm_bound, fractional_edge_cover

__all__ = [
    "Atom",
    "ComparisonAtom",
    "ConjunctiveQuery",
    "Constant",
    "GAOChoice",
    "Hypergraph",
    "Term",
    "Variable",
    "agm_bound",
    "fractional_edge_cover",
    "is_nested_elimination_order",
    "nested_elimination_order",
    "parse_query",
    "select_gao",
]
