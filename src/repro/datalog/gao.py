"""Global attribute order (GAO) selection.

Both Leapfrog Triejoin and Minesweeper evaluate a query one attribute at a
time following a *global attribute order*; every relation is indexed
consistently with that order (the GAO-consistency assumption of §4.1).

For β-acyclic queries, Minesweeper requires the GAO to be a *nested
elimination order* (NEO, Proposition 4.2): processing prefixes of a NEO
guarantees that the set of CDS nodes constraining the next attribute forms
a chain.  §4.9 of the paper selects, among all NEOs, the one with the
longest "path": the longest run of consecutive GAO attributes that are
adjacent in the query's primal graph, because longer runs give the CDS more
opportunity to cache.

For cyclic queries no NEO exists; the paper falls back to a heuristic order
and relies on Idea 7 (the β-acyclic skeleton) to keep the CDS chain-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable


@dataclass(frozen=True)
class GAOChoice:
    """A selected global attribute order plus how it was derived."""

    order: Tuple[Variable, ...]
    is_neo: bool
    policy: str

    @property
    def names(self) -> Tuple[str, ...]:
        """The attribute names in GAO order (handy for tests and reports)."""
        return tuple(v.name for v in self.order)


# ----------------------------------------------------------------------
# NEO machinery
# ----------------------------------------------------------------------
def is_nested_elimination_order(query: ConjunctiveQuery,
                                order: Sequence[Variable]) -> bool:
    """Check whether ``order`` is a nested elimination order for ``query``.

    ``order`` is a NEO iff eliminating its attributes *in reverse* always
    eliminates a nest point of the remaining hypergraph (a vertex whose
    containing edges form a chain under inclusion).
    """
    hypergraph = Hypergraph.of_query(query)
    if set(order) != set(hypergraph.vertices) or len(order) != len(hypergraph.vertices):
        return False
    edges: List[Set[Variable]] = [set(edge) for edge in hypergraph.edges if edge]
    for vertex in reversed(list(order)):
        if not Hypergraph._is_nest_point(vertex, edges):
            return False
        edges = [edge - {vertex} for edge in edges]
        edges = [edge for edge in edges if edge]
    return True


def nested_elimination_orders(query: ConjunctiveQuery,
                              limit: int = 5000) -> List[Tuple[Variable, ...]]:
    """Enumerate NEOs of ``query`` (empty list when the query is β-cyclic)."""
    hypergraph = Hypergraph.of_query(query)
    eliminations = hypergraph.all_nest_point_orders(limit=limit)
    return [tuple(reversed(elim)) for elim in eliminations]


def nested_elimination_order(query: ConjunctiveQuery) -> Optional[Tuple[Variable, ...]]:
    """Return one NEO for ``query`` or ``None`` when the query is β-cyclic."""
    hypergraph = Hypergraph.of_query(query)
    elimination = hypergraph.nest_point_elimination()
    if elimination is None:
        return None
    return tuple(reversed(elimination))


def _path_length(order: Sequence[Variable],
                 adjacency: Dict[Variable, Set[Variable]]) -> int:
    """Length of the longest run of consecutive, primal-adjacent attributes."""
    best = 1 if order else 0
    current = 1
    for prev, nxt in zip(order, list(order)[1:]):
        if nxt in adjacency.get(prev, set()):
            current += 1
            best = max(best, current)
        else:
            current = 1
    return best


def longest_path_neo(query: ConjunctiveQuery) -> Optional[Tuple[Variable, ...]]:
    """The NEO whose consecutive-adjacency run is longest (§4.9 policy)."""
    candidates = nested_elimination_orders(query)
    if not candidates:
        return None
    adjacency = Hypergraph.of_query(query).primal_graph()
    scored = [(_path_length(order, adjacency), order) for order in candidates]
    scored.sort(key=lambda item: (-item[0], [v.name for v in item[1]]))
    return scored[0][1]


# ----------------------------------------------------------------------
# Heuristic orders for cyclic queries
# ----------------------------------------------------------------------
def _greedy_connected_order(query: ConjunctiveQuery) -> Tuple[Variable, ...]:
    """A connectivity-first heuristic order for cyclic queries.

    Start from the variable covered by the most atoms (cheapest to intersect
    first) and repeatedly append the unordered variable sharing the most
    atoms with the already-ordered prefix, breaking ties by atom coverage and
    then name.  This mirrors what practical WCOJ systems do when no NEO
    exists.
    """
    variables = list(query.variables)
    if not variables:
        raise QueryError("query has no variables")
    coverage = {v: len(query.atoms_with(v)) for v in variables}
    adjacency = Hypergraph.of_query(query).primal_graph()

    first = max(variables, key=lambda v: (coverage[v], -variables.index(v)))
    order: List[Variable] = [first]
    remaining = [v for v in variables if v != first]
    while remaining:
        def score(v: Variable) -> Tuple[int, int, str]:
            shared = sum(1 for u in order if u in adjacency.get(v, set()))
            return (shared, coverage[v], v.name)

        nxt = max(remaining, key=score)
        order.append(nxt)
        remaining.remove(nxt)
    return tuple(order)


# ----------------------------------------------------------------------
# Public selection entry point
# ----------------------------------------------------------------------
def select_gao(query: ConjunctiveQuery, policy: str = "auto") -> GAOChoice:
    """Select a global attribute order for ``query``.

    Policies
    --------
    ``"auto"``
        Longest-path NEO when the query is β-acyclic, otherwise the greedy
        connectivity heuristic (used together with Idea 7).
    ``"neo"``
        Any NEO; raises :class:`QueryError` if the query is β-cyclic.
    ``"longest-path-neo"``
        The §4.9 policy; raises if the query is β-cyclic.
    ``"first-occurrence"``
        The order in which variables first appear in the query text.
    ``"greedy"``
        The connectivity heuristic regardless of acyclicity.
    """
    if policy in ("auto",):
        neo = longest_path_neo(query)
        if neo is not None:
            return GAOChoice(order=neo, is_neo=True, policy="longest-path-neo")
        return GAOChoice(order=_greedy_connected_order(query), is_neo=False,
                         policy="greedy")
    if policy == "neo":
        neo = nested_elimination_order(query)
        if neo is None:
            raise QueryError("query is beta-cyclic: no nested elimination order")
        return GAOChoice(order=neo, is_neo=True, policy="neo")
    if policy == "longest-path-neo":
        neo = longest_path_neo(query)
        if neo is None:
            raise QueryError("query is beta-cyclic: no nested elimination order")
        return GAOChoice(order=neo, is_neo=True, policy="longest-path-neo")
    if policy == "first-occurrence":
        order = tuple(query.variables)
        return GAOChoice(order=order, is_neo=is_nested_elimination_order(query, order),
                         policy="first-occurrence")
    if policy == "greedy":
        order = _greedy_connected_order(query)
        return GAOChoice(order=order, is_neo=is_nested_elimination_order(query, order),
                         policy="greedy")
    raise QueryError(f"unknown GAO policy {policy!r}")


def gao_from_names(query: ConjunctiveQuery, names: Sequence[str]) -> GAOChoice:
    """Build an explicit GAO from attribute names (used by the Table 4 bench)."""
    by_name = {v.name: v for v in query.variables}
    missing = [name for name in names if name not in by_name]
    if missing:
        raise QueryError(f"unknown attributes in GAO: {missing}")
    if len(names) != len(query.variables):
        raise QueryError(
            f"GAO must mention every variable exactly once "
            f"({len(names)} given, {len(query.variables)} needed)"
        )
    order = tuple(by_name[name] for name in names)
    return GAOChoice(order=order, is_neo=is_nested_elimination_order(query, order),
                     policy="explicit")
