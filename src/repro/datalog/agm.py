"""The AGM output-size bound and fractional edge covers (Appendix A).

Atserias, Grohe and Marx showed that for any fractional edge cover ``x`` of
the query hypergraph, the output size is at most ``prod_F |R_F|^{x_F}``.
The tightest such bound is obtained by solving the linear program

    minimise    sum_F log2(|R_F|) * x_F
    subject to  sum_{F : v in F} x_F >= 1   for every variable v
                x >= 0

Worst-case optimal join algorithms (NPRR, Generic Join, LFTJ) run in time
``O~(N + AGM(Q))``; the bound is used in this repo for plan diagnostics and
tested against hand-computed values for the paper's query patterns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.query import ConjunctiveQuery


@dataclass(frozen=True)
class EdgeCover:
    """A fractional edge cover together with the bound it certifies."""

    weights: Tuple[float, ...]
    log2_bound: float

    @property
    def bound(self) -> float:
        """The AGM bound in number of tuples (may be ``inf`` for huge inputs)."""
        if self.log2_bound > 1023:
            return math.inf
        return 2.0 ** self.log2_bound


def _solve_lp_scipy(costs: Sequence[float],
                    coverage: Sequence[Sequence[int]],
                    num_edges: int) -> Optional[List[float]]:
    """Solve the fractional edge cover LP with scipy, if available."""
    try:
        from scipy.optimize import linprog
    except ImportError:  # pragma: no cover - scipy is present in CI
        return None
    # Constraints: for each vertex v, -sum_{F ni v} x_F <= -1.
    a_ub = []
    b_ub = []
    for edges_of_vertex in coverage:
        row = [0.0] * num_edges
        for edge_index in edges_of_vertex:
            row[edge_index] = -1.0
        a_ub.append(row)
        b_ub.append(-1.0)
    result = linprog(
        c=list(costs),
        A_ub=a_ub,
        b_ub=b_ub,
        bounds=[(0.0, None)] * num_edges,
        method="highs",
    )
    if not result.success:  # pragma: no cover - LP is always feasible here
        return None
    return list(result.x)


def _solve_lp_grid(costs: Sequence[float],
                   coverage: Sequence[Sequence[int]],
                   num_edges: int) -> List[float]:
    """Fallback LP solver: search vertex-like solutions on a half-integer grid.

    The benchmark queries have at most seven atoms, and their optimal covers
    are half-integral (query hypergraphs here are graphs plus unary edges),
    so a grid search over ``{0, 1/2, 1}`` assignments refined by a final
    greedy repair is exact for every query in this repository.  It exists
    only so the library works without scipy.
    """
    best: Optional[Tuple[float, List[float]]] = None
    levels = (0.0, 0.5, 1.0)

    def feasible(x: Sequence[float]) -> bool:
        return all(
            sum(x[i] for i in edges_of_vertex) >= 1.0 - 1e-9
            for edges_of_vertex in coverage
        )

    def recurse(index: int, current: List[float]) -> None:
        nonlocal best
        if index == num_edges:
            if feasible(current):
                cost = sum(c * x for c, x in zip(costs, current))
                if best is None or cost < best[0] - 1e-12:
                    best = (cost, list(current))
            return
        for level in levels:
            current.append(level)
            recurse(index + 1, current)
            current.pop()

    if num_edges <= 10:
        recurse(0, [])
    if best is None:
        # Trivial feasible cover: every edge gets weight 1.
        return [1.0] * num_edges
    return best[1]


def fractional_edge_cover(hypergraph: Hypergraph,
                          sizes: Sequence[int]) -> EdgeCover:
    """Compute a minimum-cost fractional edge cover of ``hypergraph``.

    Parameters
    ----------
    hypergraph:
        The query hypergraph; edge ``i`` corresponds to ``sizes[i]``.
    sizes:
        The number of tuples in each input relation (per atom).
    """
    if len(sizes) != hypergraph.num_edges:
        raise QueryError(
            f"expected {hypergraph.num_edges} relation sizes, got {len(sizes)}"
        )
    if any(size < 0 for size in sizes):
        raise QueryError("relation sizes must be non-negative")
    if hypergraph.num_edges == 0:
        return EdgeCover(weights=(), log2_bound=0.0)
    if any(size == 0 for size in sizes):
        # An empty relation forces an empty output; cover it with weight 1.
        weights = [1.0 if size == 0 else 0.0 for size in sizes]
        # Remaining vertices must still be covered; fall through to repair.
        covered = set()
        for index, weight in enumerate(weights):
            if weight > 0:
                covered |= set(hypergraph.edges[index])
        for vertex in hypergraph.vertices:
            if vertex not in covered:
                for index, edge in enumerate(hypergraph.edges):
                    if vertex in edge:
                        weights[index] = 1.0
                        covered |= set(edge)
                        break
        return EdgeCover(weights=tuple(weights), log2_bound=-math.inf)

    costs = [math.log2(max(size, 1)) for size in sizes]
    coverage = [
        [i for i, edge in enumerate(hypergraph.edges) if vertex in edge]
        for vertex in hypergraph.vertices
    ]
    for vertex, edges_of_vertex in zip(hypergraph.vertices, coverage):
        if not edges_of_vertex:
            raise QueryError(f"vertex {vertex} is not covered by any hyperedge")

    solution = _solve_lp_scipy(costs, coverage, hypergraph.num_edges)
    if solution is None:
        solution = _solve_lp_grid(costs, coverage, hypergraph.num_edges)
    log2_bound = sum(c * x for c, x in zip(costs, solution))
    return EdgeCover(weights=tuple(solution), log2_bound=log2_bound)


def agm_bound(query: ConjunctiveQuery, sizes: Dict[int, int]) -> float:
    """The AGM bound for ``query`` given per-atom relation sizes.

    ``sizes`` maps *atom index* to the number of tuples in that atom's
    relation; self-joins therefore contribute one entry per atom.
    Returns the bound as a float number of tuples.
    """
    hypergraph = Hypergraph.of_query(query)
    ordered_sizes = []
    for index in range(len(query.atoms)):
        if index not in sizes:
            raise QueryError(f"missing size for atom index {index}")
        ordered_sizes.append(sizes[index])
    cover = fractional_edge_cover(hypergraph, ordered_sizes)
    if cover.log2_bound == -math.inf:
        return 0.0
    return cover.bound
