"""Conjunctive queries: the join queries evaluated by every algorithm."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.terms import Constant, Variable, is_variable


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A natural-join query ``Q = R_1 ⋈ R_2 ⋈ ... ⋈ R_m`` plus filters.

    Attributes
    ----------
    atoms:
        The relational atoms of the query body.  Repeated relation names
        (self-joins) are allowed and are the norm for graph patterns.
    filters:
        Comparison atoms (e.g. ``a < b``) applied to the join result.
        Following the paper these are used for symmetry breaking on cliques
        and cycles.
    head:
        The output variables.  ``None`` means "all variables" (a full join).
        Benchmarks in the paper run every query as a count, which is
        insensitive to the head projection as long as the head covers all
        variables; we keep the head for completeness of the API.
    """

    atoms: Tuple[Atom, ...]
    filters: Tuple[ComparisonAtom, ...] = ()
    head: Optional[Tuple[Variable, ...]] = None

    def __init__(
        self,
        atoms: Sequence[Atom],
        filters: Sequence[ComparisonAtom] = (),
        head: Optional[Sequence[Variable]] = None,
    ) -> None:
        if not atoms:
            raise QueryError("a conjunctive query needs at least one atom")
        object.__setattr__(self, "atoms", tuple(atoms))
        object.__setattr__(self, "filters", tuple(filters))
        object.__setattr__(self, "head", tuple(head) if head is not None else None)
        self._validate()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def variables(self) -> Tuple[Variable, ...]:
        """All variables of the query in order of first occurrence (vars(Q))."""
        seen: List[Variable] = []
        for atom in self.atoms:
            for var in atom.variables:
                if var not in seen:
                    seen.append(var)
        return tuple(seen)

    @property
    def relation_names(self) -> Tuple[str, ...]:
        """Distinct relation names referenced by the query, in first-use order."""
        seen: List[str] = []
        for atom in self.atoms:
            if atom.name not in seen:
                seen.append(atom.name)
        return tuple(seen)

    @property
    def num_variables(self) -> int:
        """n = |vars(Q)|."""
        return len(self.variables)

    @property
    def num_atoms(self) -> int:
        """m = |atoms(Q)|."""
        return len(self.atoms)

    def atoms_with(self, variable: Variable) -> Tuple[Atom, ...]:
        """Atoms whose variable set contains ``variable``."""
        return tuple(a for a in self.atoms if variable in a.variables)

    def filters_on(self, variables: Iterable[Variable]) -> Tuple[ComparisonAtom, ...]:
        """Filters whose variables are all contained in ``variables``."""
        bound = set(variables)
        return tuple(f for f in self.filters if set(f.variables) <= bound)

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------
    def with_filters(self, extra: Sequence[ComparisonAtom]) -> "ConjunctiveQuery":
        """Return a copy of the query with additional comparison filters."""
        return ConjunctiveQuery(self.atoms, self.filters + tuple(extra), self.head)

    def without_filters(self) -> "ConjunctiveQuery":
        """Return a copy of the query with all comparison filters removed."""
        return ConjunctiveQuery(self.atoms, (), self.head)

    def restricted_to_atoms(self, atoms: Sequence[Atom]) -> "ConjunctiveQuery":
        """Return the subquery over ``atoms`` keeping only applicable filters."""
        sub_vars = set()
        for atom in atoms:
            sub_vars.update(atom.variables)
        filters = tuple(f for f in self.filters if set(f.variables) <= sub_vars)
        return ConjunctiveQuery(atoms, filters)

    # ------------------------------------------------------------------
    # Validation / bookkeeping
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        all_vars = set(self.variables)
        for flt in self.filters:
            for var in flt.variables:
                if var not in all_vars:
                    raise QueryError(
                        f"filter {flt} mentions variable {var} that does not "
                        f"occur in any atom"
                    )
        if self.head is not None:
            for var in self.head:
                if var not in all_vars:
                    raise QueryError(
                        f"head variable {var} does not occur in any atom"
                    )

    def arity_map(self) -> Dict[str, int]:
        """Map each relation name to its arity, checking consistency."""
        arities: Dict[str, int] = {}
        for atom in self.atoms:
            prev = arities.get(atom.name)
            if prev is None:
                arities[atom.name] = atom.arity
            elif prev != atom.arity:
                raise QueryError(
                    f"relation {atom.name!r} used with arities {prev} and "
                    f"{atom.arity}"
                )
        return arities

    def constant_positions(self) -> Dict[int, Tuple[int, Constant]]:
        """Map atom index -> (position, constant) for every constant argument."""
        out: Dict[int, Tuple[int, Constant]] = {}
        for i, atom in enumerate(self.atoms):
            for pos, term in enumerate(atom.terms):
                if isinstance(term, Constant):
                    out[i] = (pos, term)
        return out

    def has_constants(self) -> bool:
        """Return True if any atom argument is a constant."""
        return any(
            not is_variable(term) for atom in self.atoms for term in atom.terms
        )

    def __str__(self) -> str:
        parts = [str(a) for a in self.atoms] + [str(f) for f in self.filters]
        body = ", ".join(parts)
        if self.head is None:
            return body
        head = ", ".join(str(v) for v in self.head)
        return f"({head}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({list(self.atoms)!r}, filters={list(self.filters)!r})"
