"""Terms appearing in conjunctive-query atoms: variables and constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, order=True)
class Variable:
    """A named query variable, e.g. ``a`` in ``edge(a, b)``.

    Variables are compared and hashed by name, so two occurrences of the
    same name in a query refer to the same logical variable.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"


@dataclass(frozen=True, order=True)
class Constant:
    """An integer constant appearing in an atom, e.g. ``edge(a, 7)``.

    All domain values in this library are non-negative integers (node
    identifiers), matching the paper's treatment of the output space as a
    subset of the natural numbers.
    """

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise TypeError(f"constant value must be an int, got {self.value!r}")

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Constant({self.value})"


Term = Union[Variable, Constant]
"""A term is either a :class:`Variable` or a :class:`Constant`."""


def is_variable(term: Term) -> bool:
    """Return True if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)
