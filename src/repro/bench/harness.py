"""Timed benchmark runs following the paper's protocol (§5.1).

The paper's protocol: every cell (system × dataset × query × selectivity)
is executed three times, the last two executions are averaged, a 30-minute
soft timeout turns a cell into "-", and every system sees the same node
samples.  The harness reproduces that protocol at laptop scale: the same
repetition/averaging rules, a configurable (much smaller) timeout, and
deterministic samples shared across systems.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.data.catalog import load_dataset
from repro.data.sampling import attach_samples
from repro.datalog.query import ConjunctiveQuery
from repro.queries.patterns import PatternSpec, pattern
from repro.storage.database import Database


def _connect(*args, **kwargs):
    """Open a session (imported lazily: the session module sits above the
    bench layer, and the service's workload module imports this one)."""
    from repro.api.session import connect

    return connect(*args, **kwargs)


@dataclass(frozen=True)
class BenchmarkConfig:
    """Knobs shared by every benchmark in the repository.

    ``parallel`` > 1 measures partitioned execution: every cell's query
    is split into that many shards evaluated on a process pool, via the
    same plan/executor seam the service uses.
    """

    timeout: float = 20.0
    repetitions: int = 3
    warmup_discard: int = 1
    scale: float = 1.0
    seed: int = 0
    parallel: int = 1
    partition_mode: str = "auto"

    def timed_repetitions(self) -> int:
        return max(1, self.repetitions - self.warmup_discard)


@dataclass
class BenchmarkCell:
    """One measured cell of a paper table."""

    system: str
    dataset: str
    query: str
    selectivity: Optional[int]
    seconds: Optional[float]
    count: Optional[int]
    timed_out: bool = False
    error: Optional[str] = None

    @property
    def succeeded(self) -> bool:
        return self.seconds is not None and not self.timed_out and self.error is None

    def cell(self, precision: int = 2) -> str:
        """Render like the paper: a duration, or "-" for timeout/unsupported."""
        if not self.succeeded:
            return "-"
        return f"{self.seconds:.{precision}f}"


def benchmark_database(dataset_name: str, query_name: Optional[str] = None,
                       selectivity: Optional[int] = None,
                       config: Optional[BenchmarkConfig] = None) -> Database:
    """Build the database for one benchmark cell.

    The edge relation comes from the dataset catalog; when the query pattern
    needs node samples they are attached at the requested selectivity using
    the shared deterministic seed, so every system measures the same cell.
    """
    config = config or BenchmarkConfig()
    database = Database([load_dataset(dataset_name, scale=config.scale)])
    if query_name is not None:
        spec = pattern(query_name)
        if spec.sample_relations:
            if selectivity is None:
                raise ValueError(
                    f"query {query_name!r} needs node samples; pass a selectivity"
                )
            attach_samples(database, selectivity,
                           sample_names=spec.sample_relations, seed=config.seed)
    return database


def run_cell(system: str, dataset_name: str, query_name: str,
             selectivity: Optional[int] = None,
             config: Optional[BenchmarkConfig] = None,
             database: Optional[Database] = None,
             query: Optional[ConjunctiveQuery] = None) -> BenchmarkCell:
    """Measure one (system, dataset, query, selectivity) cell.

    The first ``warmup_discard`` repetitions are discarded and the remaining
    ones averaged, mirroring the paper's "average the last two of three
    executions".  A timeout or an unsupported query (for example a path
    query on the graph engine) renders as "-".
    """
    config = config or BenchmarkConfig()
    if database is None:
        database = benchmark_database(dataset_name, query_name, selectivity, config)
    if query is None:
        query = pattern(query_name).build()

    durations: List[float] = []
    count: Optional[int] = None
    # Benchmarks measure raw execution: the session's caches are off, so
    # every repetition pays the full plan + execute cost like the paper's
    # protocol intends.
    with _connect(database, timeout=config.timeout, use_cache=False,
                  parallel=config.parallel,
                  partition_mode=config.partition_mode) as session:
        session.engine.warm_up()  # pool start-up is not billed to the cell
        for repetition in range(config.repetitions):
            result = session.execute(query, algorithm=system)
            if not result.succeeded:
                return BenchmarkCell(
                    system=system, dataset=dataset_name, query=query_name,
                    selectivity=selectivity, seconds=None, count=None,
                    timed_out=result.timed_out, error=result.error,
                )
            count = result.count
            if repetition >= config.warmup_discard or config.repetitions == 1:
                durations.append(result.seconds)
    seconds = sum(durations) / len(durations)
    return BenchmarkCell(
        system=system, dataset=dataset_name, query=query_name,
        selectivity=selectivity, seconds=seconds, count=count,
    )


def run_grid(systems: Sequence[str], dataset_names: Sequence[str],
             query_names: Sequence[str],
             selectivities: Sequence[Optional[int]] = (None,),
             config: Optional[BenchmarkConfig] = None) -> List[BenchmarkCell]:
    """Measure a full grid of cells, sharing databases across systems.

    Databases are built once per (dataset, query, selectivity) so every
    system sees identical inputs, then each system is timed on it.
    """
    config = config or BenchmarkConfig()
    cells: List[BenchmarkCell] = []
    for dataset_name in dataset_names:
        for query_name in query_names:
            spec = pattern(query_name)
            effective_selectivities: Sequence[Optional[int]]
            if spec.sample_relations:
                effective_selectivities = [s for s in selectivities if s is not None]
            else:
                effective_selectivities = [None]
            for selectivity in effective_selectivities:
                database = benchmark_database(
                    dataset_name, query_name, selectivity, config
                )
                query = spec.build()
                for system in systems:
                    cells.append(run_cell(
                        system, dataset_name, query_name, selectivity,
                        config=config, database=database, query=query,
                    ))
    return cells


@dataclass
class CachedVsColdResult:
    """Throughput of the serving layer vs. a cold per-query engine loop.

    ``consistent`` records whether both paths produced identical answers
    for every request of the stream (the correctness half of the
    experiment); ``speedup`` is ``cold_seconds / cached_seconds``.
    """

    operations: int
    unique_queries: int
    cold_seconds: float
    cached_seconds: float
    consistent: bool

    @property
    def cold_qps(self) -> float:
        return self.operations / self.cold_seconds if self.cold_seconds else 0.0

    @property
    def cached_qps(self) -> float:
        return (
            self.operations / self.cached_seconds if self.cached_seconds else 0.0
        )

    @property
    def speedup(self) -> float:
        if self.cached_seconds == 0:
            return float("inf")
        return self.cold_seconds / self.cached_seconds


def run_cached_vs_cold(database: Database, query_texts: Sequence[str],
                       repeats: int = 20,
                       timeout: Optional[float] = None) -> CachedVsColdResult:
    """Measure plan+result caching on a repeated-query stream.

    The stream interleaves ``repeats`` rounds over ``query_texts`` — the
    shape of a parameterized serving workload where the same instances
    recur.  The *cold* path is what the repo offered before the service
    layer: an uncached session whose every request re-parses, re-analyses,
    and re-executes.  The *cached* path serves the identical
    stream through :class:`repro.service.QueryService`.  Answers are
    compared request-by-request.
    """
    from repro.service.service import QueryService, ServiceConfig

    stream = [text for _ in range(repeats) for text in query_texts]

    cold_answers: List[Optional[int]] = []
    with _connect(database, timeout=timeout, use_cache=False) as session:
        cold_started = time.perf_counter()
        for text in stream:
            result = session.execute(text)
            cold_answers.append(result.count if result.succeeded else None)
        cold_seconds = time.perf_counter() - cold_started

    cached_answers: List[Optional[int]] = []
    with QueryService(
        database, ServiceConfig(default_timeout=timeout)
    ) as service:
        cached_started = time.perf_counter()
        for text in stream:
            outcome = service.execute(text)
            cached_answers.append(outcome.count if outcome.succeeded else None)
        cached_seconds = time.perf_counter() - cached_started

    return CachedVsColdResult(
        operations=len(stream),
        unique_queries=len(set(query_texts)),
        cold_seconds=cold_seconds,
        cached_seconds=cached_seconds,
        consistent=cold_answers == cached_answers,
    )


@dataclass
class SerialVsPartitionedResult:
    """Wall-clock of serial vs. partitioned multi-process execution.

    The correctness half: ``consistent`` records whether both paths
    returned identical counts for every request.  The performance half:
    ``speedup`` is ``serial_seconds / partitioned_seconds`` for the whole
    stream.  ``scheme_keys`` records the partitioning each query used
    (e.g. ``hypercube[a:2,b:2]``), for the report.
    """

    operations: int
    shards: int
    serial_seconds: float
    partitioned_seconds: float
    consistent: bool
    scheme_keys: Dict[str, str] = field(default_factory=dict)
    counts: Dict[str, Optional[int]] = field(default_factory=dict)

    @property
    def speedup(self) -> float:
        if self.partitioned_seconds == 0:
            return float("inf")
        return self.serial_seconds / self.partitioned_seconds

    def format(self) -> str:
        """A paper-style text table via the shared bench reporting."""
        from repro.bench.reporting import format_matrix

        rows = sorted(self.scheme_keys)
        cells = {}
        for query in rows:
            cells[(query, "scheme")] = self.scheme_keys.get(query, "-")
            count = self.counts.get(query)
            cells[(query, "count")] = f"{count:,}" if count is not None else "-"
        table = format_matrix(
            f"serial vs partitioned ({self.shards} worker processes)",
            rows, ["scheme", "count"], cells, row_header="query",
        )
        verdict = "identical answers" if self.consistent else "ANSWER MISMATCH"
        return "\n".join([
            table,
            f"serial: {self.serial_seconds:.3f}s  partitioned: "
            f"{self.partitioned_seconds:.3f}s  speedup: {self.speedup:.2f}x "
            f"({verdict})",
        ])


def run_serial_vs_partitioned(database: Database,
                              query_texts: Sequence[str],
                              shards: int = 4,
                              mode: str = "auto",
                              repeats: int = 1,
                              timeout: Optional[float] = None
                              ) -> SerialVsPartitionedResult:
    """Measure partitioned multi-process execution against the serial path.

    Every request is executed twice — once on a serial engine, once on an
    engine whose executor is a pool of ``shards`` worker processes — and
    the counts are compared request by request, which is the
    "verified-identical answers" requirement of the partitioned-execution
    experiment.  Real speedup requires real cores: on a single-CPU host
    the partitioned path measures pure overhead.
    """
    stream = [text for _ in range(repeats) for text in query_texts]

    serial_counts: List[Optional[int]] = []
    with _connect(database, timeout=timeout, use_cache=False) as session:
        serial_started = time.perf_counter()
        for text in stream:
            result = session.execute(text)
            serial_counts.append(result.count if result.succeeded else None)
        serial_seconds = time.perf_counter() - serial_started

    partitioned_counts: List[Optional[int]] = []
    scheme_keys: Dict[str, str] = {}
    with _connect(database, timeout=timeout, use_cache=False,
                 parallel=shards, partition_mode=mode) as session:
        session.engine.warm_up()  # measure shards, not pool start-up
        for text in query_texts:
            scheme_keys[text] = session.plan(text).partition_key()
        partitioned_started = time.perf_counter()
        for text in stream:
            result = session.execute(text)
            partitioned_counts.append(
                result.count if result.succeeded else None
            )
        partitioned_seconds = time.perf_counter() - partitioned_started

    return SerialVsPartitionedResult(
        operations=len(stream),
        shards=shards,
        serial_seconds=serial_seconds,
        partitioned_seconds=partitioned_seconds,
        consistent=serial_counts == partitioned_counts,
        scheme_keys=scheme_keys,
        counts={
            text: count for text, count in zip(stream, serial_counts)
        },
    )


@dataclass
class RemoteVsLocalResult:
    """Wire-protocol overhead: the same stream in-process vs. over TCP.

    Both paths hit the *same* :class:`~repro.service.QueryService`
    (identical caches, identical engine), so the difference is exactly
    the network layer: framing, the asyncio server, cursor paging.
    ``consistent`` records whether every request's answer matched;
    ``overhead`` is ``remote_seconds / local_seconds``.
    """

    operations: int
    unique_queries: int
    local_seconds: float
    remote_seconds: float
    consistent: bool
    url: str = ""

    @property
    def local_qps(self) -> float:
        return self.operations / self.local_seconds if self.local_seconds \
            else 0.0

    @property
    def remote_qps(self) -> float:
        return self.operations / self.remote_seconds if self.remote_seconds \
            else 0.0

    @property
    def overhead(self) -> float:
        if self.local_seconds == 0:
            return float("inf")
        return self.remote_seconds / self.local_seconds

    def format(self) -> str:
        verdict = "identical answers" if self.consistent \
            else "ANSWER MISMATCH"
        return (
            f"remote vs local ({self.operations} ops over "
            f"{self.unique_queries} unique queries via {self.url}): "
            f"{self.local_qps:.1f} q/s local vs {self.remote_qps:.1f} q/s "
            f"remote ({self.overhead:.2f}x wire overhead, {verdict})"
        )


def run_remote_vs_local(database: Database, query_texts: Sequence[str],
                        repeats: int = 10,
                        timeout: Optional[float] = None,
                        mode: str = "tuples") -> RemoteVsLocalResult:
    """Measure the wire protocol's overhead against in-process serving.

    One :class:`~repro.service.QueryService` serves a repeated-query
    stream twice: *local* calls it in-process, *remote* drives the same
    stream through a real TCP boundary (an in-thread
    :class:`~repro.net.server.ReproServer` plus a
    :class:`~repro.net.client.RemoteSession`).  A warm-up round over the
    unique queries runs first so both measured passes see the same cache
    state and the comparison isolates the wire, not cold planning.
    ``mode="tuples"`` drains every answer through cursor paging;
    ``mode="count"`` measures the scalar round trip.
    """
    from repro.net.client import RemoteSession
    from repro.net.server import ServerThread
    from repro.service.service import QueryService, ServiceConfig

    stream = [text for _ in range(repeats) for text in query_texts]

    with QueryService(
        database, ServiceConfig(default_timeout=timeout)
    ) as service:
        for text in query_texts:  # warm both caches once
            service.execute(text, mode=mode)

        local_answers: List[object] = []
        local_started = time.perf_counter()
        for text in stream:
            outcome = service.execute(text, mode=mode)
            local_answers.append(
                outcome.value if outcome.succeeded else None
            )
        local_seconds = time.perf_counter() - local_started

        remote_answers: List[object] = []
        with ServerThread(service) as server:
            with RemoteSession(server.url, options=None) as session:
                remote_started = time.perf_counter()
                for text in stream:
                    result_set = session.run(text, timeout=timeout)
                    if mode == "count":
                        remote_answers.append(result_set.count())
                    else:
                        remote_answers.append(
                            tuple(sorted(result_set.fetchall()))
                        )
                remote_seconds = time.perf_counter() - remote_started
            url = server.url

    return RemoteVsLocalResult(
        operations=len(stream),
        unique_queries=len(set(query_texts)),
        local_seconds=local_seconds,
        remote_seconds=remote_seconds,
        consistent=local_answers == remote_answers,
        url=url,
    )


@dataclass
class PipelinedThroughputResult:
    """Throughput of the three remote client shapes on one stream.

    * ``serial`` — one connection, one request at a time: the PR-4
      baseline client.
    * ``pooled`` — ``concurrency`` worker threads sharing one
      :class:`~repro.net.client.RemoteSession`, each request on its own
      pooled connection.
    * ``pipelined`` — ``asyncio.gather`` over the whole stream on one
      :class:`~repro.net.client.AsyncRemoteSession`: every request
      multiplexed over a *single* socket, matched by request id, with
      the server overlapping their execution on its worker pool.

    ``consistent`` records whether all three streams returned answers
    identical to a warm-up reference, request by request.
    """

    operations: int
    unique_queries: int
    concurrency: int
    serial_seconds: float
    pooled_seconds: float
    pipelined_seconds: float
    consistent: bool
    url: str = ""

    def _qps(self, seconds: float) -> float:
        return self.operations / seconds if seconds else float("inf")

    @property
    def serial_qps(self) -> float:
        return self._qps(self.serial_seconds)

    @property
    def pooled_qps(self) -> float:
        return self._qps(self.pooled_seconds)

    @property
    def pipelined_qps(self) -> float:
        return self._qps(self.pipelined_seconds)

    @property
    def pooled_speedup(self) -> float:
        return self.serial_seconds / self.pooled_seconds \
            if self.pooled_seconds else float("inf")

    @property
    def pipelined_speedup(self) -> float:
        return self.serial_seconds / self.pipelined_seconds \
            if self.pipelined_seconds else float("inf")

    def format(self) -> str:
        verdict = "identical answers" if self.consistent \
            else "ANSWER MISMATCH"
        return "\n".join([
            f"pipelined throughput ({self.operations} ops over "
            f"{self.unique_queries} unique queries via {self.url}, "
            f"concurrency {self.concurrency}):",
            f"  serial    (1 conn, 1 in flight) : "
            f"{self.serial_qps:>8.1f} q/s",
            f"  pooled    ({self.concurrency} conns, threads)   : "
            f"{self.pooled_qps:>8.1f} q/s  "
            f"({self.pooled_speedup:.2f}x)",
            f"  pipelined (1 conn, multiplexed) : "
            f"{self.pipelined_qps:>8.1f} q/s  "
            f"({self.pipelined_speedup:.2f}x)",
            f"  ({verdict})",
        ])


def run_pipelined_throughput(database: Database,
                             query_texts: Sequence[str],
                             repeats: int = 10,
                             concurrency: int = 8,
                             timeout: Optional[float] = None
                             ) -> PipelinedThroughputResult:
    """Measure what pooling and pipelining buy over a serial connection.

    One :class:`~repro.service.QueryService` behind one in-thread
    :class:`~repro.net.server.ReproServer` answers the same
    repeated-query count stream three ways: a serial one-request-at-a-
    time connection, a thread-driven connection pool, and a single
    multiplexed asyncio connection carrying every request concurrently
    (``asyncio.gather``).  A warm-up round runs first so all passes see
    the same cache state, and every answer of every pass is verified
    against the warm-up reference — the correctness half of the
    experiment.  Real overlap needs real cores (and a real network adds
    the latency that pipelining hides best); in-process over loopback
    the pooled/pipelined passes mostly measure scheduling overlap.
    """
    import asyncio
    from concurrent.futures import ThreadPoolExecutor

    from repro.net.client import RemoteSession, connect_async
    from repro.net.server import ServerThread
    from repro.service.service import QueryService, ServiceConfig

    stream = [text for _ in range(repeats) for text in query_texts]

    with QueryService(
        database,
        ServiceConfig(workers=max(4, concurrency), default_timeout=timeout),
    ) as service:
        with ServerThread(service) as server:
            url = server.url
            with RemoteSession(url, pool_size=1) as warm:
                expected = {
                    text: warm.run(text, timeout=timeout).count()
                    for text in query_texts
                }
            reference = [expected[text] for text in stream]

            with RemoteSession(url, pool_size=1) as session:
                started = time.perf_counter()
                serial_answers = [
                    session.run(text, timeout=timeout).count()
                    for text in stream
                ]
                serial_seconds = time.perf_counter() - started

            with RemoteSession(url, pool_size=concurrency) as session:
                with ThreadPoolExecutor(concurrency) as workers:
                    started = time.perf_counter()
                    pooled_answers = list(workers.map(
                        lambda text: session.run(
                            text, timeout=timeout
                        ).count(),
                        stream,
                    ))
                    pooled_seconds = time.perf_counter() - started

            async def _pipelined():
                session = await connect_async(url, timeout=timeout)
                try:
                    async def one(text: str) -> int:
                        result_set = await session.run(text)
                        return await result_set.count()

                    started = time.perf_counter()
                    answers = await asyncio.gather(
                        *[one(text) for text in stream]
                    )
                    return time.perf_counter() - started, list(answers)
                finally:
                    await session.close()

            pipelined_seconds, pipelined_answers = asyncio.run(_pipelined())

    return PipelinedThroughputResult(
        operations=len(stream),
        unique_queries=len(set(query_texts)),
        concurrency=concurrency,
        serial_seconds=serial_seconds,
        pooled_seconds=pooled_seconds,
        pipelined_seconds=pipelined_seconds,
        consistent=(serial_answers == reference
                    and pooled_answers == reference
                    and pipelined_answers == reference),
        url=url,
    )


def speedup(baseline: BenchmarkCell, improved: BenchmarkCell) -> Optional[float]:
    """``baseline.seconds / improved.seconds`` or ``None`` if either failed."""
    if not baseline.succeeded or not improved.succeeded:
        return None
    if improved.seconds == 0:
        return float("inf")
    return baseline.seconds / improved.seconds


def consistency_check(cells: Iterable[BenchmarkCell]) -> Dict[Tuple[str, str, Optional[int]], bool]:
    """Verify that every system that finished a cell reports the same count.

    Returns a map from (dataset, query, selectivity) to whether all counts
    agree — the "we verified the result for all implementations" step of
    §5.1.
    """
    by_cell: Dict[Tuple[str, str, Optional[int]], set] = {}
    for cell in cells:
        if not cell.succeeded:
            continue
        key = (cell.dataset, cell.query, cell.selectivity)
        by_cell.setdefault(key, set()).add(cell.count)
    return {key: len(counts) == 1 for key, counts in by_cell.items()}
