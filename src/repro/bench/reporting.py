"""Rendering benchmark records as paper-style tables and text figures."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.bench.harness import BenchmarkCell


def format_matrix(title: str, row_labels: Sequence[str],
                  column_labels: Sequence[str],
                  cells: Mapping[Tuple[str, str], str],
                  row_header: str = "") -> str:
    """A fixed-width text table: ``cells[(row, column)]`` are pre-rendered."""
    width_first = max([len(row_header)] + [len(label) for label in row_labels]) + 2
    widths = [
        max(len(label), *(len(cells.get((row, label), "")) for row in row_labels)) + 2
        if row_labels else len(label) + 2
        for label in column_labels
    ]
    lines = [title, "=" * len(title)]
    header = row_header.ljust(width_first) + "".join(
        label.rjust(width) for label, width in zip(column_labels, widths)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in row_labels:
        line = row.ljust(width_first) + "".join(
            cells.get((row, column), "").rjust(width)
            for column, width in zip(column_labels, widths)
        )
        lines.append(line)
    return "\n".join(lines)


def format_table(title: str, cells: Iterable[BenchmarkCell],
                 rows: str = "dataset", columns: str = "system",
                 precision: int = 2) -> str:
    """Render benchmark cells as a matrix keyed by two of their fields.

    ``rows`` / ``columns`` name :class:`BenchmarkCell` attributes (usually
    ``dataset`` and ``system``); duplicate coordinates keep the last cell.
    """
    cell_list = list(cells)
    row_labels: List[str] = []
    column_labels: List[str] = []
    rendered: Dict[Tuple[str, str], str] = {}
    for cell in cell_list:
        row = str(getattr(cell, rows))
        column = str(getattr(cell, columns))
        if row not in row_labels:
            row_labels.append(row)
        if column not in column_labels:
            column_labels.append(column)
        rendered[(row, column)] = cell.cell(precision)
    return format_matrix(title, row_labels, column_labels, rendered,
                         row_header=rows)


def format_figure(title: str, x_label: str, x_values: Sequence[float],
                  series: Mapping[str, Sequence[Optional[float]]],
                  precision: int = 3) -> str:
    """A text rendering of a line figure: one column per series.

    ``series[name][i]`` is the y-value (runtime) at ``x_values[i]`` or
    ``None`` for a timeout, rendered as "-" just like the paper's plots
    stop their lines.
    """
    names = list(series)
    cells: Dict[Tuple[str, str], str] = {}
    row_labels = [str(x) for x in x_values]
    for name in names:
        values = series[name]
        for x, value in zip(row_labels, values):
            cells[(x, name)] = "-" if value is None else f"{value:.{precision}f}"
    return format_matrix(title, row_labels, names, cells, row_header=x_label)


def speedup_table(title: str, row_labels: Sequence[str],
                  column_labels: Sequence[str],
                  speedups: Mapping[Tuple[str, str], Optional[float]],
                  precision: int = 2) -> str:
    """Render a table of speedup ratios (the shape of Tables 1-3)."""
    rendered = {
        key: ("-" if value is None else f"{value:.{precision}f}")
        for key, value in speedups.items()
    }
    return format_matrix(title, row_labels, column_labels, rendered,
                         row_header="query")
