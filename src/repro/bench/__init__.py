"""Benchmark harness and reporting for the paper's tables and figures.

* :mod:`repro.bench.harness` — build benchmark databases (dataset +
  samples), time executions under the paper's protocol (repetitions,
  soft timeouts, "-" cells), and collect structured records.
* :mod:`repro.bench.reporting` — render the records as paper-style tables
  (rows = datasets or parameters, columns = systems) and simple text
  "figures" (series of runtime vs. a swept parameter).
"""

from repro.bench.harness import (
    BenchmarkCell,
    BenchmarkConfig,
    CachedVsColdResult,
    RemoteVsLocalResult,
    SerialVsPartitionedResult,
    benchmark_database,
    run_cached_vs_cold,
    run_cell,
    run_grid,
    run_remote_vs_local,
    run_serial_vs_partitioned,
    speedup,
)
from repro.bench.reporting import (
    format_figure,
    format_matrix,
    format_table,
)

__all__ = [
    "BenchmarkCell",
    "BenchmarkConfig",
    "CachedVsColdResult",
    "RemoteVsLocalResult",
    "SerialVsPartitionedResult",
    "benchmark_database",
    "format_figure",
    "format_matrix",
    "format_table",
    "run_cached_vs_cold",
    "run_cell",
    "run_grid",
    "run_remote_vs_local",
    "run_serial_vs_partitioned",
    "speedup",
]
