"""The benchmark query patterns of §5.1.

:mod:`repro.queries.patterns` provides one builder per pattern the paper
evaluates ({3,4}-clique, 4-cycle, {3,4}-path, {1,2}-tree, 2-comb,
{2,3}-lollipop) plus a registry the benchmark harness iterates over.
"""

from repro.queries.patterns import (
    PatternSpec,
    QUERY_PATTERNS,
    build_query,
    clique_query,
    comb_query,
    cycle_query,
    lollipop_query,
    path_query,
    pattern,
    tree_query,
)

__all__ = [
    "PatternSpec",
    "QUERY_PATTERNS",
    "build_query",
    "clique_query",
    "comb_query",
    "cycle_query",
    "lollipop_query",
    "path_query",
    "pattern",
    "tree_query",
]
