"""Builders for every benchmark query pattern of §5.1.

Each builder returns a :class:`~repro.datalog.query.ConjunctiveQuery` over
the binary ``edge`` relation (and, where the paper's workload requires
them, unary node-sample relations ``v1``, ``v2``, ...).  The Datalog text
of every pattern matches the formulation given in the paper:

* ``{3,4}-clique``   — every pair connected, ``a < b < c (< d)``;
* ``4-cycle``        — ``edge(a,b), edge(b,c), edge(c,d), edge(a,d)``,
  ``a < b < c < d``;
* ``{3,4}-path``     — a path whose two endpoints are drawn from the node
  samples ``v1`` and ``v2``;
* ``{1,2}-tree``     — complete binary trees whose leaves come from
  distinct samples;
* ``2-comb``         — a left-deep binary tree with two sampled leaves;
* ``{2,3}-lollipop`` — an ``i``-path (starting from sample ``v1``) glued to
  an ``(i+1)``-clique.

The :data:`QUERY_PATTERNS` registry records, for every pattern, which
sample relations it needs and whether it is β-acyclic, which is what the
benchmark harness and the engine's automatic algorithm selection consume.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import QueryError
from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable


EDGE = "edge"
_VARIABLE_NAMES = string.ascii_lowercase


def _variables(count: int) -> List[Variable]:
    if count > len(_VARIABLE_NAMES):
        raise QueryError(f"patterns with more than {len(_VARIABLE_NAMES)} variables "
                         f"are not supported")
    return [Variable(name) for name in _VARIABLE_NAMES[:count]]


def _edge(u: Variable, v: Variable, relation: str = EDGE) -> Atom:
    return Atom(relation, (u, v))


def _ordering_chain(variables: Sequence[Variable]) -> List[ComparisonAtom]:
    """The symmetry-breaking chain ``v0 < v1 < ... < vk``."""
    return [
        ComparisonAtom(variables[i], "<", variables[i + 1])
        for i in range(len(variables) - 1)
    ]


# ----------------------------------------------------------------------
# Individual builders
# ----------------------------------------------------------------------
def clique_query(k: int, relation: str = EDGE,
                 symmetry_breaking: bool = True) -> ConjunctiveQuery:
    """The k-clique query (3-clique is the triangle query)."""
    if k < 2:
        raise QueryError("a clique needs at least two nodes")
    variables = _variables(k)
    atoms = [
        _edge(variables[i], variables[j], relation)
        for i in range(k) for j in range(i + 1, k)
    ]
    filters = _ordering_chain(variables) if symmetry_breaking else []
    return ConjunctiveQuery(atoms, filters)


def cycle_query(k: int, relation: str = EDGE,
                symmetry_breaking: bool = True) -> ConjunctiveQuery:
    """The k-cycle query; the paper benchmarks ``k = 4``.

    Following the paper's formulation the symmetry-breaking filter is the
    full chain ``a < b < c < d``.
    """
    if k < 3:
        raise QueryError("a cycle needs at least three nodes")
    variables = _variables(k)
    atoms = [
        _edge(variables[i], variables[i + 1], relation) for i in range(k - 1)
    ]
    atoms.append(_edge(variables[0], variables[k - 1], relation))
    filters = _ordering_chain(variables) if symmetry_breaking else []
    return ConjunctiveQuery(atoms, filters)


def path_query(length: int, relation: str = EDGE,
               samples: Tuple[str, str] = ("v1", "v2")) -> ConjunctiveQuery:
    """The ``length``-path query between two sampled endpoint sets.

    ``length`` counts edges; the 3-path query of the paper is
    ``v1(a), v2(d), edge(a,b), edge(b,c), edge(c,d)``.
    """
    if length < 1:
        raise QueryError("a path needs at least one edge")
    variables = _variables(length + 1)
    atoms: List[Atom] = [
        Atom(samples[0], (variables[0],)),
        Atom(samples[1], (variables[-1],)),
    ]
    atoms.extend(
        _edge(variables[i], variables[i + 1], relation) for i in range(length)
    )
    return ConjunctiveQuery(atoms)


def tree_query(depth: int, relation: str = EDGE,
               sample_prefix: str = "v") -> ConjunctiveQuery:
    """The complete-binary-tree query with ``2**depth`` sampled leaves.

    ``depth = 1`` is the paper's 1-tree (``v1(b), v2(c), edge(a,b),
    edge(a,c)``); ``depth = 2`` the 2-tree with four leaves, each drawn from
    a different sample relation ``v1 ... v4``.
    """
    if depth < 1:
        raise QueryError("tree depth must be at least 1")
    num_nodes = 2 ** (depth + 1) - 1
    variables = _variables(num_nodes)
    atoms: List[Atom] = []
    # Internal node i has children 2i+1 and 2i+2 (heap numbering).
    num_internal = 2 ** depth - 1
    for i in range(num_internal):
        atoms.append(_edge(variables[i], variables[2 * i + 1], relation))
        atoms.append(_edge(variables[i], variables[2 * i + 2], relation))
    leaves = variables[num_internal:]
    sample_atoms = [
        Atom(f"{sample_prefix}{index + 1}", (leaf,))
        for index, leaf in enumerate(leaves)
    ]
    return ConjunctiveQuery(sample_atoms + atoms)


def comb_query(relation: str = EDGE,
               samples: Tuple[str, str] = ("v1", "v2")) -> ConjunctiveQuery:
    """The 2-comb query: a left-deep binary tree with two sampled leaves.

    ``v1(c), v2(d), edge(a,b), edge(a,c), edge(b,d)``.
    """
    a, b, c, d = _variables(4)
    atoms = [
        Atom(samples[0], (c,)),
        Atom(samples[1], (d,)),
        _edge(a, b, relation),
        _edge(a, c, relation),
        _edge(b, d, relation),
    ]
    return ConjunctiveQuery(atoms)


def lollipop_query(path_length: int, relation: str = EDGE,
                   sample: str = "v1") -> ConjunctiveQuery:
    """The ``path_length``-lollipop: a path glued to a (path_length+1)-clique.

    The 2-lollipop is ``v1(a), edge(a,b), edge(b,c), edge(c,d), edge(d,e),
    edge(c,e)`` — a 2-path ``a-b-c`` followed by the triangle ``c, d, e``.
    The 3-lollipop extends the path by one edge and the clique to four
    nodes, "in the same manner".
    """
    if path_length < 1:
        raise QueryError("lollipop path length must be at least 1")
    clique_size = path_length + 1
    num_variables = path_length + clique_size
    variables = _variables(num_variables)
    path_vars = variables[:path_length + 1]
    clique_vars = variables[path_length:]

    atoms: List[Atom] = [Atom(sample, (path_vars[0],))]
    atoms.extend(
        _edge(path_vars[i], path_vars[i + 1], relation)
        for i in range(path_length)
    )
    atoms.extend(
        _edge(clique_vars[i], clique_vars[j], relation)
        for i in range(clique_size) for j in range(i + 1, clique_size)
    )
    return ConjunctiveQuery(atoms)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PatternSpec:
    """A named benchmark pattern plus the metadata the harness needs."""

    name: str
    builder: Callable[[], ConjunctiveQuery]
    sample_relations: Tuple[str, ...]
    cyclic: bool
    description: str

    def build(self) -> ConjunctiveQuery:
        """Construct a fresh query instance for this pattern."""
        return self.builder()


QUERY_PATTERNS: Dict[str, PatternSpec] = {
    "3-clique": PatternSpec(
        name="3-clique",
        builder=lambda: clique_query(3),
        sample_relations=(),
        cyclic=True,
        description="triangles: every pair of three nodes connected",
    ),
    "4-clique": PatternSpec(
        name="4-clique",
        builder=lambda: clique_query(4),
        sample_relations=(),
        cyclic=True,
        description="4-cliques: every pair of four nodes connected",
    ),
    "4-cycle": PatternSpec(
        name="4-cycle",
        builder=lambda: cycle_query(4),
        sample_relations=(),
        cyclic=True,
        description="cycles of length four",
    ),
    "3-path": PatternSpec(
        name="3-path",
        builder=lambda: path_query(3),
        sample_relations=("v1", "v2"),
        cyclic=False,
        description="paths of three edges between sampled endpoints",
    ),
    "4-path": PatternSpec(
        name="4-path",
        builder=lambda: path_query(4),
        sample_relations=("v1", "v2"),
        cyclic=False,
        description="paths of four edges between sampled endpoints",
    ),
    "1-tree": PatternSpec(
        name="1-tree",
        builder=lambda: tree_query(1),
        sample_relations=("v1", "v2"),
        cyclic=False,
        description="complete binary trees with two sampled leaves",
    ),
    "2-tree": PatternSpec(
        name="2-tree",
        builder=lambda: tree_query(2),
        sample_relations=("v1", "v2", "v3", "v4"),
        cyclic=False,
        description="complete binary trees with four sampled leaves",
    ),
    "2-comb": PatternSpec(
        name="2-comb",
        builder=lambda: comb_query(),
        sample_relations=("v1", "v2"),
        cyclic=False,
        description="left-deep binary trees with two sampled leaves",
    ),
    "2-lollipop": PatternSpec(
        name="2-lollipop",
        builder=lambda: lollipop_query(2),
        sample_relations=("v1",),
        cyclic=True,
        description="a 2-path followed by a triangle",
    ),
    "3-lollipop": PatternSpec(
        name="3-lollipop",
        builder=lambda: lollipop_query(3),
        sample_relations=("v1",),
        cyclic=True,
        description="a 3-path followed by a 4-clique",
    ),
}


def pattern(name: str) -> PatternSpec:
    """Look up a pattern by name, with a helpful error for typos."""
    try:
        return QUERY_PATTERNS[name]
    except KeyError:
        known = ", ".join(sorted(QUERY_PATTERNS))
        raise QueryError(f"unknown query pattern {name!r}; known patterns: {known}") \
            from None


def build_query(name: str) -> ConjunctiveQuery:
    """Build the query for a named pattern."""
    return pattern(name).build()
