"""Recursive Datalog evaluation by semi-naive fixpoint iteration.

A :class:`Rule` is a Datalog rule ``head(X, ...) :- body``, where the body
is a conjunctive query over base (EDB) relations and derived (IDB)
relations.  A :class:`RecursiveProgram` is a set of rules evaluated to a
fixpoint by :class:`SemiNaiveEvaluator`:

* iteration 0 evaluates every rule over the base relations only;
* each later iteration evaluates, for every rule and every IDB atom in its
  body, a *delta rule* in which that atom ranges over the tuples derived in
  the previous iteration — the standard semi-naive optimisation that avoids
  re-deriving old facts;
* the evaluator stops when an iteration derives nothing new.

Rule bodies are ordinary :class:`~repro.datalog.query.ConjunctiveQuery`
objects, so they are executed by the library's join algorithms (LFTJ by
default); the recursion layer only manages the derived relations, the
deltas, and the fixpoint loop.  This is exactly how a LogicBlox-style
engine runs recursive LogiQL on top of its join primitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable, is_variable
from repro.joins.base import JoinAlgorithm
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.util import TimeBudget


@dataclass(frozen=True)
class Rule:
    """One Datalog rule: ``head :- body_atoms, filters``.

    The head must use only variables that occur in the body.  Constants in
    the head are allowed (they are emitted verbatim).
    """

    head: Atom
    body: Tuple[Atom, ...]
    filters: Tuple[ComparisonAtom, ...] = ()

    def __init__(self, head: Atom, body: Sequence[Atom],
                 filters: Sequence[ComparisonAtom] = ()) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "filters", tuple(filters))
        if not self.body:
            raise QueryError("a rule needs at least one body atom")
        body_variables = set()
        for atom in self.body:
            body_variables.update(atom.variables)
        for term in self.head.terms:
            if is_variable(term) and term not in body_variables:
                raise QueryError(
                    f"head variable {term} of rule for {self.head.name!r} does "
                    f"not occur in the body"
                )

    @property
    def head_name(self) -> str:
        return self.head.name

    def body_relation_names(self) -> Set[str]:
        return {atom.name for atom in self.body}

    def __str__(self) -> str:
        body = ", ".join([str(a) for a in self.body] + [str(f) for f in self.filters])
        return f"{self.head} :- {body}"


@dataclass
class RecursiveProgram:
    """A set of rules defining one or more derived (IDB) relations."""

    rules: List[Rule] = field(default_factory=list)

    def add(self, rule: Rule) -> "RecursiveProgram":
        self.rules.append(rule)
        return self

    @property
    def derived_names(self) -> Set[str]:
        """Names of the relations defined by some rule head."""
        return {rule.head_name for rule in self.rules}

    def arity_of(self, name: str) -> int:
        for rule in self.rules:
            if rule.head_name == name:
                return rule.head.arity
        raise QueryError(f"no rule defines relation {name!r}")

    def validate(self) -> None:
        """Check arity consistency of every derived relation."""
        arities: Dict[str, int] = {}
        for rule in self.rules:
            previous = arities.get(rule.head_name)
            if previous is None:
                arities[rule.head_name] = rule.head.arity
            elif previous != rule.head.arity:
                raise QueryError(
                    f"derived relation {rule.head_name!r} defined with arities "
                    f"{previous} and {rule.head.arity}"
                )


@dataclass
class FixpointStatistics:
    """Diagnostics from one fixpoint evaluation."""

    iterations: int = 0
    facts_derived: Dict[str, int] = field(default_factory=dict)
    delta_sizes: List[int] = field(default_factory=list)


class SemiNaiveEvaluator:
    """Evaluate a :class:`RecursiveProgram` to fixpoint over a database.

    Parameters
    ----------
    algorithm_factory:
        Builds the join algorithm used for every rule-body evaluation;
        defaults to Leapfrog Triejoin.
    budget:
        Optional soft time budget shared by the whole fixpoint computation.
    max_iterations:
        Safety valve; the fixpoint of a positive Datalog program always
        terminates, but a generous cap keeps programming errors from
        spinning.
    """

    def __init__(self,
                 algorithm_factory: Optional[Callable[[], JoinAlgorithm]] = None,
                 budget: Optional[TimeBudget] = None,
                 max_iterations: int = 10_000) -> None:
        self.algorithm_factory = algorithm_factory or LeapfrogTrieJoin
        self.budget = budget or TimeBudget.unlimited()
        self.max_iterations = max_iterations
        self.last_statistics: Optional[FixpointStatistics] = None

    # ------------------------------------------------------------------
    def evaluate(self, program: RecursiveProgram,
                 database: Database) -> Dict[str, Relation]:
        """Return every derived relation at fixpoint.

        The input database is not modified; derived relations shadow base
        relations of the same name during evaluation (which is an error in
        well-formed programs and rejected up front).
        """
        program.validate()
        derived_names = program.derived_names
        for name in derived_names:
            if name in database:
                raise QueryError(
                    f"derived relation {name!r} clashes with a base relation"
                )

        # total[name] holds all facts derived so far; delta[name] those new
        # in the previous iteration.
        total: Dict[str, Set[Tuple[int, ...]]] = {n: set() for n in derived_names}
        statistics = FixpointStatistics()

        working = database.copy()
        self._install(working, program, total)

        # Iteration 0: plain evaluation of every rule (IDB atoms are empty).
        delta = self._round(program, working, total, deltas=None)
        self._merge(total, delta)
        statistics.delta_sizes.append(sum(len(v) for v in delta.values()))

        while any(delta.values()):
            statistics.iterations += 1
            if statistics.iterations > self.max_iterations:
                raise QueryError("fixpoint did not converge within max_iterations")
            self.budget.check_now()
            self._install(working, program, total)
            new_facts = self._round(program, working, total, deltas=delta)
            # Keep only genuinely new facts.
            delta = {
                name: {row for row in rows if row not in total[name]}
                for name, rows in new_facts.items()
            }
            self._merge(total, delta)
            statistics.delta_sizes.append(sum(len(v) for v in delta.values()))

        statistics.facts_derived = {name: len(rows) for name, rows in total.items()}
        self.last_statistics = statistics
        return {
            name: Relation(name, program.arity_of(name), rows)
            for name, rows in total.items()
        }

    # ------------------------------------------------------------------
    # One evaluation round
    # ------------------------------------------------------------------
    def _round(self, program: RecursiveProgram, working: Database,
               total: Dict[str, Set[Tuple[int, ...]]],
               deltas: Optional[Dict[str, Set[Tuple[int, ...]]]]
               ) -> Dict[str, Set[Tuple[int, ...]]]:
        """Evaluate every rule once; with ``deltas`` use semi-naive rewriting."""
        derived = program.derived_names
        out: Dict[str, Set[Tuple[int, ...]]] = {n: set() for n in derived}
        for rule in program.rules:
            idb_positions = [
                index for index, atom in enumerate(rule.body)
                if atom.name in derived
            ]
            if deltas is None or not idb_positions:
                if deltas is not None:
                    # Semi-naive: rules without IDB atoms derive nothing new
                    # after iteration 0.
                    continue
                out[rule.head_name] |= self._evaluate_rule(rule, working, {})
                continue
            # One delta rule per IDB atom occurrence.
            for delta_position in idb_positions:
                atom = rule.body[delta_position]
                delta_rows = deltas.get(atom.name, set())
                if not delta_rows:
                    continue
                out[rule.head_name] |= self._evaluate_rule(
                    rule, working, {delta_position: delta_rows}
                )
        return out

    def _evaluate_rule(self, rule: Rule, working: Database,
                       delta_overrides: Dict[int, Set[Tuple[int, ...]]]
                       ) -> Set[Tuple[int, ...]]:
        """Evaluate one (possibly delta-rewritten) rule body."""
        scratch = working.copy()
        body_atoms = list(rule.body)
        for position, rows in delta_overrides.items():
            atom = rule.body[position]
            delta_name = f"__delta_{atom.name}_{position}"
            scratch.add(Relation(delta_name, atom.arity, rows), replace=True)
            body_atoms[position] = Atom(delta_name, atom.terms)
        query = ConjunctiveQuery(body_atoms, rule.filters)
        algorithm = self.algorithm_factory()
        algorithm.budget = self.budget
        results: Set[Tuple[int, ...]] = set()
        for binding in algorithm.enumerate_bindings(scratch, query):
            row = tuple(
                binding[term] if is_variable(term) else term.value
                for term in rule.head.terms
            )
            results.add(row)
        return results

    # ------------------------------------------------------------------
    # Bookkeeping helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _install(working: Database, program: RecursiveProgram,
                 total: Dict[str, Set[Tuple[int, ...]]]) -> None:
        """Expose the current derived facts as relations in the working catalog."""
        for name, rows in total.items():
            working.add(Relation(name, program.arity_of(name), rows), replace=True)

    @staticmethod
    def _merge(total: Dict[str, Set[Tuple[int, ...]]],
               delta: Dict[str, Set[Tuple[int, ...]]]) -> None:
        for name, rows in delta.items():
            total[name] |= rows


# ----------------------------------------------------------------------
# Canned programs
# ----------------------------------------------------------------------
def transitive_closure_program(edge_relation: str = "edge",
                               closure_relation: str = "tc") -> RecursiveProgram:
    """The textbook linear transitive-closure program::

        tc(x, y) :- edge(x, y).
        tc(x, y) :- tc(x, z), edge(z, y).
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    base = Rule(Atom(closure_relation, (x, y)), [Atom(edge_relation, (x, y))])
    step = Rule(
        Atom(closure_relation, (x, y)),
        [Atom(closure_relation, (x, z)), Atom(edge_relation, (z, y))],
    )
    return RecursiveProgram([base, step])


def reachability_program(source: int, edge_relation: str = "edge",
                         reach_relation: str = "reach") -> RecursiveProgram:
    """Single-source reachability::

        reach(s).
        reach(y) :- reach(x), edge(x, y).

    The seed fact is expressed as a rule with a constant head over a body
    that is trivially satisfied by the edge relation's own tuples.
    """
    x, y = Variable("x"), Variable("y")
    seed = Rule(Atom(reach_relation, (Constant(source),)),
                [Atom(edge_relation, (Variable("u"), Variable("v")))])
    step = Rule(Atom(reach_relation, (y,)),
                [Atom(reach_relation, (x,)), Atom(edge_relation, (x, y))])
    return RecursiveProgram([seed, step])
