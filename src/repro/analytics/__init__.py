"""Recursive queries and graph-style analytics (the paper's future work).

The conclusion of the paper names two directions: extending the benchmark
to *recursive queries* and to *more graph-style processing (e.g., BFS,
shortest path, page rank)*.  This package implements both on top of the
library's relational substrate:

* :mod:`repro.analytics.recursive` — Datalog rules with recursion,
  evaluated by semi-naive fixpoint iteration; every rule body is a
  conjunctive query executed by any registered join algorithm, so the
  worst-case optimal joins drive recursion too (transitive closure,
  reachability, same-generation, ...).
* :mod:`repro.analytics.graph_algorithms` — BFS levels, single-source
  shortest paths (unweighted), connected components, and PageRank, each
  available in two forms: a *relational* implementation driven by the
  recursive engine and a *direct* adjacency-based implementation (the
  graph-engine way), which cross-check each other in the tests.
"""

from repro.analytics.recursive import (
    Rule,
    RecursiveProgram,
    SemiNaiveEvaluator,
    transitive_closure_program,
)
from repro.analytics.graph_algorithms import (
    bfs_levels,
    connected_components,
    pagerank,
    reachable_from,
    shortest_path_lengths,
)

__all__ = [
    "RecursiveProgram",
    "Rule",
    "SemiNaiveEvaluator",
    "bfs_levels",
    "connected_components",
    "pagerank",
    "reachable_from",
    "shortest_path_lengths",
    "transitive_closure_program",
]
