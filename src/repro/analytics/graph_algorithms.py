"""Graph-style analytics over the relational substrate.

The paper's conclusion lists BFS, shortest paths, and PageRank as the next
workloads a join-based engine should absorb.  Each algorithm here comes in
two interchangeable implementations:

* a **relational** one, expressed with conjunctive queries / the recursive
  evaluator and executed by the library's join algorithms — demonstrating
  that the same engine that answers graph-pattern queries also covers
  iterative graph analytics;
* a **direct** one over adjacency lists — the specialised-graph-engine way
  — used as the oracle in tests and as the baseline when benchmarking.

All functions accept either a :class:`~repro.storage.database.Database`
containing an ``edge`` relation or the edge :class:`Relation` itself.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import DatasetError, QueryError
from repro.analytics.recursive import SemiNaiveEvaluator, reachability_program
from repro.storage.database import Database
from repro.storage.relation import Relation

GraphSource = Union[Database, Relation]


def _edge_relation(source: GraphSource, relation_name: str = "edge") -> Relation:
    if isinstance(source, Relation):
        relation = source
    else:
        relation = source.relation(relation_name)
    if relation.arity != 2:
        raise DatasetError(
            f"graph analytics need a binary edge relation, got arity {relation.arity}"
        )
    return relation


def _adjacency(relation: Relation, undirected: bool) -> Dict[int, List[int]]:
    adjacency: Dict[int, Set[int]] = {}
    for u, v in relation:
        adjacency.setdefault(u, set()).add(v)
        adjacency.setdefault(v, set())
        if undirected:
            adjacency[v].add(u)
    return {node: sorted(neighbours) for node, neighbours in adjacency.items()}


# ----------------------------------------------------------------------
# Reachability / BFS / shortest paths
# ----------------------------------------------------------------------
def bfs_levels(source: GraphSource, start: int, undirected: bool = True,
               relation_name: str = "edge") -> Dict[int, int]:
    """Breadth-first levels from ``start`` (direct adjacency implementation)."""
    relation = _edge_relation(source, relation_name)
    adjacency = _adjacency(relation, undirected)
    if start not in adjacency:
        raise QueryError(f"start node {start} does not appear in the graph")
    levels = {start: 0}
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in levels:
                levels[neighbour] = levels[node] + 1
                frontier.append(neighbour)
    return levels


def shortest_path_lengths(source: GraphSource, start: int,
                          undirected: bool = True,
                          relation_name: str = "edge") -> Dict[int, int]:
    """Unweighted single-source shortest paths (identical to BFS levels)."""
    return bfs_levels(source, start, undirected=undirected,
                      relation_name=relation_name)


def reachable_from(source: GraphSource, start: int, engine: str = "relational",
                   relation_name: str = "edge") -> Set[int]:
    """The set of nodes reachable from ``start`` following edge direction.

    ``engine="relational"`` runs the recursive Datalog program
    ``reach(y) :- reach(x), edge(x, y)`` through the semi-naive evaluator
    (worst-case optimal joins underneath); ``engine="direct"`` runs a plain
    graph traversal.  Both include ``start`` itself.
    """
    relation = _edge_relation(source, relation_name)
    if engine == "direct":
        adjacency = _adjacency(relation, undirected=False)
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for neighbour in adjacency.get(node, ()):  # directed successors
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return seen
    if engine != "relational":
        raise QueryError(f"unknown reachability engine {engine!r}")
    database = Database([Relation(relation_name, 2, relation.tuples)])
    program = reachability_program(start, edge_relation=relation_name)
    results = SemiNaiveEvaluator().evaluate(program, database)
    return {row[0] for row in results["reach"]} | {start}


# ----------------------------------------------------------------------
# Connected components
# ----------------------------------------------------------------------
def connected_components(source: GraphSource,
                         relation_name: str = "edge") -> Dict[int, int]:
    """Map every node to a component identifier (smallest node in it)."""
    relation = _edge_relation(source, relation_name)
    adjacency = _adjacency(relation, undirected=True)
    component: Dict[int, int] = {}
    for node in sorted(adjacency):
        if node in component:
            continue
        members = []
        stack = [node]
        seen = {node}
        while stack:
            current = stack.pop()
            members.append(current)
            for neighbour in adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        label = min(members)
        for member in members:
            component[member] = label
    return component


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
def pagerank(source: GraphSource, damping: float = 0.85,
             iterations: int = 30, tolerance: float = 1e-8,
             relation_name: str = "edge") -> Dict[int, float]:
    """Power-iteration PageRank over the (directed) edge relation.

    Dangling nodes redistribute their mass uniformly, the usual convention.
    Stops early when the L1 change drops below ``tolerance``.
    """
    if not 0.0 < damping < 1.0:
        raise QueryError("damping factor must be in (0, 1)")
    if iterations < 1:
        raise QueryError("need at least one iteration")
    relation = _edge_relation(source, relation_name)
    successors = _adjacency(relation, undirected=False)
    nodes = sorted(successors)
    if not nodes:
        return {}
    count = len(nodes)
    rank = {node: 1.0 / count for node in nodes}
    for _ in range(iterations):
        dangling_mass = sum(
            rank[node] for node in nodes if not successors[node]
        )
        next_rank = {
            node: (1.0 - damping) / count + damping * dangling_mass / count
            for node in nodes
        }
        for node in nodes:
            out_degree = len(successors[node])
            if not out_degree:
                continue
            share = damping * rank[node] / out_degree
            for neighbour in successors[node]:
                next_rank[neighbour] += share
        change = sum(abs(next_rank[node] - rank[node]) for node in nodes)
        rank = next_rank
        if change < tolerance:
            break
    return rank
