"""The result cache: skip execution entirely for repeated identical queries.

Entries are keyed by ``(canonical query text, algorithm, mode)`` and record
the *versions* of every relation the query reads, as tracked by
:class:`repro.storage.database.Database`.  Invalidation is statistics-aware
in the same sense the catalog's own caches are: the database bumps a
relation's version on every ``add``/``remove`` (the events that also drop
its cached indexes and :class:`RelationStatistics`), and the cache

* eagerly drops dependent entries when subscribed to the database's change
  feed (:meth:`attach`), and
* validates recorded versions on every lookup, so even a cache attached
  late — or fed by a database mutated while a lookup raced — never returns
  a result computed against stale relations.

The cache is a bounded, thread-safe LRU; the worker pool reads and writes
it concurrently while catalog mutations fire the invalidation listener.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import global_registry
from repro.storage.database import Database

ResultKey = Tuple[str, str, str]


def _record(event: str) -> None:
    global_registry().counter("repro_cache_requests_total").inc(
        cache="result", event=event
    )


@dataclass
class ResultCacheStats:
    """Counters describing result-cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    value: object
    # relation name -> relation version at computation time
    dependencies: Dict[str, int] = field(default_factory=dict)


class ResultCache:
    """LRU of query results with per-relation version invalidation."""

    def __init__(self, database: Database, capacity: int = 256,
                 attach: bool = True) -> None:
        if capacity < 1:
            raise ValueError("result cache capacity must be at least 1")
        self.capacity = capacity
        self.database = database
        self._entries: "OrderedDict[ResultKey, _Entry]" = OrderedDict()
        # relation name -> keys of entries that read it (the dependency index
        # that makes invalidation O(dependents), not O(cache)).
        self._dependents: Dict[str, set] = {}
        self._lock = threading.RLock()
        self.stats = ResultCacheStats()
        self._listener = None
        if attach:
            self.attach()

    # ------------------------------------------------------------------
    # Database change feed
    # ------------------------------------------------------------------
    def attach(self) -> None:
        """Subscribe to the database so relation changes evict eagerly."""
        if self._listener is None:
            self._listener = self.database.subscribe(self.invalidate_relation)

    def detach(self) -> None:
        """Stop listening to database changes (lookups still validate)."""
        if self._listener is not None:
            self.database.unsubscribe(self._listener)
            self._listener = None

    def invalidate_relation(self, name: str) -> None:
        """Drop every cached result that reads relation ``name``."""
        with self._lock:
            for key in self._dependents.pop(name, set()):
                if self._entries.pop(key, None) is not None:
                    self.stats.invalidations += 1

    # ------------------------------------------------------------------
    # LRU operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._dependents.clear()

    def snapshot(self, names: Sequence[str]) -> Dict[str, int]:
        """The current versions of ``names`` — take this *before* executing.

        Passing a pre-execution snapshot to :meth:`store` closes the race
        where a relation changes mid-execution: the stored entry then
        carries the old versions and the next lookup rejects it, instead
        of a stale answer being blessed with post-change versions.
        """
        return {name: self.database.relation_version(name) for name in names}

    def lookup(self, key: ResultKey) -> Optional[_Entry]:
        """Return the live entry for ``key`` or ``None``.

        An entry whose recorded relation versions no longer match the
        database is treated as a miss and removed.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _record("miss")
                return None
            for name, version in entry.dependencies.items():
                if self.database.relation_version(name) != version:
                    self._discard(key)
                    self.stats.invalidations += 1
                    self.stats.misses += 1
                    _record("invalidation")
                    _record("miss")
                    return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _record("hit")
            return entry

    def store(self, key: ResultKey, dependencies, value: object) -> None:
        """Insert a result.

        ``dependencies`` is either a mapping ``{relation name: version}``
        taken with :meth:`snapshot` *before* the result was computed (the
        race-free form), or a plain sequence of relation names, in which
        case the current versions are recorded — only safe when no writer
        can run concurrently with the computation.
        """
        if not isinstance(dependencies, dict):
            dependencies = self.snapshot(tuple(dependencies))
        with self._lock:
            if key in self._entries:
                self._discard(key)
            self._entries[key] = _Entry(
                value=value, dependencies=dict(dependencies)
            )
            for name in dependencies:
                self._dependents.setdefault(name, set()).add(key)
            while len(self._entries) > self.capacity:
                oldest = next(iter(self._entries))
                self._discard(oldest)
                self.stats.evictions += 1

    def _discard(self, key: ResultKey) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        for name in entry.dependencies:
            dependents = self._dependents.get(name)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._dependents[name]

    def keys(self) -> List[ResultKey]:
        """Current keys, most recently used last."""
        with self._lock:
            return list(self._entries)
