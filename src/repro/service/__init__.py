"""``repro.service`` — the concurrent query-serving subsystem.

Layers (each importable on its own):

* :mod:`repro.service.plan_cache` — LRU of compiled
  :class:`~repro.engine.PreparedQuery` plans keyed by normalized text +
  algorithm.
* :mod:`repro.service.result_cache` — LRU of query answers with
  per-relation version invalidation driven by the
  :class:`~repro.storage.database.Database` change feed.
* :mod:`repro.service.executor` — bounded worker pool with admission
  control.
* :mod:`repro.service.cursors` — server-side cursor registry (open
  result streams paged by remote clients, with idle expiry) and
  per-connection statistics.
* :mod:`repro.service.service` — :class:`QueryService`, the request path
  composing plan cache → result cache → pool → engine.
* :mod:`repro.service.workload` — declarative workload specs
  (query mix + Zipf/uniform parameters) and the QPS-paced runner.
"""

from repro.service.cursors import CursorRegistry, CursorStats, ServerCursor
from repro.service.executor import WorkerPool, WorkerPoolStats
from repro.service.plan_cache import PlanCache, PlanCacheStats, normalize_query_text
from repro.service.prepared import PreparedRegistry, PreparedStatement, PreparedStats
from repro.service.result_cache import ResultCache, ResultCacheStats
from repro.service.service import (
    QueryOutcome,
    QueryService,
    ServiceConfig,
    ServiceStats,
)
from repro.service.workload import (
    ParameterSpec,
    WorkloadQuery,
    WorkloadReport,
    WorkloadRunner,
    WorkloadSpec,
    percentile,
    run_workload,
    summarize_latencies,
)

__all__ = [
    "CursorRegistry",
    "CursorStats",
    "ParameterSpec",
    "PlanCache",
    "PlanCacheStats",
    "PreparedRegistry",
    "PreparedStatement",
    "PreparedStats",
    "QueryOutcome",
    "QueryService",
    "ResultCache",
    "ResultCacheStats",
    "ServerCursor",
    "ServiceConfig",
    "ServiceStats",
    "WorkerPool",
    "WorkerPoolStats",
    "WorkloadQuery",
    "WorkloadReport",
    "WorkloadRunner",
    "WorkloadSpec",
    "normalize_query_text",
    "percentile",
    "run_workload",
    "summarize_latencies",
]
