"""Declarative workloads: parameterized query streams driven at a target QPS.

The serving workloads this subsystem targets (e.g. the LDBC social-network
query mixes analyzed for the SIGMOD 2014 programming contest) are streams
of a few *query shapes* instantiated with skewed parameters.  A
:class:`WorkloadSpec` captures that declaratively:

* a list of :class:`WorkloadQuery` templates — query text with
  ``{placeholder}`` holes, a mix weight, an algorithm, and a mode;
* per-placeholder :class:`ParameterSpec` distributions — ``uniform`` or
  ``zipf`` over a finite value domain (Zipf skew is what makes result
  caches pay off: hot parameters recur);
* a total operation count, an optional target request rate (QPS), and a
  seed that makes the whole stream deterministic.

:class:`WorkloadRunner` drives the stream against a
:class:`~repro.service.service.QueryService` in open-loop fashion (request
start times follow the target rate regardless of completion times, the
standard way to avoid coordinated omission), gathers end-to-end latencies,
and reports throughput and percentiles through
:mod:`repro.bench.reporting`.
"""

from __future__ import annotations

import bisect
import itertools
import json
import string
import time
from concurrent.futures import Future, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.bench.reporting import format_matrix
from repro.errors import AdmissionError, WorkloadError
from repro.service.service import QueryOutcome, QueryService
from repro.util import deterministic_rng


# ----------------------------------------------------------------------
# Percentile math
# ----------------------------------------------------------------------
def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Matches numpy's default ("linear") method: for sorted values
    ``v_0..v_{n-1}`` the rank is ``q/100 * (n-1)`` and the result
    interpolates between the neighbouring order statistics.
    """
    if not values:
        raise WorkloadError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise WorkloadError(f"percentile {q} out of range [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def summarize_latencies(values: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p90 / p99 / max of a latency sample (seconds)."""
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p90": 0.0,
                "p99": 0.0, "max": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p90": percentile(values, 90),
        "p99": percentile(values, 99),
        "max": max(values),
    }


# ----------------------------------------------------------------------
# Parameter distributions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParameterSpec:
    """How to draw values for one ``{placeholder}`` of a query template.

    ``distribution`` is ``"uniform"`` or ``"zipf"``; ``values`` is the
    finite domain (for Zipf, rank order: ``values[0]`` is the hottest).
    ``skew`` is the Zipf exponent ``s`` (weights ``1/rank**s``).
    """

    name: str
    values: Tuple[int, ...]
    distribution: str = "uniform"
    skew: float = 1.0

    def __post_init__(self) -> None:
        if not self.values:
            raise WorkloadError(f"parameter {self.name!r} has an empty domain")
        if self.distribution not in ("uniform", "zipf"):
            raise WorkloadError(
                f"parameter {self.name!r}: unknown distribution "
                f"{self.distribution!r} (expected 'uniform' or 'zipf')"
            )
        if self.distribution == "zipf" and self.skew <= 0:
            raise WorkloadError(
                f"parameter {self.name!r}: zipf skew must be positive"
            )

    def sampler(self, rng) -> Callable[[], int]:
        """A zero-argument draw function bound to ``rng``."""
        if self.distribution == "uniform":
            values = self.values
            return lambda: rng.choice(values)
        # Zipf over ranks 1..n via inverse-CDF on precomputed cumulative
        # weights; O(log n) per draw.
        weights = [1.0 / (rank ** self.skew)
                   for rank in range(1, len(self.values) + 1)]
        cumulative = list(itertools.accumulate(weights))
        total = cumulative[-1]
        values = self.values

        def draw() -> int:
            point = rng.random() * total
            return values[bisect.bisect_left(cumulative, point)]

        return draw


@dataclass(frozen=True)
class WorkloadQuery:
    """One template of the mix: text with holes, weight, and execution knobs."""

    name: str
    template: str
    weight: float = 1.0
    algorithm: str = "auto"
    mode: str = "count"
    parameters: Tuple[ParameterSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise WorkloadError(f"query {self.name!r}: weight must be positive")
        if self.mode not in ("count", "tuples"):
            raise WorkloadError(
                f"query {self.name!r}: unknown mode {self.mode!r} "
                f"(expected 'count' or 'tuples')"
            )
        placeholders = {
            field_name
            for _, field_name, _, _ in string.Formatter().parse(self.template)
            if field_name
        }
        declared = {p.name for p in self.parameters}
        if placeholders != declared:
            raise WorkloadError(
                f"query {self.name!r}: template placeholders {sorted(placeholders)} "
                f"do not match declared parameters {sorted(declared)}"
            )

    def instantiate(self, samplers: Mapping[str, Callable[[], int]]) -> str:
        """Fill the template with one draw from every parameter."""
        if not self.parameters:
            return self.template
        return self.template.format(
            **{p.name: samplers[p.name]() for p in self.parameters}
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A full workload: the query mix plus stream shape."""

    name: str
    queries: Tuple[WorkloadQuery, ...]
    operations: int = 100
    qps: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.queries:
            raise WorkloadError("a workload needs at least one query")
        if self.operations < 1:
            raise WorkloadError("operations must be at least 1")
        if self.qps is not None and self.qps <= 0:
            raise WorkloadError("qps must be positive when given")
        names = [q.name for q in self.queries]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate query names in workload: {names}")

    # ------------------------------------------------------------------
    # Declarative loading
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping) -> "WorkloadSpec":
        """Build a spec from a JSON-shaped dict (see ``examples/``).

        Schema::

            {"name": "...", "operations": 200, "qps": null, "seed": 0,
             "queries": [
               {"name": "two-hop", "weight": 3,
                "template": "edge({src}, b), edge(b, c)",
                "algorithm": "auto", "mode": "count",
                "parameters": [
                  {"name": "src", "distribution": "zipf", "skew": 1.2,
                   "values": [0, 1, 2, ...]}]}]}
        """
        try:
            queries = tuple(
                WorkloadQuery(
                    name=q["name"],
                    template=q["template"],
                    weight=float(q.get("weight", 1.0)),
                    algorithm=q.get("algorithm", "auto"),
                    mode=q.get("mode", "count"),
                    parameters=tuple(
                        ParameterSpec(
                            name=p["name"],
                            values=tuple(int(v) for v in p["values"]),
                            distribution=p.get("distribution", "uniform"),
                            skew=float(p.get("skew", 1.0)),
                        )
                        for p in q.get("parameters", ())
                    ),
                )
                for q in data["queries"]
            )
        except KeyError as missing:
            raise WorkloadError(f"workload spec missing field {missing}") from None
        return cls(
            name=data.get("name", "workload"),
            queries=queries,
            operations=int(data.get("operations", 100)),
            qps=(float(data["qps"]) if data.get("qps") is not None else None),
            seed=int(data.get("seed", 0)),
        )

    @classmethod
    def from_json(cls, path: str) -> "WorkloadSpec":
        """Load a spec from a JSON file (bad files raise WorkloadError)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
        except OSError as error:
            raise WorkloadError(
                f"cannot read workload spec {path!r}: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise WorkloadError(
                f"workload spec {path!r} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    # ------------------------------------------------------------------
    # Stream generation
    # ------------------------------------------------------------------
    def requests(self) -> Iterator[Tuple[WorkloadQuery, str]]:
        """The deterministic request stream: ``(template, query text)`` pairs."""
        rng = deterministic_rng(self.seed)
        samplers = {
            query.name: {p.name: p.sampler(rng) for p in query.parameters}
            for query in self.queries
        }
        weights = [q.weight for q in self.queries]
        for _ in range(self.operations):
            query = rng.choices(self.queries, weights=weights, k=1)[0]
            yield query, query.instantiate(samplers[query.name])


# ----------------------------------------------------------------------
# Running
# ----------------------------------------------------------------------
@dataclass
class WorkloadReport:
    """Measured behaviour of one workload run."""

    name: str
    operations: int
    succeeded: int
    rejected: int
    failed: int
    elapsed_seconds: float
    latencies_by_query: Dict[str, List[float]] = field(default_factory=dict)
    service_stats: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Completed operations per wall-clock second."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.succeeded / self.elapsed_seconds

    @property
    def all_latencies(self) -> List[float]:
        return [v for values in self.latencies_by_query.values() for v in values]

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-query (plus overall) latency summaries."""
        out = {
            name: summarize_latencies(values)
            for name, values in sorted(self.latencies_by_query.items())
        }
        out["overall"] = summarize_latencies(self.all_latencies)
        return out

    def format(self) -> str:
        """A paper-style text table of latency percentiles (milliseconds)."""
        summaries = self.summary()
        columns = ["count", "mean", "p50", "p90", "p99", "max"]
        cells = {}
        for row, summary in summaries.items():
            for column in columns:
                value = summary[column]
                cells[(row, column)] = (
                    f"{int(value)}" if column == "count"
                    else f"{value * 1000:.2f}"
                )
        table = format_matrix(
            f"{self.name}: {self.succeeded}/{self.operations} ok, "
            f"{self.throughput:.1f} q/s (latencies in ms)",
            list(summaries), columns, cells, row_header="query",
        )
        stats = ", ".join(
            f"{key}={value}" for key, value in self.service_stats.items()
        )
        return f"{table}\n{stats}" if stats else table


class WorkloadRunner:
    """Drive a :class:`WorkloadSpec` against a :class:`QueryService`.

    ``shed_load=False`` (default) makes the runner behave like a
    well-behaved client: when admission control rejects a request it backs
    off briefly and retries, so every operation eventually runs.  With
    ``shed_load=True`` rejections are final and counted, which is how an
    overload experiment measures the admission controller itself.

    ``prepare=True`` compiles each distinct instantiated query text once
    (``engine.prepare``) and submits the :class:`PreparedQuery` instead
    of the text — the prepared-statement shape of a real client.  Under
    Zipf parameter skew the hot texts recur, so the stream stops paying
    parse/analysis/GAO per request; the measured latencies then isolate
    execution the way the paper's per-query tables do.
    """

    _RETRY_SLEEP = 0.001

    def __init__(self, service: QueryService, spec: WorkloadSpec,
                 shed_load: bool = False, prepare: bool = False) -> None:
        self.service = service
        self.spec = spec
        self.shed_load = shed_load
        self.prepare = prepare
        self._prepared: Dict[Tuple[str, str], object] = {}

    def run(self) -> WorkloadReport:
        """Issue the stream (paced when ``spec.qps`` is set) and measure.

        Requests are submitted to the service's worker pool; end-to-end
        latency spans submission to completion, so queue wait counts —
        which is what a client of the service would observe.
        """
        report = WorkloadReport(
            name=self.spec.name, operations=self.spec.operations,
            succeeded=0, rejected=0, failed=0, elapsed_seconds=0.0,
        )
        pending: List[Tuple[str, float, "Future[QueryOutcome]"]] = []
        completed_at: Dict[int, float] = {}
        interval = (1.0 / self.spec.qps) if self.spec.qps else 0.0
        started = time.perf_counter()
        for index, (query, text) in enumerate(self.spec.requests()):
            if interval:
                slot = started + index * interval
                delay = slot - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            issued = time.perf_counter()
            future = self._submit(query, text)
            if future is None:
                report.rejected += 1
                continue
            future.add_done_callback(
                lambda _f, i=len(pending): completed_at.setdefault(
                    i, time.perf_counter()
                )
            )
            pending.append((query.name, issued, future))
        if pending:
            wait([future for _, _, future in pending])
        finished = time.perf_counter()
        for index, (name, issued, future) in enumerate(pending):
            outcome = future.result()
            if outcome.succeeded:
                report.succeeded += 1
                latency = completed_at.get(index, finished) - issued
                report.latencies_by_query.setdefault(name, []).append(latency)
            else:
                report.failed += 1
        report.elapsed_seconds = finished - started
        report.service_stats = self.service.stats().as_dict()
        return report

    def _submit(self, query: WorkloadQuery,
                text: str) -> Optional["Future[QueryOutcome]"]:
        """Submit one request, retrying on rejection unless shedding load."""
        payload: object = text
        if self.prepare:
            key = (text, query.algorithm)
            payload = self._prepared.get(key)
            if payload is None:
                payload = self.service.session.engine.prepare(
                    text, query.algorithm
                )
                self._prepared[key] = payload
        while True:
            try:
                return self.service.submit(
                    payload, algorithm=query.algorithm, mode=query.mode
                )
            except AdmissionError:
                if self.shed_load:
                    return None
                time.sleep(self._RETRY_SLEEP)


def run_workload(service: QueryService, spec: WorkloadSpec) -> WorkloadReport:
    """Convenience wrapper: ``WorkloadRunner(service, spec).run()``."""
    return WorkloadRunner(service, spec).run()
