"""The plan cache: compile each query shape once, reuse it forever.

Query streams of the LDBC-style workloads this family of papers evaluates
are dominated by *repeated shapes*: the same graph pattern arrives over and
over with different parameters.  Compilation — parsing, hypergraph
analysis, automatic algorithm selection, the (worst-case exponential)
nested-elimination-order search, and physical-plan lowering — is pure
per-shape work, so the service layer caches the resulting plan keyed by
the whitespace-normalized query text, the requested algorithm, and the
partitioning choice (a serial plan and a 4-shard HyperCube plan of the
same shape are different physical plans and cache as such).

The cache stores either :class:`~repro.engine.PreparedQuery` (logical
only, the pre-physical-plan API) or :class:`~repro.exec.plan.PhysicalPlan`
(what :meth:`PlanCache.get_or_plan` produces); both depend only on the
query shape and the partitioning choice, never on relation contents, so
entries never go stale — at worst a statistics-informed partitioning
choice becomes suboptimal, which is still correct.

The cache is a thread-safe LRU: the worker pool hits it from many threads
at once.  Statistics (hits / misses / evictions) are exposed for the
workload reports and tests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.engine import PreparedQuery, QueryEngine
from repro.exec.plan import PhysicalPlan
from repro.obs.metrics import global_registry

PlanKey = Tuple[str, str, str]


def _record(event: str) -> None:
    global_registry().counter("repro_cache_requests_total").inc(
        cache="plan", event=event
    )

CachedPlan = Union[PreparedQuery, PhysicalPlan]


_WORD_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)
_OPERATOR_CHARS = frozenset("<>=!")


def normalize_query_text(text: str) -> str:
    """Whitespace-insensitive key text: ``edge(a, b)`` == ``edge(a,b)``.

    Normalization is deliberately cheap — no parsing — so cache hits cost
    O(len(text)).  Whitespace is dropped except where removing it would
    merge two tokens into one (``a 1`` vs ``a1``, ``< =`` vs ``<=``);
    there a single space survives, so invalid text can never alias the key
    of a cached valid plan.  Semantically equal queries written with
    different atom orders hash to different keys; they simply compile
    twice.
    """
    parts = text.split()
    if not parts:
        return ""
    out = [parts[0]]
    for part in parts[1:]:
        last, first = out[-1][-1], part[0]
        if ((last in _WORD_CHARS and first in _WORD_CHARS)
                or (last in _OPERATOR_CHARS and first in _OPERATOR_CHARS)):
            out.append(" ")
        out.append(part)
    return "".join(out)


@dataclass
class PlanCacheStats:
    """Counters describing plan-cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A bounded, thread-safe LRU of compiled (logical or physical) plans."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, CachedPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[PlanKey]:
        """Current keys, most recently used last."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def get(self, text: str, algorithm: str = "auto",
            partition: str = "serial") -> Optional[CachedPlan]:
        """Look up a cached plan without compiling on a miss."""
        key = (normalize_query_text(text), algorithm, partition)
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self.stats.misses += 1
                _record("miss")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _record("hit")
            return plan

    def _lookup(self, key: PlanKey) -> Optional[CachedPlan]:
        """LRU-touching lookup with no stats side effects (internal)."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is not None:
                self._entries.move_to_end(key)
            return plan

    def put(self, text: str, algorithm: str, plan: CachedPlan,
            partition: str = "serial") -> None:
        """Insert a compiled plan, evicting the least recently used."""
        key = (normalize_query_text(text), algorithm, partition)
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_prepare(self, engine: QueryEngine, text: str,
                       algorithm: str = "auto") -> Tuple[PreparedQuery, bool]:
        """Return ``(prepared, was_hit)``, compiling through ``engine`` on miss.

        Compilation happens outside the cache lock, so a thundering herd on
        a cold shape may compile it more than once; all copies are
        equivalent and the last one wins, which keeps the lock cheap.
        """
        prepared = self.get(text, algorithm)
        if isinstance(prepared, PhysicalPlan):
            return prepared.prepared, True
        if prepared is not None:
            return prepared, True
        prepared = engine.prepare(text, algorithm)
        self.put(text, algorithm, prepared)
        return prepared, False

    def get_or_plan(self, engine: QueryEngine, text: str,
                    algorithm: str = "auto",
                    parallel: Optional[object] = None,
                    source: Optional[object] = None
                    ) -> Tuple[PhysicalPlan, bool]:
        """Return ``(physical plan, was_hit)`` for one partitioning choice.

        The key's partition component comes from the *request*
        (:meth:`~repro.exec.partitioner.ParallelConfig.key`), so the same
        shape served serially and at 4-way parallelism occupies two
        entries and neither ever shadows the other.

        ``source``, when given, is what a miss compiles (an
        already-resolved :class:`~repro.datalog.query.ConjunctiveQuery`);
        ``text`` then serves only as the cache key.  Headed queries render
        with a ``:- `` head that the parser has no grammar for, so their
        text form must never be re-parsed.
        """
        from repro.exec.partitioner import ParallelConfig

        config = (
            ParallelConfig.coerce(parallel) if parallel is not None
            else engine.parallel
        )
        partition = config.key()
        key = (normalize_query_text(text), algorithm, partition)
        cached = self._lookup(key)
        hit = isinstance(cached, PhysicalPlan)
        with self._lock:
            # A PreparedQuery under this key saves recompiling the logical
            # half but still costs a plan lowering, so it is a miss as far
            # as the reuse statistics are concerned.
            if hit:
                self.stats.hits += 1
            else:
                self.stats.misses += 1
        _record("hit" if hit else "miss")
        if hit:
            return cached, True
        if cached is None:
            cached = source if source is not None else text
        plan = engine.plan(cached, algorithm, config)
        self.put(text, algorithm, plan, partition)
        return plan, False
