"""The plan cache: compile each query shape once, reuse it forever.

Query streams of the LDBC-style workloads this family of papers evaluates
are dominated by *repeated shapes*: the same graph pattern arrives over and
over with different parameters.  Compilation — parsing, hypergraph
analysis, automatic algorithm selection, and the (worst-case exponential)
nested-elimination-order search — is pure per-shape work, so the service
layer caches the resulting :class:`~repro.engine.PreparedQuery` keyed by
the whitespace-normalized query text plus the requested algorithm.

The cache is a thread-safe LRU: the worker pool hits it from many threads
at once.  Statistics (hits / misses / evictions) are exposed for the
workload reports and tests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.engine import PreparedQuery, QueryEngine

PlanKey = Tuple[str, str]


_WORD_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)
_OPERATOR_CHARS = frozenset("<>=!")


def normalize_query_text(text: str) -> str:
    """Whitespace-insensitive key text: ``edge(a, b)`` == ``edge(a,b)``.

    Normalization is deliberately cheap — no parsing — so cache hits cost
    O(len(text)).  Whitespace is dropped except where removing it would
    merge two tokens into one (``a 1`` vs ``a1``, ``< =`` vs ``<=``);
    there a single space survives, so invalid text can never alias the key
    of a cached valid plan.  Semantically equal queries written with
    different atom orders hash to different keys; they simply compile
    twice.
    """
    parts = text.split()
    if not parts:
        return ""
    out = [parts[0]]
    for part in parts[1:]:
        last, first = out[-1][-1], part[0]
        if ((last in _WORD_CHARS and first in _WORD_CHARS)
                or (last in _OPERATOR_CHARS and first in _OPERATOR_CHARS)):
            out.append(" ")
        out.append(part)
    return "".join(out)


@dataclass
class PlanCacheStats:
    """Counters describing plan-cache effectiveness."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class PlanCache:
    """A bounded, thread-safe LRU of :class:`PreparedQuery` objects."""

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[PlanKey, PreparedQuery]" = OrderedDict()
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[PlanKey]:
        """Current keys, most recently used last."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def get(self, text: str, algorithm: str = "auto") -> Optional[PreparedQuery]:
        """Look up a prepared plan without compiling on a miss."""
        key = (normalize_query_text(text), algorithm)
        with self._lock:
            prepared = self._entries.get(key)
            if prepared is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return prepared

    def put(self, text: str, algorithm: str,
            prepared: PreparedQuery) -> None:
        """Insert a compiled plan, evicting the least recently used."""
        key = (normalize_query_text(text), algorithm)
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_or_prepare(self, engine: QueryEngine, text: str,
                       algorithm: str = "auto") -> Tuple[PreparedQuery, bool]:
        """Return ``(prepared, was_hit)``, compiling through ``engine`` on miss.

        Compilation happens outside the cache lock, so a thundering herd on
        a cold shape may compile it more than once; all copies are
        equivalent and the last one wins, which keeps the lock cheap.
        """
        prepared = self.get(text, algorithm)
        if prepared is not None:
            return prepared, True
        prepared = engine.prepare(text, algorithm)
        self.put(text, algorithm, prepared)
        return prepared, False
