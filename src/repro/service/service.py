""":class:`QueryService` — the concurrent serving layer over the engine.

The service composes the pieces of this package into the request path a
production deployment of the paper's engines would need::

    request ──► plan cache ──► result cache ──► worker pool ──► engine ──► executor
                (shape ×         (instance)       (threads)     (plans)    (serial or
                 partitioning)                                              process shards)

* The **plan cache** memoizes compiled :class:`~repro.exec.plan.PhysicalPlan`
  objects per (query shape, partitioning choice), so parsing / hypergraph
  analysis / GAO search / plan lowering run once.
* The **result cache** memoizes full answers per query instance and is
  invalidated per relation when the :class:`Database` catalog changes.
* The **worker pool** bounds concurrency and applies admission control;
  per-query soft timeouts reuse the engine's :class:`TimeBudget` machinery.
* The **executor** is the engine's plan-execution backend: serial by
  default, or (``ServiceConfig.parallel_shards > 1``) a multiprocessing
  pool that evaluates each query's partitioned shards on real CPU cores.

Synchronous callers use :meth:`QueryService.execute`; streaming workloads
(:mod:`repro.service.workload`) use :meth:`QueryService.submit` which
returns a future.  Both paths produce :class:`QueryOutcome` records that
carry cache provenance, making cached/uncached behaviour observable in
benchmarks and tests.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.api.options import QueryOptions
from repro.engine import PreparedQuery, QueryEngine
from repro.errors import ExecutionError, ReproError, TimeoutExceeded
from repro.exec.partitioner import ParallelConfig
from repro.exec.plan import PhysicalPlan
from repro.obs.events import global_events
from repro.obs.logs import SlowQueryLog, get_logger
from repro.obs.metrics import global_registry
from repro.service.executor import WorkerPool, WorkerPoolStats
from repro.service.plan_cache import PlanCache, PlanCacheStats
from repro.service.result_cache import ResultCache, ResultCacheStats
from repro.storage.database import Database


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for :class:`QueryService`.

    ``parallel_shards`` > 1 plugs a process-pool
    :class:`~repro.exec.executor.PlanExecutor` in as the worker backend:
    each query is partitioned (``partition_mode``: ``auto`` / ``hash`` /
    ``hypercube``) and its shards run on worker *processes*, which is the
    axis the GIL-bound thread pool cannot scale.

    ``slow_query_seconds`` feeds the service's
    :class:`~repro.obs.logs.SlowQueryLog`: queries taking at least this
    long are kept in a ring and logged at WARNING (``None`` disables,
    ``0.0`` records everything).
    """

    workers: int = 4
    max_pending: int = 64
    plan_cache_size: int = 128
    result_cache_size: int = 256
    default_timeout: Optional[float] = None
    default_algorithm: str = "auto"
    parallel_shards: int = 1
    partition_mode: str = "auto"
    slow_query_seconds: Optional[float] = 1.0


@dataclass
class QueryOutcome:
    """One served query: its answer plus where in the stack it was found."""

    query: str
    mode: str
    algorithm: str
    value: Optional[object] = None
    seconds: float = 0.0
    plan_cached: bool = False
    result_cached: bool = False
    timed_out: bool = False
    error: Optional[str] = None
    shards: int = 1

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.error is None

    @property
    def count(self) -> Optional[int]:
        """The scalar answer for ``mode="count"`` executions."""
        if self.mode == "count":
            return self.value  # type: ignore[return-value]
        if self.value is None:
            return None
        return len(self.value)  # type: ignore[arg-type]


@dataclass
class ServiceStats:
    """A point-in-time snapshot of every layer's counters."""

    plan_cache: PlanCacheStats
    result_cache: ResultCacheStats
    pool: WorkerPoolStats
    executed: int = 0
    served_from_cache: int = 0

    def as_dict(self) -> Dict[str, float]:
        """Flat numbers for reports and JSON output."""
        return {
            "plan_hits": self.plan_cache.hits,
            "plan_misses": self.plan_cache.misses,
            "plan_hit_rate": round(self.plan_cache.hit_rate, 4),
            "result_hits": self.result_cache.hits,
            "result_misses": self.result_cache.misses,
            "result_hit_rate": round(self.result_cache.hit_rate, 4),
            "result_invalidations": self.result_cache.invalidations,
            "submitted": self.pool.submitted,
            "rejected": self.pool.rejected,
            "executed": self.executed,
            "served_from_cache": self.served_from_cache,
        }


class QueryService:
    """Serve conjunctive queries concurrently with plan & result caching.

    Parameters
    ----------
    database:
        The catalog to serve; the result cache subscribes to its change
        feed for invalidation.
    config:
        Service knobs; defaults are sized for tests and laptop demos.
    engine:
        An existing :class:`QueryEngine` to reuse (e.g. one with custom
        registered algorithms); by default the service builds its own.
    """

    _MODES = ("count", "tuples")

    def __init__(self, database: Database,
                 config: Optional[ServiceConfig] = None,
                 engine: Optional[QueryEngine] = None) -> None:
        self.config = config or ServiceConfig()
        self.database = database
        self._owns_engine = engine is None
        self.engine = engine or QueryEngine(
            database,
            timeout=self.config.default_timeout,
            parallel=ParallelConfig(
                shards=self.config.parallel_shards,
                mode=self.config.partition_mode,
            ),
        )
        if self._owns_engine and self.config.parallel_shards > 1:
            # Start the process pool now, while this process is still
            # single-threaded: the executor can then use plain fork (no
            # per-worker re-import), and the pool start-up cost is paid
            # at service construction instead of inside the first
            # requests' latency.
            self.engine.warm_up()
        self.plan_cache = PlanCache(self.config.plan_cache_size)
        self.result_cache = ResultCache(
            database, self.config.result_cache_size
        )
        # The session is the execution surface: the service's request path
        # is a thin shim over Session.run + QueryOptions, sharing the
        # service's engine and caches.  (Imported here: the session module
        # sits above this package in the layer stack, so a module-level
        # import would be circular.)
        from repro.api.session import Session

        self.session = Session(
            database,
            options=QueryOptions(
                algorithm=self.config.default_algorithm,
                timeout=self.config.default_timeout,
            ),
            engine=self.engine,
            plan_cache=self.plan_cache,
            result_cache=self.result_cache,
        )
        self.pool = WorkerPool(self.config.workers, self.config.max_pending)
        self.slow_query_log = SlowQueryLog(self.config.slow_query_seconds)
        self._log = get_logger("service")
        self._counter_lock = threading.Lock()
        self._executed = 0
        self._served_from_cache = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, query: Union[str, PreparedQuery, PhysicalPlan],
               algorithm: Optional[str] = None, mode: str = "count",
               timeout: Optional[float] = None) -> "Future[QueryOutcome]":
        """Schedule a query on the worker pool.

        Raises :class:`repro.errors.AdmissionError` immediately when the
        pool's admission queue is full; otherwise returns a future that
        resolves to a :class:`QueryOutcome` (never raises for query-level
        timeouts or unsupported-algorithm errors — those are recorded on
        the outcome, mirroring :meth:`QueryEngine.execute`).
        """
        return self.pool.submit(self.execute, query, algorithm, mode, timeout)

    def execute(self, query: Union[str, PreparedQuery, PhysicalPlan],
                algorithm: Optional[str] = None, mode: str = "count",
                timeout: Optional[float] = None) -> QueryOutcome:
        """Serve one query synchronously through the cache hierarchy.

        A thin shim over :meth:`repro.api.session.Session.run`: the
        session handles plan caching, the result cache (lookup at first
        access, store on full materialization, pre-execution dependency
        snapshots), and lazy execution; this wrapper maps the outcome onto
        the service's :class:`QueryOutcome` record and counters.
        """
        if mode not in self._MODES:
            raise ExecutionError(
                f"unknown mode {mode!r}; expected one of {self._MODES}"
            )
        algorithm = algorithm or self.config.default_algorithm
        started = time.perf_counter()
        try:
            options = self.session.options(
                algorithm=algorithm, timeout=timeout
            )
            result_set = self.session.run(query, options)
        except ReproError as error:
            return self._observe(QueryOutcome(
                query=str(query), mode=mode, algorithm=algorithm,
                seconds=time.perf_counter() - started, error=str(error),
            ))
        try:
            if mode == "count":
                value: object = result_set.count()
            else:
                # An immutable tuple: the cache hands the same object to
                # every hit (answer() returns the cache's own tuple), so
                # no caller can poison later answers.
                value = result_set.answer()
        except TimeoutExceeded:
            return self._observe(QueryOutcome(
                query=result_set.query_text, mode=mode,
                algorithm=result_set.algorithm,
                seconds=time.perf_counter() - started,
                plan_cached=result_set.stats.plan_cached,
                timed_out=True, shards=result_set.shards,
            ))
        except ReproError as error:
            return self._observe(QueryOutcome(
                query=result_set.query_text, mode=mode,
                algorithm=result_set.algorithm,
                seconds=time.perf_counter() - started,
                plan_cached=result_set.stats.plan_cached,
                error=str(error), shards=result_set.shards,
            ))
        stats = result_set.stats
        with self._counter_lock:
            if stats.result_cached:
                self._served_from_cache += 1
            else:
                self._executed += 1
        return self._observe(QueryOutcome(
            query=result_set.query_text, mode=mode,
            algorithm=result_set.algorithm, value=value,
            seconds=time.perf_counter() - started,
            plan_cached=stats.plan_cached,
            result_cached=stats.result_cached,
            shards=result_set.shards,
        ), trace=stats.trace)

    def observe_query(self, *, query: str, seconds: float,
                      mode: str = "tuples", algorithm: Optional[str] = None,
                      outcome: str = "ok",
                      trace: Optional[dict] = None,
                      trace_id: Optional[str] = None,
                      span_id: Optional[str] = None,
                      shard: Optional[int] = None,
                      attempt: Optional[str] = None,
                      cell: Optional[str] = None) -> None:
        """Record one served query on the metrics registry, slow log,
        and flight recorder.

        Every request path calls this exactly once per query —
        :meth:`execute` directly, the network server from its op
        handlers (remote queries do not pass through :meth:`execute`).
        The optional correlation fields (``trace_id``/``span_id``/
        ``shard``/``attempt``/``cell``) are the coordinator-stamped
        shard context a server adopted from the wire.
        """
        registry = global_registry()
        registry.counter("repro_requests_total").inc(
            mode=mode, outcome=outcome
        )
        registry.histogram("repro_query_seconds").observe(
            seconds, algorithm=algorithm or "unknown"
        )
        if trace_id is None and isinstance(trace, dict):
            trace_id = trace.get("trace_id")
        context = {"trace_id": trace_id, "span_id": span_id,
                   "shard": shard, "attempt": attempt}
        self.slow_query_log.record(
            query=query, seconds=seconds, mode=mode,
            algorithm=algorithm, outcome=outcome, trace=trace,
            context=context if any(v is not None for v in context.values())
            else None,
        )
        global_events().record(
            source="service", query=query, seconds=round(seconds, 6),
            mode=mode, algorithm=algorithm, outcome=outcome,
            trace_id=trace_id, span_id=span_id, shard=shard,
            attempt=attempt, cell=cell,
        )

    def _observe(self, outcome: QueryOutcome,
                 trace: Optional[dict] = None) -> QueryOutcome:
        """Map a :class:`QueryOutcome` onto :meth:`observe_query`."""
        if outcome.timed_out:
            verdict = "timeout"
        elif outcome.error is not None:
            verdict = "error"
        else:
            verdict = "ok"
        self.observe_query(
            query=outcome.query, seconds=outcome.seconds,
            mode=outcome.mode, algorithm=outcome.algorithm,
            outcome=verdict, trace=trace,
        )
        if verdict == "error":
            self._log.info(
                "query failed: %s", outcome.error,
                extra={"data": {"query": outcome.query,
                                "algorithm": outcome.algorithm}},
            )
        return outcome

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A snapshot of all cache / pool counters."""
        return ServiceStats(
            plan_cache=self.plan_cache.stats,
            result_cache=self.result_cache.stats,
            pool=self.pool.stats,
            executed=self._executed,
            served_from_cache=self._served_from_cache,
        )

    def invalidate(self) -> None:
        """Drop every cached result (plans stay: they depend only on shape)."""
        self.result_cache.clear()

    def close(self) -> None:
        """Drain the pool and detach the result cache from the database."""
        if self._closed:
            return
        self._closed = True
        self.pool.shutdown(wait=True)
        self.result_cache.detach()
        if self._owns_engine:
            self.engine.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
