"""The worker pool: bounded concurrent execution with admission control.

A thin, accountable wrapper over :class:`concurrent.futures.ThreadPoolExecutor`:

* **width** — ``workers`` threads execute queries concurrently.  Pure-Python
  join execution is GIL-bound, but queries spend time in C-level dict/list
  operations and the pool's real job in this repo is *scheduling*: overlap
  of cache lookups with execution, fairness between query shapes, and the
  seam where a process/remote pool plugs in later.
* **admission control** — at most ``workers + max_pending`` requests may be
  in flight; beyond that :meth:`submit` raises
  :class:`repro.errors.AdmissionError` immediately instead of letting an
  unbounded queue hide overload (the "fail fast at the front door" rule of
  serving systems).
* **accounting** — submitted / rejected / completed / failed counters feed
  the service statistics and the workload report.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.errors import AdmissionError, ServiceError
from repro.obs.metrics import global_registry

T = TypeVar("T")


@dataclass
class WorkerPoolStats:
    """Counters describing pool traffic."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed - self.failed


class WorkerPool:
    """A fixed-width thread pool with a bounded admission queue."""

    def __init__(self, workers: int = 4, max_pending: int = 64,
                 name: str = "repro-service") -> None:
        if workers < 1:
            raise ServiceError("worker pool needs at least one worker")
        if max_pending < 0:
            raise ServiceError("max_pending must be non-negative")
        self.workers = workers
        self.max_pending = max_pending
        self._slots = threading.BoundedSemaphore(workers + max_pending)
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix=name
        )
        self._lock = threading.Lock()
        self._closed = False
        self.stats = WorkerPoolStats()

    def submit(self, fn: Callable[..., T], *args, **kwargs) -> "Future[T]":
        """Schedule ``fn(*args, **kwargs)``; reject when the queue is full."""
        with self._lock:
            if self._closed:
                raise ServiceError("worker pool is shut down")
        if not self._slots.acquire(blocking=False):
            with self._lock:
                self.stats.rejected += 1
            global_registry().counter("repro_admission_total").inc(
                decision="rejected"
            )
            raise AdmissionError(
                f"admission queue full: {self.workers} workers busy and "
                f"{self.max_pending} requests already pending"
            )
        enqueued = time.perf_counter()

        def timed(*inner_args, **inner_kwargs):
            # Queue wait = admission to the moment a worker picks it up.
            global_registry().histogram("repro_queue_wait_seconds").observe(
                time.perf_counter() - enqueued
            )
            return fn(*inner_args, **inner_kwargs)

        try:
            future = self._executor.submit(timed, *args, **kwargs)
        except RuntimeError as error:
            # A submit racing shutdown() can pass the _closed check and
            # still find the executor closed; surface the promised error
            # type instead of the raw RuntimeError.
            self._slots.release()
            raise ServiceError(f"worker pool is shut down: {error}") from None
        except BaseException:
            self._slots.release()
            raise
        with self._lock:
            self.stats.submitted += 1
        global_registry().counter("repro_admission_total").inc(
            decision="accepted"
        )
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, future: Future) -> None:
        self._slots.release()
        with self._lock:
            if future.cancelled() or future.exception() is not None:
                self.stats.failed += 1
            else:
                self.stats.completed += 1

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; optionally wait for in-flight queries."""
        with self._lock:
            self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown(wait=True)
