"""Server-side cursors: open result streams a remote client pages through.

A remote ``run`` does not ship the answer — it opens a
:class:`ServerCursor` holding the lazy
:class:`~repro.api.result.ResultSet` and hands the client an id.  Each
``fetch`` request pulls exactly the requested number of rows off the
stream, so a client consuming *k* rows of a huge join costs O(k) work on
the server, exactly the local laziness contract.

The :class:`CursorRegistry` owns one connection's cursors: a capacity
bound (an abandoned client cannot pin unbounded executor state), idle
expiry (a cursor untouched for ``ttl`` seconds is closed and its stream
released), and counters that feed the per-connection ``stats`` op.

Everything here is thread-safe — and must be: the server *pipelines*
requests, so one connection's fetches, closes, and teardown can all be
in flight at once on the worker pool while the registry's expiry sweep
runs on the event loop.  The busy-guard serializes fetches on one
cursor (a stream has a single position), and closing a busy cursor
*dooms* it for the in-flight fetch to discard rather than yanking the
stream out from under it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.result import ResultSet, Row
from repro.errors import CursorError
from repro.obs.metrics import global_registry


def _record(event: str) -> None:
    global_registry().counter("repro_cursors_total").inc(event=event)


@dataclass
class CursorStats:
    """Counters describing one registry's cursor traffic."""

    opened: int = 0
    closed: int = 0
    expired: int = 0
    exhausted: int = 0
    rows_streamed: int = 0

    @property
    def active(self) -> int:
        return self.opened - self.closed - self.expired - self.exhausted

    def as_dict(self) -> Dict[str, int]:
        return {
            "opened": self.opened,
            "closed": self.closed,
            "expired": self.expired,
            "exhausted": self.exhausted,
            "active": self.active,
            "rows_streamed": self.rows_streamed,
        }


class ServerCursor:
    """One open result stream: the lazy result set plus idle bookkeeping.

    ``busy`` marks a fetch in flight on the worker pool; ``doomed`` marks
    a cursor that was closed *while* busy — the close could not remove it
    without yanking the stream out from under the running fetch, so the
    fetch's completion discards it instead.
    """

    __slots__ = ("cursor_id", "result_set", "created", "last_used",
                 "rows_sent", "busy", "doomed")

    def __init__(self, cursor_id: int, result_set: ResultSet,
                 now: float) -> None:
        self.cursor_id = cursor_id
        self.result_set = result_set
        self.created = now
        self.last_used = now
        self.rows_sent = 0
        self.busy = False
        self.doomed = False


class CursorRegistry:
    """One connection's server-side cursors: open, fetch, expire, close.

    Parameters
    ----------
    ttl:
        Idle expiry in seconds: a cursor not fetched from for this long
        is closed by :meth:`expire_idle` (and treated as expired on
        access).  ``None`` disables expiry.
    max_cursors:
        Capacity bound; :meth:`open` raises :class:`CursorError` beyond it.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(self, ttl: Optional[float] = 300.0, max_cursors: int = 64,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.ttl = ttl
        self.max_cursors = max_cursors
        self._clock = clock
        self._lock = threading.Lock()
        self._cursors: Dict[int, ServerCursor] = {}
        self._next_id = 0
        self.stats = CursorStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._cursors)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def open(self, result_set: ResultSet) -> ServerCursor:
        """Register a lazy result set and return its cursor."""
        with self._lock:
            if len(self._cursors) >= self.max_cursors:
                raise CursorError(
                    f"too many open cursors ({self.max_cursors}); "
                    f"close or drain one first"
                )
            self._next_id += 1
            cursor = ServerCursor(self._next_id, result_set, self._clock())
            self._cursors[cursor.cursor_id] = cursor
            self.stats.opened += 1
        _record("opened")
        return cursor

    def fetch(self, cursor_id: int,
              size: int) -> Tuple[Sequence[Row], bool, ServerCursor]:
        """Pull up to ``size`` more rows; auto-closes an exhausted cursor.

        Returns ``(rows, done, cursor)``; ``done`` means the stream is
        fully drained and the cursor id is no longer valid.
        """
        cursor = self._checkout(cursor_id)
        try:
            rows = cursor.result_set.fetchmany(size)
            done = cursor.result_set.drained
        except BaseException:
            # A failed stream is unusable; drop the cursor so the client
            # gets a crisp "unknown cursor" instead of repeated failures.
            with self._lock:
                cursor.busy = False
                if self._cursors.pop(cursor_id, None) is not None:
                    self.stats.closed += 1
                    _record("closed")
            raise
        with self._lock:
            cursor.busy = False
            if cursor.doomed:
                # close()/close_all() ran while this fetch was in flight:
                # the rows must not be delivered from a closed cursor, and
                # they must not skew the traffic counters.
                if self._cursors.pop(cursor_id, None) is not None:
                    self.stats.closed += 1
                    _record("closed")
                raise CursorError(
                    f"cursor {cursor_id} was closed while its fetch was "
                    f"in flight"
                )
            cursor.last_used = self._clock()
            cursor.rows_sent += len(rows)
            self.stats.rows_streamed += len(rows)
            exhausted = done and self._cursors.pop(cursor_id, None) is not None
            if exhausted:
                self.stats.exhausted += 1
        if exhausted:
            _record("exhausted")
        return rows, done, cursor

    def close(self, cursor_id: int) -> bool:
        """Release one cursor; True if it was open.

        A cursor with a fetch in flight is *doomed* rather than removed:
        the running fetch still owns the stream, so it is the one that
        discards the cursor when it completes (and its rows are dropped,
        not delivered) — see :meth:`fetch`.
        """
        with self._lock:
            cursor = self._cursors.get(cursor_id)
            if cursor is None:
                return False
            if cursor.busy:
                cursor.doomed = True
                _record("doomed")
                return True
            del self._cursors[cursor_id]
            self.stats.closed += 1
        _record("closed")
        return True

    def close_all(self) -> int:
        """Release every cursor (connection teardown / server shutdown).

        Busy cursors — one with a fetch running on the worker pool right
        now — are doomed, not popped: yanking them out from under the
        in-flight fetch would let it deliver rows from a "closed" cursor
        and double-count the stats when it finished.  The completing
        fetch discards a doomed cursor itself.
        """
        doomed = closed = 0
        with self._lock:
            count = len(self._cursors)
            for cursor_id, cursor in list(self._cursors.items()):
                if cursor.busy:
                    cursor.doomed = True
                    doomed += 1
                else:
                    del self._cursors[cursor_id]
                    self.stats.closed += 1
                    closed += 1
        counter = global_registry().counter("repro_cursors_total")
        if doomed:
            counter.inc(doomed, event="doomed")
        if closed:
            counter.inc(closed, event="closed")
        return count

    def expire_idle(self) -> List[int]:
        """Close cursors idle past ``ttl``; returns the expired ids."""
        if self.ttl is None:
            return []
        now = self._clock()
        expired: List[int] = []
        with self._lock:
            for cursor_id, cursor in list(self._cursors.items()):
                if cursor.busy:
                    continue
                if now - cursor.last_used > self.ttl:
                    del self._cursors[cursor_id]
                    self.stats.expired += 1
                    expired.append(cursor_id)
        if expired:
            global_registry().counter("repro_cursors_total").inc(
                len(expired), event="expired"
            )
        return expired

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _checkout(self, cursor_id: int) -> ServerCursor:
        with self._lock:
            cursor = self._cursors.get(cursor_id)
            if cursor is not None and self.ttl is not None \
                    and not cursor.busy \
                    and self._clock() - cursor.last_used > self.ttl:
                # Lazy expiry: enforce the ttl even between sweeps.
                del self._cursors[cursor_id]
                self.stats.expired += 1
                _record("expired")
                cursor = None
            if cursor is None:
                raise CursorError(
                    f"unknown cursor {cursor_id} (never opened, already "
                    f"closed or drained, or expired after {self.ttl}s idle)"
                )
            if cursor.busy:
                raise CursorError(
                    f"cursor {cursor_id} already has a fetch in flight"
                )
            cursor.busy = True
            return cursor
