"""Server-side prepared statements: compile once, execute by handle.

A ``prepare`` request pays parse/hypergraph-analysis/attribute-ordering
exactly once and registers the resulting immutable
:class:`~repro.engine.PreparedQuery` under a small integer handle; every
subsequent ``execute``/``cursor``/``count`` that references the handle
hands the engine the compiled shape directly, and the plan cache keys on
the prepared text — so a hot query shape costs zero parses after its
first trip (the Postgres extended-protocol trade).

The :class:`PreparedRegistry` owns one connection's handles with the
same lifecycle discipline as :class:`~repro.service.cursors.
CursorRegistry`: a capacity bound, idle expiry (lazy on access plus the
server's periodic sweep), and counters that feed the per-connection
``stats`` op.  Unlike cursors, prepared statements are immutable and
position-free, so there is no busy-guard — concurrent executes on one
handle are safe by construction.

Preparing the same ``(text, algorithm)`` twice on one connection is
idempotent: the registry returns the existing handle, which is what lets
clients re-prepare transparently after a reconnect or TTL expiry without
leaking registry slots.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.engine import PreparedQuery
from repro.errors import PreparedError
from repro.obs.metrics import global_registry


def _record(event: str, amount: int = 1) -> None:
    if amount:
        global_registry().counter("repro_prepared_total").inc(
            amount, event=event
        )


@dataclass
class PreparedStats:
    """Counters describing one registry's prepared-statement traffic."""

    prepared: int = 0
    deduped: int = 0
    executed: int = 0
    deallocated: int = 0
    expired: int = 0

    @property
    def active(self) -> int:
        return self.prepared - self.deallocated - self.expired

    def as_dict(self) -> Dict[str, int]:
        return {
            "prepared": self.prepared,
            "deduped": self.deduped,
            "executed": self.executed,
            "deallocated": self.deallocated,
            "expired": self.expired,
            "active": self.active,
        }


class PreparedStatement:
    """One registered query shape plus idle bookkeeping."""

    __slots__ = ("handle", "text", "algorithm", "query", "created",
                 "last_used", "executions")

    def __init__(self, handle: int, text: str, algorithm: str,
                 query: PreparedQuery, now: float) -> None:
        self.handle = handle
        self.text = text
        self.algorithm = algorithm
        self.query = query
        self.created = now
        self.last_used = now
        self.executions = 0


class PreparedRegistry:
    """One connection's prepared statements: register, resolve, expire.

    Parameters
    ----------
    ttl:
        Idle expiry in seconds: a handle not executed for this long is
        dropped by :meth:`expire_idle` (and treated as expired on
        access).  ``None`` disables expiry.
    max_statements:
        Capacity bound; :meth:`register` raises :class:`PreparedError`
        beyond it.
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(self, ttl: Optional[float] = 300.0,
                 max_statements: int = 64,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.ttl = ttl
        self.max_statements = max_statements
        self._clock = clock
        self._lock = threading.Lock()
        self._statements: Dict[int, PreparedStatement] = {}
        self._by_shape: Dict[Tuple[str, str], int] = {}
        self._next_id = 0
        self.stats = PreparedStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._statements)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def register(self, text: str, algorithm: str,
                 compile: Callable[[], PreparedQuery]) -> PreparedStatement:
        """Register ``(text, algorithm)``, compiling only when new.

        Idempotent: a shape already registered on this connection
        returns its existing handle without recompiling, so client-side
        re-prepare-on-reconnect never leaks slots.
        """
        with self._lock:
            handle = self._by_shape.get((text, algorithm))
            if handle is not None:
                statement = self._statements.get(handle)
                if statement is not None and not self._expired(statement):
                    statement.last_used = self._clock()
                    self.stats.deduped += 1
                    _record("deduped")
                    return statement
                self._drop_locked(handle, "expired")
        # Compile outside the lock: parse/GAO can take real time and the
        # registry must not serialize unrelated pipelined requests on it.
        query = compile()
        with self._lock:
            handle = self._by_shape.get((text, algorithm))
            if handle is not None:
                statement = self._statements.get(handle)
                if statement is not None:  # raced with another prepare
                    self.stats.deduped += 1
                    _record("deduped")
                    return statement
            if len(self._statements) >= self.max_statements:
                raise PreparedError(
                    f"too many prepared statements "
                    f"({self.max_statements}); deallocate one first"
                )
            self._next_id += 1
            statement = PreparedStatement(
                self._next_id, text, algorithm, query, self._clock()
            )
            self._statements[statement.handle] = statement
            self._by_shape[(text, algorithm)] = statement.handle
            self.stats.prepared += 1
        _record("prepared")
        return statement

    def resolve(self, handle: int) -> PreparedStatement:
        """Look up a handle for execution (touches its idle clock)."""
        with self._lock:
            statement = self._statements.get(handle)
            if statement is not None and self._expired(statement):
                # Lazy expiry: enforce the ttl even between sweeps.
                self._drop_locked(handle, "expired")
                statement = None
            if statement is None:
                raise PreparedError(
                    f"unknown prepared statement {handle} (never "
                    f"prepared, deallocated, or expired after "
                    f"{self.ttl}s idle)"
                )
            statement.last_used = self._clock()
            statement.executions += 1
            self.stats.executed += 1
        _record("executed")
        return statement

    def deallocate(self, handle: int) -> bool:
        """Release one handle; True if it was registered."""
        with self._lock:
            if handle not in self._statements:
                return False
            self._drop_locked(handle, "deallocated")
        return True

    def close_all(self) -> int:
        """Release every handle (connection teardown)."""
        with self._lock:
            count = len(self._statements)
            for handle in list(self._statements):
                self._drop_locked(handle, "deallocated", record=False)
        _record("deallocated", count)
        return count

    def expire_idle(self) -> List[int]:
        """Drop handles idle past ``ttl``; returns the expired handles."""
        if self.ttl is None:
            return []
        expired: List[int] = []
        with self._lock:
            for handle, statement in list(self._statements.items()):
                if self._expired(statement):
                    self._drop_locked(handle, "expired", record=False)
                    expired.append(handle)
        _record("expired", len(expired))
        return expired

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _expired(self, statement: PreparedStatement) -> bool:
        return (self.ttl is not None
                and self._clock() - statement.last_used > self.ttl)

    def _drop_locked(self, handle: int, event: str,
                     record: bool = True) -> None:
        statement = self._statements.pop(handle, None)
        if statement is None:
            return
        key = (statement.text, statement.algorithm)
        if self._by_shape.get(key) == handle:
            del self._by_shape[key]
        if event == "expired":
            self.stats.expired += 1
        else:
            self.stats.deallocated += 1
        if record:
            _record(event)
