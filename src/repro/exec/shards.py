"""Columnar shard serialization for cross-process execution.

Worker processes receive shard catalogs by value.  Pickling a
``List[Tuple[int, ...]]`` ships per-tuple and per-int object overhead;
packing each column into the narrowest ``array`` typecode that fits its
value range serializes to a flat byte buffer instead — node identifiers
under 256 cost one byte each — and lets the worker rebuild the relation
with one zip and no re-validation (fragment rows arrive in sorted,
de-duplicated order by construction — see :mod:`repro.exec.partitioner`).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.storage.database import Database
from repro.storage.relation import Relation

#: Columns are packed ``array`` buffers normally; a plain list is the
#: fallback for values outside the 64-bit range (never produced by the
#: graph loaders, but the storage layer itself allows arbitrary ints).
Column = Union[array, List[int]]

#: Unsigned typecodes by value ceiling, narrowest first.
_UNSIGNED_CODES = (
    ("B", 0xFF),
    ("H", 0xFFFF),
    ("I", 0xFFFFFFFF),
    ("Q", 0xFFFFFFFFFFFFFFFF),
)


def pack_column(values: Sequence[int]) -> Column:
    """The narrowest array that holds ``values`` (list when none does).

    Shared with the wire codec (:mod:`repro.net.columnar`) so the
    inter-process and network encoders pick identical typecodes and
    cannot drift.
    """
    if not values:
        return array("B")
    low, high = min(values), max(values)
    if low >= 0:
        for code, ceiling in _UNSIGNED_CODES:
            if high <= ceiling:
                return array(code, values)
    elif low >= -(2 ** 63) and high < 2 ** 63:
        return array("q", values)
    return list(values)


#: Backwards-compatible alias (the packer predates the wire codec).
_pack_column = pack_column


@dataclass(frozen=True)
class EncodedRelation:
    """A relation flattened into per-column buffers."""

    name: str
    arity: int
    attributes: Tuple[str, ...]
    columns: Tuple[Column, ...]

    @property
    def cardinality(self) -> int:
        return len(self.columns[0]) if self.columns else 0


def encode_relation(relation: Relation) -> EncodedRelation:
    """Flatten ``relation`` into columnar buffers (row order preserved)."""
    columns: List[Column] = []
    for index in range(relation.arity):
        columns.append(_pack_column([row[index] for row in relation.tuples]))
    return EncodedRelation(
        name=relation.name,
        arity=relation.arity,
        attributes=relation.attributes,
        columns=tuple(columns),
    )


def decode_relation(encoded: EncodedRelation) -> Relation:
    """Rebuild the relation; rows come back in the original sorted order."""
    rows = list(zip(*encoded.columns)) if encoded.cardinality else []
    return Relation.from_sorted(
        encoded.name, encoded.arity, rows, encoded.attributes
    )


def encode_database(database: Database) -> Dict[str, EncodedRelation]:
    """Encode every relation of a (shard) catalog."""
    return {
        relation.name: encode_relation(relation)
        for relation in database.relations()
    }


def decode_database(encoded: Dict[str, EncodedRelation]) -> Database:
    """Rebuild a catalog from its encoded relations."""
    return Database(decode_relation(enc) for enc in encoded.values())
