"""Physical-plan layer: plans, partitioning, and pluggable executors.

The execution pipeline is::

    text ──► PreparedQuery ──► PhysicalPlan ──► PlanExecutor ──► answer
             (logical:          (scan →          (serial, or a
              parse, analyse,    partition →      multiprocessing
              pick algorithm     shard join →     worker pool)
              and GAO)           merge)

:mod:`repro.engine` compiles and routes every execution through this
seam; :mod:`repro.service` plugs a process-pool executor in as the
worker backend; the CLI exposes it as ``--parallel N``.
"""

from repro.exec.partitioner import (
    ParallelConfig,
    Partitioner,
    PartitionScheme,
    bucket_of,
    choose_scheme,
)
from repro.exec.plan import (
    MergeOp,
    PartitionOp,
    PhysicalPlan,
    ScanOp,
    ShardJoinOp,
    compile_plan,
)
from repro.exec.executor import (
    PlanExecutor,
    ProcessPlanExecutor,
    SerialPlanExecutor,
    run_shard,
)
from repro.exec.shards import (
    EncodedRelation,
    decode_database,
    decode_relation,
    encode_database,
    encode_relation,
)

__all__ = [
    "EncodedRelation",
    "MergeOp",
    "ParallelConfig",
    "PartitionOp",
    "PartitionScheme",
    "Partitioner",
    "PhysicalPlan",
    "PlanExecutor",
    "ProcessPlanExecutor",
    "ScanOp",
    "SerialPlanExecutor",
    "ShardJoinOp",
    "bucket_of",
    "choose_scheme",
    "compile_plan",
    "decode_database",
    "decode_relation",
    "encode_database",
    "encode_relation",
    "run_shard",
]
