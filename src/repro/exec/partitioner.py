"""Relation partitioning for shard-parallel query evaluation.

Parallel evaluation of a conjunctive query never changes its answer — it
only changes *where* each answer is produced.  The two schemes here are
the standard ones for conjunctive queries:

* **hash** — pick one join attribute ``v``; every atom that binds ``v``
  has its relation hash-split on the column bound to ``v``, and every
  other relation is replicated.  An output binding ``β`` can only be
  produced in the shard ``h(β(v))``, so the per-shard outputs are
  *disjoint* and their union is exactly the serial answer.
* **hypercube** — the HyperCube / shares scheme for cyclic queries: a
  small set of attributes spans a grid of ``d_1 × d_2 × ...`` cells, each
  tuple of each relation is sent to every cell consistent with the hashes
  of the grid attributes it binds, and each cell evaluates the full query
  on its fragment.  Again each output binding lands in exactly one cell,
  so no cross-shard deduplication is ever needed.

Because one relation may appear in several atoms bound to *different*
grid attributes (self-joins are the norm for graph patterns), fragments
are per-*atom*, not per-relation: the :class:`Partitioner` rewrites the
query so every constrained atom reads its own uniquely named fragment,
while unconstrained atoms keep their original name and see the whole
relation.  The rewritten query has the same variables, filters, and
hypergraph structure as the original, so a precomputed GAO stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ExecutionError, ReproError
from repro.datalog.atoms import Atom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable, is_variable
from repro.storage.database import Database
from repro.storage.relation import Relation

PARTITION_MODES = ("auto", "hash", "hypercube")

#: A shard coordinate: one bucket index per grid axis.
Cell = Tuple[int, ...]

_MIX = 0x9E3779B97F4A7C15
_MASK = 0xFFFFFFFFFFFFFFFF


def bucket_of(value: int, axis: int, dims: int) -> int:
    """Deterministic bucket of ``value`` on grid axis ``axis``.

    A splitmix64-style finalizer rather than ``value % dims``: node
    identifiers are frequently structured (consecutive, or all even),
    which a plain modulus turns into badly skewed shards, and a bare
    multiplicative mix leaves the low bits — exactly what ``% dims``
    reads — correlated across axes.  Seeding by the axis index keeps the
    per-axis hash functions independent, which HyperCube assumes.
    """
    x = ((value + 1) ^ (_MIX * (axis + 1) & _MASK)) & _MASK
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK
    x ^= x >> 31
    return x % dims


@dataclass(frozen=True)
class ParallelConfig:
    """How a caller asked for parallelism: shard count plus scheme mode."""

    shards: int = 1
    mode: str = "auto"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ExecutionError("parallel shard count must be at least 1")
        if self.mode not in PARTITION_MODES:
            raise ExecutionError(
                f"unknown partition mode {self.mode!r}; "
                f"expected one of {PARTITION_MODES}"
            )

    @classmethod
    def coerce(cls, value) -> "ParallelConfig":
        """Accept ``None`` (serial), an int shard count, or a config."""
        if value is None:
            return cls()
        if isinstance(value, ParallelConfig):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return cls(shards=value)
        raise ExecutionError(
            f"cannot interpret {value!r} as a parallelism request; "
            f"pass an int shard count or a ParallelConfig"
        )

    @property
    def serial(self) -> bool:
        return self.shards <= 1

    def key(self) -> str:
        """A compact cache-key fragment (plan caches include this)."""
        if self.serial:
            return "serial"
        return f"{self.mode}:{self.shards}"


@dataclass(frozen=True)
class PartitionScheme:
    """A resolved partitioning: mode plus the attribute grid.

    ``grid`` maps attribute names to bucket counts; its product is the
    number of shards actually used (which may be slightly below the
    requested count when the count does not factor well over the grid).
    Hash mode is the one-axis special case of the grid.
    """

    mode: str  # "hash" | "hypercube"
    grid: Tuple[Tuple[str, int], ...]  # ((attribute, dims), ...)

    @property
    def shards(self) -> int:
        total = 1
        for _, dims in self.grid:
            total *= dims
        return total

    @property
    def attributes(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.grid)

    def cells(self) -> List[Cell]:
        """Every shard coordinate, in deterministic row-major order."""
        return list(product(*(range(dims) for _, dims in self.grid)))

    def key(self) -> str:
        axes = ",".join(f"{name}:{dims}" for name, dims in self.grid)
        return f"{self.mode}[{axes}]"

    def __str__(self) -> str:
        return self.key()

    # -- wire form ------------------------------------------------------
    def to_wire(self) -> dict:
        """A JSON-safe form a coordinator can ship to remote servers."""
        return {
            "mode": self.mode,
            "grid": [[name, dims] for name, dims in self.grid],
        }

    @classmethod
    def from_wire(cls, payload: object) -> "PartitionScheme":
        """Rebuild a scheme from :meth:`to_wire` output, validating hard.

        The payload crosses a process boundary, so every field is checked
        — a malformed scheme must fail crisply server-side rather than
        mis-route tuples and silently drop answers.
        """
        if not isinstance(payload, dict):
            raise ExecutionError(
                f"partition scheme must be an object, got {payload!r}"
            )
        mode = payload.get("mode")
        if mode not in ("hash", "hypercube"):
            raise ExecutionError(
                f"partition scheme mode must be 'hash' or 'hypercube', "
                f"got {mode!r}"
            )
        grid = payload.get("grid")
        if not isinstance(grid, (list, tuple)) or not grid:
            raise ExecutionError(
                "partition scheme needs a non-empty 'grid' of "
                "[attribute, dims] pairs"
            )
        axes: List[Tuple[str, int]] = []
        for entry in grid:
            if (not isinstance(entry, (list, tuple)) or len(entry) != 2
                    or not isinstance(entry[0], str) or not entry[0]
                    or isinstance(entry[1], bool)
                    or not isinstance(entry[1], int) or entry[1] < 1):
                raise ExecutionError(
                    f"partition grid entries must be [attribute, dims >= 1] "
                    f"pairs, got {entry!r}"
                )
            axes.append((entry[0], entry[1]))
        if len({name for name, _ in axes}) != len(axes):
            raise ExecutionError(
                "partition grid names an attribute twice"
            )
        return cls(mode, tuple(axes))

    def validate_cell(self, cell: object) -> Cell:
        """Coerce and bounds-check one shard coordinate against the grid."""
        if not isinstance(cell, (list, tuple)) \
                or len(cell) != len(self.grid):
            raise ExecutionError(
                f"shard cell must list one bucket per grid axis "
                f"({len(self.grid)}), got {cell!r}"
            )
        out: List[int] = []
        for value, (name, dims) in zip(cell, self.grid):
            if isinstance(value, bool) or not isinstance(value, int) \
                    or not 0 <= value < dims:
                raise ExecutionError(
                    f"shard cell coordinate for axis {name!r} must be in "
                    f"[0, {dims}), got {value!r}"
                )
            out.append(value)
        return tuple(out)


def _balanced_dims(shards: int, axes: int) -> List[int]:
    """Spread the prime factors of ``shards`` over ``axes`` grid axes.

    The product always equals ``shards``; factors are assigned largest
    first onto the currently smallest axis, which keeps the grid as close
    to cubic as the factorization allows (4 → 2×2, 8 → 2×2×2, 6 → 3×2).
    """
    factors: List[int] = []
    remaining = shards
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1
    if remaining > 1:
        factors.append(remaining)
    dims = [1] * axes
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return sorted(dims, reverse=True)


def choose_scheme(query: ConjunctiveQuery, shards: int,
                  mode: str = "auto",
                  beta_acyclic: Optional[bool] = None,
                  database: Optional[Database] = None
                  ) -> Optional[PartitionScheme]:
    """Pick the partitioning for ``query`` at the requested width.

    Returns ``None`` for a serial request.  In ``auto`` mode cyclic
    queries with at least two join attributes get HyperCube (the shape
    the SIGMOD-contest systems used for triangles and cliques); anything
    else gets single-attribute hash partitioning on the most-shared
    attribute.  Statistics, when a database is supplied, break ties
    toward attributes with more distinct values, which balances shards.
    """
    if shards <= 1:
        return None
    if mode not in PARTITION_MODES:
        raise ExecutionError(
            f"unknown partition mode {mode!r}; expected one of {PARTITION_MODES}"
        )
    variables = query.variables
    if not variables:
        raise ExecutionError("cannot partition a query with no variables")

    degree: Dict[Variable, int] = {
        v: len(query.atoms_with(v)) for v in variables
    }
    distinct = _distinct_estimates(query, database)
    # Most-shared first; more distinct values break ties (better balance);
    # the name keeps the choice deterministic.
    ranked = sorted(
        variables,
        key=lambda v: (-degree[v], -distinct.get(v, 0), v.name),
    )

    if mode == "auto":
        cyclic = (not beta_acyclic) if beta_acyclic is not None else False
        shared = [v for v in ranked if degree[v] >= 2]
        mode = "hypercube" if cyclic and len(shared) >= 2 else "hash"

    if mode == "hash":
        return PartitionScheme("hash", ((ranked[0].name, shards),))

    axes = min(len(ranked), 3, max(1, shards.bit_length() - 1))
    dims = _balanced_dims(shards, axes)
    grid = tuple(
        (variable.name, dim)
        for variable, dim in zip(ranked, dims) if dim > 1
    )
    if not grid:  # shards == 1 never reaches here, but stay defensive
        grid = ((ranked[0].name, shards),)
    return PartitionScheme("hypercube", grid)


def _distinct_estimates(query: ConjunctiveQuery,
                        database: Optional[Database]
                        ) -> Dict[Variable, int]:
    """Highest per-column distinct count seen for each variable (or {})."""
    if database is None:
        return {}
    estimates: Dict[Variable, int] = {}
    for atom in query.atoms:
        try:
            statistics = database.statistics(atom.name)
        except ReproError:
            continue
        for variable in atom.variables:
            position = atom.positions_of(variable)[0]
            if position < len(statistics.distinct_counts):
                count = statistics.distinct_counts[position]
                estimates[variable] = max(estimates.get(variable, 0), count)
    return estimates


@dataclass
class _AtomConstraint:
    """One atom's partition filter: (term position, grid axis) pairs."""

    atom_index: int
    shard_name: str  # per-atom fragment name in the shard catalog
    positions: Tuple[Tuple[int, int], ...]  # (position in atom, axis index)


class Partitioner:
    """Split a database into per-shard catalogs for one query + scheme.

    The partitioner computes, once, which atoms are constrained by the
    grid and what the rewritten (per-atom-fragment) query looks like;
    :meth:`shard_databases` then streams ``(cell, Database)`` pairs built
    from any catalog holding the query's relations.
    """

    def __init__(self, query: ConjunctiveQuery,
                 scheme: PartitionScheme) -> None:
        self.query = query
        self.scheme = scheme
        axis_of = {name: axis for axis, (name, _) in enumerate(scheme.grid)}
        self._dims = tuple(dims for _, dims in scheme.grid)
        self._constraints: List[_AtomConstraint] = []
        rewritten_atoms: List[Atom] = []
        for atom_index, atom in enumerate(query.atoms):
            positions = tuple(
                (position, axis_of[term.name])
                for position, term in enumerate(atom.terms)
                if is_variable(term) and term.name in axis_of
            )
            if not positions:
                rewritten_atoms.append(atom)
                continue
            shard_name = f"{atom.name}.shard{atom_index}"
            self._constraints.append(_AtomConstraint(
                atom_index=atom_index,
                shard_name=shard_name,
                positions=positions,
            ))
            rewritten_atoms.append(Atom(shard_name, atom.terms))
        if not self._constraints:
            raise ExecutionError(
                f"partition scheme {scheme} constrains no atom of the query; "
                f"every shard would evaluate the whole input"
            )
        self.rewritten_query = ConjunctiveQuery(
            rewritten_atoms, query.filters, query.head
        )
        #: Relation names replicated (whole) into every shard catalog.
        constrained = {c.atom_index for c in self._constraints}
        self.replicated_names: Tuple[str, ...] = tuple(dict.fromkeys(
            atom.name for index, atom in enumerate(query.atoms)
            if index not in constrained
        ))

    # ------------------------------------------------------------------
    def fragments(self, database: Database
                  ) -> Dict[Cell, Dict[str, Relation]]:
        """Per-cell fragment relations for every constrained atom.

        Each constrained atom's relation is scanned exactly once; a tuple
        is routed to the single bucket of every axis the atom binds and
        replicated across the axes it does not.
        """
        cells = self.scheme.cells()
        axes = len(self._dims)
        per_cell: Dict[Cell, Dict[str, Relation]] = {cell: {} for cell in cells}
        for constraint in self._constraints:
            atom = self.query.atoms[constraint.atom_index]
            relation = database.relation(atom.name)
            rows_by_cell: Dict[Cell, List[Tuple[int, ...]]] = {
                cell: [] for cell in cells
            }
            free_axes = [
                axis for axis in range(axes)
                if axis not in {a for _, a in constraint.positions}
            ]
            for row in relation.tuples:
                coordinate: List[Optional[int]] = [None] * axes
                consistent = True
                for position, axis in constraint.positions:
                    target = bucket_of(row[position], axis, self._dims[axis])
                    if coordinate[axis] is None:
                        coordinate[axis] = target
                    elif coordinate[axis] != target:
                        # The atom binds two grid attributes that happen to
                        # disagree for this tuple on a shared axis; it can
                        # never contribute to any cell.
                        consistent = False
                        break
                if not consistent:
                    continue
                if free_axes:
                    for choice in product(*(
                        range(self._dims[axis]) for axis in free_axes
                    )):
                        full = list(coordinate)
                        for axis, value in zip(free_axes, choice):
                            full[axis] = value
                        rows_by_cell[tuple(full)].append(row)
                else:
                    rows_by_cell[tuple(coordinate)].append(row)
            for cell in cells:
                per_cell[cell][constraint.shard_name] = Relation.from_sorted(
                    constraint.shard_name, relation.arity,
                    rows_by_cell[cell], relation.attributes,
                )
        return per_cell

    def shard_databases(self, database: Database
                        ) -> Iterator[Tuple[Cell, Database]]:
        """Yield ``(cell, catalog)`` for every shard, fragments included.

        Replicated relations are shared by reference — relations are
        immutable, so shard catalogs can alias them safely.
        """
        replicated = {
            name: database.relation(name) for name in self.replicated_names
        }
        for cell, fragments in self.fragments(database).items():
            shard = Database()
            for name, relation in replicated.items():
                shard.add(relation)
            for relation in fragments.values():
                shard.add(relation)
            yield cell, shard

    def shard_database(self, database: Database, cell: Cell) -> Database:
        """Build one cell's catalog without materializing the other shards.

        The distributed coordinator sends each server exactly one cell,
        so the server filters every constrained relation down to the
        rows that :meth:`fragments` would have routed to that cell —
        O(input) work per shard instead of O(input × shards) — and
        aliases the replicated relations whole.  The result is
        tuple-identical to the ``cell`` entry of :meth:`shard_databases`.
        """
        cell = self.scheme.validate_cell(cell)
        shard = Database()
        for name in self.replicated_names:
            shard.add(database.relation(name))
        for constraint in self._constraints:
            atom = self.query.atoms[constraint.atom_index]
            relation = database.relation(atom.name)
            rows: List[Tuple[int, ...]] = []
            for row in relation.tuples:
                # A row lands in this cell iff every bound axis hashes to
                # the cell's coordinate; free axes replicate, so they
                # never filter.  An atom binding one axis twice with
                # disagreeing buckets matches no cell at all — the same
                # consistency rule fragments() applies.
                for position, axis in constraint.positions:
                    if bucket_of(row[position], axis,
                                 self._dims[axis]) != cell[axis]:
                        break
                else:
                    rows.append(row)
            shard.add(Relation.from_sorted(
                constraint.shard_name, relation.arity, rows,
                relation.attributes,
            ))
        return shard

    def constrained_atom_indexes(self) -> Tuple[int, ...]:
        return tuple(c.atom_index for c in self._constraints)
