"""Pluggable executors that run physical plans.

Two executors implement the same contract over a
:class:`~repro.exec.plan.PhysicalPlan`:

* :class:`SerialPlanExecutor` — runs every shard in-process, one after
  the other.  On a serial plan this is exactly the pre-refactor
  execution path (same algorithm instance, same streaming enumeration);
  on a partitioned plan it is the reference implementation the tests
  compare everything against.
* :class:`ProcessPlanExecutor` — ships each shard to a
  :mod:`multiprocessing` pool.  Shard catalogs travel as columnar
  payloads (:mod:`repro.exec.shards`), workers rebuild relations and
  tries locally, and only counts or output tuples come back, so the
  per-query IPC volume is input fragments + answers, never indexes.

Both merge shard results the same way: counts sum and tuple lists merge
(the partitioner guarantees shard outputs are disjoint, so no
deduplication pass is needed).
"""

from __future__ import annotations

import abc
import heapq
import os
import sys
import threading
import time
from itertools import islice
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, TimeoutExceeded
from repro.exec.partitioner import Partitioner
from repro.exec.plan import PhysicalPlan
from repro.exec.shards import (
    EncodedRelation,
    decode_database,
    encode_relation,
)
from repro.joins.base import Binding, JoinAlgorithm
from repro.storage.database import Database
from repro.util import TimeBudget

#: ``factory(name, budget) -> JoinAlgorithm`` — how an executor turns the
#: plan's algorithm name into an instance.  The engine passes its own
#: registry-backed factory so custom registered algorithms work serially.
AlgorithmFactory = Callable[[str, Optional[TimeBudget]], JoinAlgorithm]

#: One shard of work, fully self-contained and picklable.  The deadline
#: is an absolute ``time.monotonic()`` instant (comparable across
#: processes on one host), so time a shard spends queued behind other
#: shards or in transit counts against its budget.  The limit caps how
#: many rows a "tuples" shard enumerates: shard outputs are disjoint, so
#: any ``limit`` rows from any shards serve a ``limit``-row prefix, and
#: capping per shard keeps a small-limit query from paying for the full
#: join on every worker.
ShardTask = Tuple[
    Dict[str, EncodedRelation],  # encoded shard catalog
    object,                      # rewritten ConjunctiveQuery
    str,                         # algorithm name
    Optional[Tuple[str, ...]],   # precomputed GAO names
    str,                         # "count" | "tuples"
    Optional[float],             # absolute monotonic deadline, or None
    Optional[int],               # row limit for "tuples" mode, or None
]


def _default_factory(name: str, budget: Optional[TimeBudget]) -> JoinAlgorithm:
    """Instantiate from the engine's default registry (import is deferred:
    the engine imports this package at module load)."""
    from repro.engine import default_registry

    factory = default_registry().get(name)
    if factory is None:
        raise ExecutionError(
            f"algorithm {name!r} is not in the default registry; "
            f"pass the engine's factory or run serially"
        )
    return factory(budget)


def _apply_gao(instance: JoinAlgorithm,
               gao_names: Optional[Tuple[str, ...]]) -> JoinAlgorithm:
    """Install a precomputed attribute order when the algorithm takes one."""
    if (gao_names is not None
            and getattr(instance, "variable_order", "absent") is None):
        instance.variable_order = gao_names
    return instance


def run_shard(task: ShardTask):
    """Execute one shard — the worker-process entry point.

    Module-level (picklable) and dependency-free beyond the payload: the
    worker rebuilds the shard catalog from its columnar encoding, builds
    the algorithm from the *default* registry, and returns either a count
    or the shard's sorted output tuples.
    """
    encoded, query, algorithm, gao_names, mode, deadline, limit = task
    budget = None
    if deadline is not None:
        remaining = deadline - time.monotonic()
        if remaining <= 0:  # the budget was spent queued/in transit
            raise TimeoutExceeded(max(-remaining, 0.0), 0.0)
        budget = TimeBudget(remaining)
    database = decode_database(encoded)
    instance = _apply_gao(_default_factory(algorithm, budget), gao_names)
    if mode == "count":
        return instance.count(database, query)
    variables = query.variables
    bindings = instance.enumerate_bindings(database, query)
    if limit is not None:
        bindings = islice(bindings, limit)
    rows = [
        tuple(binding[v] for v in variables)
        for binding in bindings
    ]
    rows.sort()
    return rows


class PlanExecutor(abc.ABC):
    """The execution seam: every "run the query" call site goes through one."""

    #: True when shards execute outside this process (so per-engine
    #: registered algorithm factories cannot reach them).  The engine
    #: refuses to send custom algorithms to such executors.
    runs_out_of_process: bool = False

    @abc.abstractmethod
    def count(self, database: Database, plan: PhysicalPlan,
              budget: Optional[TimeBudget] = None,
              factory: Optional[AlgorithmFactory] = None,
              trace: Optional[object] = None) -> int:
        """Number of output tuples of ``plan`` over ``database``.

        ``trace``, when given, is a started :class:`repro.obs.trace.Span`
        the executor may attach per-shard child spans to.
        """

    @abc.abstractmethod
    def tuples(self, database: Database, plan: PhysicalPlan,
               budget: Optional[TimeBudget] = None,
               factory: Optional[AlgorithmFactory] = None
               ) -> List[Tuple[int, ...]]:
        """Sorted output tuples in first-occurrence variable order."""

    @abc.abstractmethod
    def bindings(self, database: Database, plan: PhysicalPlan,
                 budget: Optional[TimeBudget] = None,
                 factory: Optional[AlgorithmFactory] = None,
                 limit: Optional[int] = None,
                 trace: Optional[object] = None) -> Iterator[Binding]:
        """Iterate output bindings (order unspecified, as for algorithms).

        ``limit`` is a laziness hint: the caller will consume at most that
        many bindings, so executors that pay for whole shards up front
        (the process pool) cap per-shard enumeration.  It is not a slice
        — an executor may still yield more; callers truncate themselves.

        ``trace``, when given, is a started :class:`repro.obs.trace.Span`
        the executor may attach per-shard child spans to.
        """

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent."""

    def warm_up(self) -> None:
        """Pre-start lazily created resources (worker pools).

        Benchmarks call this before opening a timing window so pool
        start-up is not billed to the first measured query.
        """

    def __enter__(self) -> "PlanExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    @staticmethod
    def _instantiate(plan: PhysicalPlan, budget: Optional[TimeBudget],
                     factory: Optional[AlgorithmFactory]) -> JoinAlgorithm:
        factory = factory or _default_factory
        return _apply_gao(factory(plan.algorithm, budget), plan.gao_names)

    @staticmethod
    def _partitioner(plan: PhysicalPlan) -> Partitioner:
        if plan.partitioner is None:
            raise ExecutionError("plan has no partition operator")
        return plan.partitioner


class SerialPlanExecutor(PlanExecutor):
    """Run shards in-process, sequentially (the behavior-identical default)."""

    def count(self, database, plan, budget=None, factory=None, trace=None):
        if plan.scheme is None:
            instance = self._instantiate(plan, budget, factory)
            if trace is None:
                return instance.count(database, plan.prepared.query)
            span = trace.child("join")
            try:
                total = instance.count(database, plan.prepared.query)
            finally:
                span.finish()
            span.annotate(count=total)
            return total
        partitioner = self._partitioner(plan)
        total = 0
        for index, (_, shard) in enumerate(
                partitioner.shard_databases(database)):
            instance = self._instantiate(plan, budget, factory)
            span = None if trace is None \
                else trace.child("shard-count", shard=index)
            try:
                subtotal = instance.count(shard, partitioner.rewritten_query)
            finally:
                if span is not None:
                    span.finish()
            if span is not None:
                span.annotate(count=subtotal)
            total += subtotal
        return total

    def tuples(self, database, plan, budget=None, factory=None):
        variables = plan.prepared.query.variables
        rows = [
            tuple(binding[v] for v in variables)
            for binding in self.bindings(database, plan, budget, factory)
        ]
        rows.sort()
        return rows

    def bindings(self, database, plan, budget=None, factory=None,
                 limit=None, trace=None):
        # In-process enumeration is a true generator, so the limit hint
        # is moot: unconsumed bindings are never computed.
        if plan.scheme is None:
            instance = self._instantiate(plan, budget, factory)
            if trace is None:
                yield from instance.enumerate_bindings(
                    database, plan.prepared.query
                )
                return
            span = trace.child("join")
            rows = 0
            try:
                for binding in instance.enumerate_bindings(
                        database, plan.prepared.query):
                    rows += 1
                    yield binding
            finally:
                span.annotate(rows=rows).finish()
            return
        partitioner = self._partitioner(plan)
        for index, (_, shard) in enumerate(
                partitioner.shard_databases(database)):
            instance = self._instantiate(plan, budget, factory)
            if trace is None:
                yield from instance.enumerate_bindings(
                    shard, partitioner.rewritten_query
                )
                continue
            span = trace.child("shard-join", shard=index)
            rows = 0
            try:
                for binding in instance.enumerate_bindings(
                        shard, partitioner.rewritten_query):
                    rows += 1
                    yield binding
            finally:
                span.annotate(rows=rows).finish()


class ProcessPlanExecutor(PlanExecutor):
    """Run shards on a ``multiprocessing`` pool of worker processes.

    The pool is created lazily on first use and reused across queries
    (service workloads execute thousands of queries; paying a pool
    start-up per query would drown the speedup).  ``fork`` is preferred
    where available — workers inherit the code pages and only the shard
    payloads travel; ``spawn`` works everywhere else.

    Serial plans short-circuit to in-process execution: there is nothing
    to parallelize and shipping the whole database would only add cost.
    """

    runs_out_of_process = True

    def __init__(self, workers: Optional[int] = None,
                 start_method: Optional[str] = None) -> None:
        if workers is not None and workers < 1:
            raise ExecutionError("process executor needs at least one worker")
        self.workers = workers or os.cpu_count() or 1
        self.start_method = start_method
        self._pool = None
        self._pool_lock = threading.Lock()
        self._serial = SerialPlanExecutor()

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        # The service's thread pool shares one executor; without the lock
        # two threads racing a cold start would each fork a pool and leak
        # one of them.
        with self._pool_lock:
            if self._pool is None:
                import multiprocessing

                if self.start_method is not None:
                    method = self.start_method
                else:
                    # fork is the cheap path (workers inherit code pages)
                    # but forking a multithreaded process is unsafe on
                    # every platform — a child can inherit a lock held by
                    # a thread that no longer exists.  The pool starts
                    # lazily, so decide from the live thread count: the
                    # single-threaded CLI gets fork, the service's
                    # threaded worker pool gets forkserver (fork from a
                    # clean helper process), everything else the platform
                    # default (spawn).
                    available = multiprocessing.get_all_start_methods()
                    method = None
                    if sys.platform.startswith("linux"):
                        if ("fork" in available
                                and threading.active_count() == 1):
                            method = "fork"
                        elif "forkserver" in available:
                            method = "forkserver"
                context = multiprocessing.get_context(method)
                self._pool = context.Pool(processes=self.workers)
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None

    def warm_up(self) -> None:
        self._ensure_pool()

    # ------------------------------------------------------------------
    def _tasks(self, database: Database, plan: PhysicalPlan, mode: str,
               budget: Optional[TimeBudget],
               limit: Optional[int] = None) -> List[ShardTask]:
        # Custom algorithms registered on one engine instance do not exist
        # in a fresh worker process; fail with a clear message instead of
        # an opaque unpickling/KeyError from the pool.
        from repro.engine import default_registry

        if plan.algorithm not in default_registry():
            raise ExecutionError(
                f"algorithm {plan.algorithm!r} is not in the default "
                f"registry and cannot run in worker processes; use a "
                f"serial executor for custom algorithms"
            )
        deadline: Optional[float] = None
        if budget is not None and budget.seconds is not None:
            deadline = time.monotonic() + max(
                budget.seconds - budget.elapsed(), 0.001
            )
        partitioner = self._partitioner(plan)
        # Replicated relations are identical in every shard; pack them
        # once and share the encoding across payloads (the per-shard
        # dicts alias the same EncodedRelation objects).
        replicated = {
            name: encode_relation(database.relation(name))
            for name in partitioner.replicated_names
        }
        tasks: List[ShardTask] = []
        for _, fragments in partitioner.fragments(database).items():
            encoded = dict(replicated)
            for relation in fragments.values():
                encoded[relation.name] = encode_relation(relation)
            tasks.append((
                encoded,
                partitioner.rewritten_query,
                plan.algorithm,
                plan.gao_names,
                mode,
                deadline,
                limit,
            ))
        return tasks

    def _map(self, tasks: Sequence[ShardTask]) -> List:
        pool = self._ensure_pool()
        # chunksize=1: shards are few and coarse; letting the pool batch
        # them would serialize the very work we are trying to overlap.
        return pool.map(run_shard, tasks, chunksize=1)

    # ------------------------------------------------------------------
    def count(self, database, plan, budget=None, factory=None, trace=None):
        if plan.scheme is None or plan.shards == 1:
            return self._serial.count(database, plan, budget, factory,
                                      trace=trace)
        span = None if trace is None else trace.child("partition")
        tasks = self._tasks(database, plan, "count", budget)
        if span is not None:
            span.annotate(shards=len(tasks)).finish()
        return sum(self._map(tasks))

    def tuples(self, database, plan, budget=None, factory=None):
        if plan.scheme is None or plan.shards == 1:
            return self._serial.tuples(database, plan, budget, factory)
        shard_rows = self._map(self._tasks(database, plan, "tuples", budget))
        # Shard outputs are sorted and pairwise disjoint: a k-way merge
        # yields the exact sorted union without a dedup pass.
        return list(heapq.merge(*shard_rows))

    def bindings(self, database, plan, budget=None, factory=None,
                 limit=None, trace=None):
        if plan.scheme is None or plan.shards == 1:
            yield from self._serial.bindings(database, plan, budget, factory,
                                             trace=trace)
            return
        # Stream shard results as they land instead of collecting the full
        # merged list first: the first finished shard's answers reach the
        # consumer while the other shards are still joining.  Binding
        # order is unspecified (as for the algorithms themselves), so the
        # unordered variant's completion-order arrival is fine.  The limit
        # hint caps each shard's enumeration — shard outputs are disjoint,
        # so any `limit` rows form a valid prefix — keeping a small-limit
        # query from paying for the full join on every worker.
        variables = plan.prepared.query.variables
        span = None if trace is None else trace.child("partition")
        tasks = self._tasks(database, plan, "tuples", budget, limit)
        if span is not None:
            span.annotate(shards=len(tasks)).finish()
        pool = self._ensure_pool()
        # Shards run out-of-process, so span timings here mark *arrival*
        # of each shard's rows on the parent, not worker-side compute.
        for index, shard_rows in enumerate(
                pool.imap_unordered(run_shard, tasks, chunksize=1)):
            if trace is not None:
                trace.child("shard-merge", shard=index,
                            rows=len(shard_rows)).finish()
            for row in shard_rows:
                yield dict(zip(variables, row))
