"""Physical plans: the operator tree between a prepared query and an executor.

:class:`~repro.engine.PreparedQuery` is purely *logical* — parse tree,
hypergraph analysis, algorithm choice, attribute order.  A
:class:`PhysicalPlan` pins down *how* that logical plan touches data::

    merge(sum | sorted-union)
      └─ shard-join[lftj] × 4
           └─ partition[hypercube[a:2,b:2], replicate: v1]
                └─ scan[edge], scan[v1]

A serial plan is the degenerate tree with no partition operator and a
single shard join; running it is bit-for-bit the pre-refactor execution
path.  Plans are immutable, cheap to build, and independent of relation
*contents* (the partitioner routes tuples at execution time), so caching
a plan can never serve stale data — only a stale-but-correct layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

from repro.exec.partitioner import (
    Partitioner,
    PartitionScheme,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.engine import PreparedQuery


@dataclass(frozen=True)
class ScanOp:
    """Read one stored relation."""

    relation: str


@dataclass(frozen=True)
class PartitionOp:
    """Split constrained relations over the scheme's grid; replicate the rest."""

    scheme: PartitionScheme
    constrained: Tuple[str, ...]  # per-atom fragment names
    replicated: Tuple[str, ...]


@dataclass(frozen=True)
class ShardJoinOp:
    """Run the chosen join algorithm over one shard catalog."""

    algorithm: str
    gao: Optional[Tuple[str, ...]]


@dataclass(frozen=True)
class MergeOp:
    """Combine shard results: counts sum, tuple sets union (disjointly)."""

    kind: str  # "none" (serial) | "sum+sorted-union"


@dataclass(frozen=True)
class PhysicalPlan:
    """The full operator tree for one prepared query.

    ``scheme is None`` marks a serial plan.  ``partitioner`` is prebuilt
    for partitioned plans so repeated executions (the service's hot path)
    skip the per-atom constraint analysis.
    """

    prepared: "PreparedQuery"
    scans: Tuple[ScanOp, ...]
    partition: Optional[PartitionOp]
    join: ShardJoinOp
    merge: MergeOp
    partitioner: Optional[Partitioner] = None

    @property
    def scheme(self) -> Optional[PartitionScheme]:
        return self.partition.scheme if self.partition is not None else None

    @property
    def shards(self) -> int:
        return self.scheme.shards if self.scheme is not None else 1

    @property
    def algorithm(self) -> str:
        return self.join.algorithm

    @property
    def gao_names(self) -> Optional[Tuple[str, ...]]:
        return self.join.gao

    def partition_key(self) -> str:
        """The partitioning fragment of a plan-cache key."""
        return self.scheme.key() if self.scheme is not None else "serial"

    def cache_key(self) -> Tuple[str, str, str]:
        """(canonical text, requested algorithm, partitioning) cache key."""
        text, algorithm = self.prepared.cache_key()
        return (text, algorithm, self.partition_key())

    def explain(self) -> str:
        """A readable rendering of the operator tree."""
        scans = ", ".join(f"scan[{scan.relation}]" for scan in self.scans)
        join = f"shard-join[{self.join.algorithm}"
        if self.join.gao:
            join += f", gao={','.join(self.join.gao)}"
        join += "]"
        if self.partition is None:
            return "\n".join([join, f"  └─ {scans}"])
        replicate = ""
        if self.partition.replicated:
            replicate = f", replicate: {','.join(self.partition.replicated)}"
        return "\n".join([
            "merge[sum | sorted-union]",
            f"  └─ {join} × {self.shards}",
            f"       └─ partition[{self.scheme.key()}{replicate}]",
            f"            └─ {scans}",
        ])


def compile_plan(prepared: "PreparedQuery",
                 scheme: Optional[PartitionScheme]) -> PhysicalPlan:
    """Lower a prepared (logical) query onto a physical operator tree."""
    scans = tuple(
        ScanOp(name) for name in prepared.query.relation_names
    )
    join = ShardJoinOp(algorithm=prepared.algorithm, gao=prepared.gao_names)
    if scheme is None:
        return PhysicalPlan(
            prepared=prepared,
            scans=scans,
            partition=None,
            join=join,
            merge=MergeOp("none"),
        )
    partitioner = Partitioner(prepared.query, scheme)
    partition = PartitionOp(
        scheme=scheme,
        constrained=tuple(
            partitioner.rewritten_query.atoms[index].name
            for index in partitioner.constrained_atom_indexes()
        ),
        replicated=partitioner.replicated_names,
    )
    return PhysicalPlan(
        prepared=prepared,
        scans=scans,
        partition=partition,
        join=join,
        merge=MergeOp("sum+sorted-union"),
        partitioner=partitioner,
    )
