"""repro: worst-case optimal and beyond-worst-case join processing.

A from-scratch Python reproduction of *"Join Processing for Graph
Patterns: An Old Dog with New Tricks"* (Nguyen et al., 2015): the Leapfrog
Triejoin and Minesweeper join algorithms, the relational substrate they
run on, the conventional and graph-engine baselines they are benchmarked
against, and the full benchmark harness regenerating every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import Database, QueryEngine, edge_relation_from_pairs, parse_query
>>> edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
>>> db = Database([edge_relation_from_pairs(edges)])
>>> engine = QueryEngine(db)
>>> triangle = parse_query("edge(a,b), edge(b,c), edge(a,c), a<b, b<c")
>>> engine.count(triangle, algorithm="lftj")
1
"""

from repro.errors import (
    CursorError,
    DatasetError,
    ExecutionError,
    NetworkError,
    OptionsError,
    ParseError,
    PlanningError,
    ProtocolError,
    QueryError,
    ReproError,
    SchemaError,
    StorageError,
    TimeoutExceeded,
    UnknownAlgorithmError,
)
from repro.datalog import (
    Atom,
    ComparisonAtom,
    ConjunctiveQuery,
    Constant,
    Hypergraph,
    Variable,
    agm_bound,
    parse_query,
    select_gao,
)
from repro.storage import (
    Database,
    Relation,
    TrieIndex,
    edge_relation_from_pairs,
    node_relation,
)
from repro.joins import (
    ColumnAtATimeJoin,
    GenericJoin,
    GraphEngine,
    HybridMinesweeperLeapfrog,
    JoinAlgorithm,
    LeapfrogTrieJoin,
    MinesweeperJoin,
    MinesweeperOptions,
    NaiveBacktrackingJoin,
    PairwiseHashJoin,
    YannakakisJoin,
)
from repro.queries import QUERY_PATTERNS, build_query
from repro.data import (
    DATASET_CATALOG,
    attach_samples,
    dataset_names,
    load_dataset,
    load_dataset_database,
)
from repro.engine import ExecutionResult, QueryEngine
from repro.api import (
    Explain,
    PreparedHandle,
    QueryOptions,
    ResultSet,
    ResultStats,
    Session,
    connect,
)
from repro.dist import ClusterSession, Topology
from repro.exec import (
    ParallelConfig,
    PartitionScheme,
    Partitioner,
    PhysicalPlan,
    PlanExecutor,
    ProcessPlanExecutor,
    SerialPlanExecutor,
)
from repro.util import TimeBudget

def _package_version() -> str:
    """The distribution version, from pyproject.toml or installed metadata.

    A ``pyproject.toml`` declaring ``name = "repro"`` in a parent of this
    source tree is authoritative — it is *this* package's metadata, and
    checking it first means an unrelated installed distribution that
    happens to be called ``repro`` can never shadow a source checkout.
    Installed (site-packages) trees have no adjacent pyproject and read
    the package metadata instead.
    """
    import pathlib
    import re

    for parent in pathlib.Path(__file__).resolve().parents:
        pyproject = parent / "pyproject.toml"
        if pyproject.is_file():
            text = pyproject.read_text()
            if re.search(r'^name\s*=\s*"repro"', text, flags=re.MULTILINE):
                match = re.search(r'^version\s*=\s*"([^"]+)"', text,
                                  flags=re.MULTILINE)
                if match:
                    return match.group(1)
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        return "0.0.0+unknown"


__version__ = _package_version()

__all__ = [
    "Atom",
    "ClusterSession",
    "ColumnAtATimeJoin",
    "ComparisonAtom",
    "ConjunctiveQuery",
    "Constant",
    "CursorError",
    "DATASET_CATALOG",
    "Database",
    "DatasetError",
    "ExecutionError",
    "ExecutionResult",
    "Explain",
    "GenericJoin",
    "GraphEngine",
    "Hypergraph",
    "HybridMinesweeperLeapfrog",
    "JoinAlgorithm",
    "LeapfrogTrieJoin",
    "MinesweeperJoin",
    "MinesweeperOptions",
    "NaiveBacktrackingJoin",
    "NetworkError",
    "OptionsError",
    "PairwiseHashJoin",
    "ParallelConfig",
    "ParseError",
    "PartitionScheme",
    "Partitioner",
    "PhysicalPlan",
    "PreparedHandle",
    "PlanExecutor",
    "PlanningError",
    "ProcessPlanExecutor",
    "ProtocolError",
    "QUERY_PATTERNS",
    "QueryEngine",
    "QueryError",
    "QueryOptions",
    "Relation",
    "ReproError",
    "ResultSet",
    "ResultStats",
    "SchemaError",
    "SerialPlanExecutor",
    "Session",
    "StorageError",
    "TimeBudget",
    "TimeoutExceeded",
    "Topology",
    "TrieIndex",
    "UnknownAlgorithmError",
    "Variable",
    "YannakakisJoin",
    "agm_bound",
    "attach_samples",
    "build_query",
    "connect",
    "dataset_names",
    "edge_relation_from_pairs",
    "load_dataset",
    "load_dataset_database",
    "node_relation",
    "parse_query",
    "select_gao",
    "__version__",
]
