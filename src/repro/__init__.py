"""repro: worst-case optimal and beyond-worst-case join processing.

A from-scratch Python reproduction of *"Join Processing for Graph
Patterns: An Old Dog with New Tricks"* (Nguyen et al., 2015): the Leapfrog
Triejoin and Minesweeper join algorithms, the relational substrate they
run on, the conventional and graph-engine baselines they are benchmarked
against, and the full benchmark harness regenerating every table and
figure of the paper's evaluation.

Quickstart
----------
>>> from repro import Database, QueryEngine, edge_relation_from_pairs, parse_query
>>> edges = [(0, 1), (1, 2), (0, 2), (2, 3)]
>>> db = Database([edge_relation_from_pairs(edges)])
>>> engine = QueryEngine(db)
>>> triangle = parse_query("edge(a,b), edge(b,c), edge(a,c), a<b, b<c")
>>> engine.count(triangle, algorithm="lftj")
1
"""

from repro.errors import (
    DatasetError,
    ExecutionError,
    ParseError,
    PlanningError,
    QueryError,
    ReproError,
    SchemaError,
    StorageError,
    TimeoutExceeded,
)
from repro.datalog import (
    Atom,
    ComparisonAtom,
    ConjunctiveQuery,
    Constant,
    Hypergraph,
    Variable,
    agm_bound,
    parse_query,
    select_gao,
)
from repro.storage import (
    Database,
    Relation,
    TrieIndex,
    edge_relation_from_pairs,
    node_relation,
)
from repro.joins import (
    ColumnAtATimeJoin,
    GenericJoin,
    GraphEngine,
    HybridMinesweeperLeapfrog,
    JoinAlgorithm,
    LeapfrogTrieJoin,
    MinesweeperJoin,
    MinesweeperOptions,
    NaiveBacktrackingJoin,
    PairwiseHashJoin,
    YannakakisJoin,
)
from repro.queries import QUERY_PATTERNS, build_query
from repro.data import (
    DATASET_CATALOG,
    attach_samples,
    dataset_names,
    load_dataset,
    load_dataset_database,
)
from repro.engine import ExecutionResult, QueryEngine
from repro.util import TimeBudget

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ColumnAtATimeJoin",
    "ComparisonAtom",
    "ConjunctiveQuery",
    "Constant",
    "DATASET_CATALOG",
    "Database",
    "DatasetError",
    "ExecutionError",
    "ExecutionResult",
    "GenericJoin",
    "GraphEngine",
    "Hypergraph",
    "HybridMinesweeperLeapfrog",
    "JoinAlgorithm",
    "LeapfrogTrieJoin",
    "MinesweeperJoin",
    "MinesweeperOptions",
    "NaiveBacktrackingJoin",
    "PairwiseHashJoin",
    "ParseError",
    "PlanningError",
    "QUERY_PATTERNS",
    "QueryEngine",
    "QueryError",
    "Relation",
    "ReproError",
    "SchemaError",
    "StorageError",
    "TimeBudget",
    "TimeoutExceeded",
    "TrieIndex",
    "Variable",
    "YannakakisJoin",
    "agm_bound",
    "attach_samples",
    "build_query",
    "dataset_names",
    "edge_relation_from_pairs",
    "load_dataset",
    "load_dataset_database",
    "node_relation",
    "parse_query",
    "select_gao",
    "__version__",
]
