"""Small shared utilities: time budgets and deterministic RNG helpers."""

from __future__ import annotations

import random
import time
from typing import Optional

from repro.errors import TimeoutExceeded


class TimeBudget:
    """A soft execution deadline checked cooperatively by long-running loops.

    The paper imposes a 30-minute timeout per execution and reports "-" for
    runs that exceed it.  Our engines accept an optional budget and check it
    every few thousand iterations; when exceeded they raise
    :class:`repro.errors.TimeoutExceeded`, which the benchmark harness
    converts into the same "-" marker.
    """

    __slots__ = ("seconds", "_start", "_check_every", "_counter")

    def __init__(self, seconds: Optional[float], check_every: int = 2048) -> None:
        self.seconds = seconds
        self._start = time.perf_counter()
        self._check_every = max(1, check_every)
        self._counter = 0

    def elapsed(self) -> float:
        """Seconds since the budget was created."""
        return time.perf_counter() - self._start

    def expired(self) -> bool:
        """True when the budget exists and has been exceeded."""
        return self.seconds is not None and self.elapsed() > self.seconds

    def tick(self) -> None:
        """Cheap periodic check; raises :class:`TimeoutExceeded` when expired."""
        if self.seconds is None:
            return
        self._counter += 1
        if self._counter % self._check_every:
            return
        elapsed = self.elapsed()
        if elapsed > self.seconds:
            raise TimeoutExceeded(elapsed, self.seconds)

    def check_now(self) -> None:
        """Immediate check (used at phase boundaries)."""
        if self.seconds is None:
            return
        elapsed = self.elapsed()
        if elapsed > self.seconds:
            raise TimeoutExceeded(elapsed, self.seconds)

    @classmethod
    def unlimited(cls) -> "TimeBudget":
        """A budget that never expires."""
        return cls(None)


def deterministic_rng(seed: int) -> random.Random:
    """A :class:`random.Random` seeded deterministically (never the global RNG)."""
    return random.Random(seed)
