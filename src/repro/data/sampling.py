"""Node sampling by selectivity (the ``v1``/``v2`` relations of §5.1).

The acyclic benchmark queries draw their endpoint sets from random node
samples.  "Selectivity ``s``" means every node is kept with probability
``1/s``: the paper uses selectivities 8 and 80 for the small datasets and
10, 100, 1000 for the rest.  Samples are deterministic in
``(dataset nodes, selectivity, sample index, seed)``, so two systems
benchmarked on the same cell see the same sample — the "each system sees
the same random datasets" protocol of §5.1.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.errors import DatasetError
from repro.storage.database import Database
from repro.storage.loader import node_relation, nodes_of
from repro.storage.relation import Relation
from repro.util import deterministic_rng


def sample_nodes(nodes: Sequence[int], selectivity: int,
                 sample_index: int = 1, seed: int = 0) -> List[int]:
    """Keep each node with probability ``1 / selectivity``.

    ``sample_index`` distinguishes v1 from v2 (and so on) so the samples of
    one query are independent; the draw is otherwise fully deterministic.
    At least one node is always returned (an empty endpoint set makes every
    benchmark cell trivially zero, which the paper's protocol avoids by
    construction on its much larger graphs).
    """
    if selectivity < 1:
        raise DatasetError("selectivity must be at least 1")
    if not nodes:
        raise DatasetError("cannot sample from an empty node set")
    rng = deterministic_rng(hash((seed, selectivity, sample_index)) & 0x7FFFFFFF)
    probability = 1.0 / selectivity
    sample = [node for node in nodes if rng.random() < probability]
    if not sample:
        sample = [nodes[rng.randrange(len(nodes))]]
    return sample


def attach_samples(database: Database, selectivity: int,
                   sample_names: Iterable[str] = ("v1", "v2"),
                   edge_relation: str = "edge", seed: int = 0) -> Database:
    """Add unary sample relations drawn from the edge relation's nodes.

    Existing relations with the same names are replaced, so a benchmark can
    reuse one database across selectivities.
    """
    edges = database.relation(edge_relation)
    nodes = nodes_of(edges)
    for index, name in enumerate(sample_names, start=1):
        sample = sample_nodes(nodes, selectivity, sample_index=index, seed=seed)
        database.add(node_relation(sample, name), replace=True)
    return database


def sample_relation(edge_rel: Relation, selectivity: int, name: str,
                    sample_index: int = 1, seed: int = 0) -> Relation:
    """A standalone unary sample relation over ``edge_rel``'s node set."""
    nodes = nodes_of(edge_rel)
    return node_relation(
        sample_nodes(nodes, selectivity, sample_index=sample_index, seed=seed), name
    )
