"""The dataset catalog: SNAP-shaped synthetic stand-ins.

The paper evaluates on fifteen graphs from the SNAP collection.  Those
files cannot be downloaded offline and, at their original sizes, pure
Python join execution would take hours per cell, so each dataset is mapped
to a deterministic synthetic graph that preserves the properties the
paper's analysis leans on:

* the *size ranking* across datasets (Gnutella04 < GrQc < ... < Orkut),
* the *density regime* (sparse peer-to-peer graphs vs. dense ego/social
  networks),
* the *triangle richness* (Gnutella is nearly triangle-free, ego-Facebook
  and the soc-* graphs are clique-rich),
* the *small vs. large* split that decides which selectivities the paper
  uses (8/80 for the eight small datasets, 10/100/1000 for the rest).

Every spec also records the original node/edge/triangle counts so reports
can show what is being stood in for.  ``scale`` lets benchmarks shrink or
grow a dataset proportionally (used by the Figures 6/7 edge-scaling
experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import DatasetError
from repro.data.generators import GraphSpec
from repro.storage.database import Database
from repro.storage.loader import edge_relation_from_pairs
from repro.storage.relation import Relation


@dataclass(frozen=True)
class DatasetSpec:
    """One SNAP dataset and the synthetic graph standing in for it."""

    name: str
    paper_nodes: int
    paper_edges: int
    paper_triangles: int
    small: bool
    graph: GraphSpec
    regime: str

    def generate_edges(self, scale: float = 1.0) -> List[Tuple[int, int]]:
        """The undirected edge list, optionally scaled in node count."""
        if scale <= 0:
            raise DatasetError("scale must be positive")
        if scale == 1.0:
            return self.graph.generate()
        parameters = dict(self.graph.parameters)
        scaled = dict(parameters)
        for key in ("num_nodes", "num_edges"):
            if key in scaled:
                scaled[key] = max(4, int(round(scaled[key] * scale)))
        spec = GraphSpec(kind=self.graph.kind,
                         parameters=tuple(sorted(scaled.items())),
                         seed=self.graph.seed)
        return spec.generate()


def _spec(name: str, paper_nodes: int, paper_edges: int, paper_triangles: int,
          small: bool, regime: str, kind: str, seed: int,
          **parameters: float) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        paper_nodes=paper_nodes,
        paper_edges=paper_edges,
        paper_triangles=paper_triangles,
        small=small,
        regime=regime,
        graph=GraphSpec(kind=kind, parameters=tuple(sorted(parameters.items())),
                        seed=seed),
    )


# The scaled sizes keep the original ordering of the datasets by edge count
# while staying small enough for interpreted execution; the generator kinds
# match the structural regime described in the module docstring.
DATASET_CATALOG: Dict[str, DatasetSpec] = {
    spec.name: spec for spec in [
        _spec("ca-GrQc", 5_242, 28_980, 48_260, True, "collaboration",
              "watts-strogatz", seed=11,
              num_nodes=130, neighbours=6, rewire_probability=0.15),
        _spec("p2p-Gnutella04", 10_876, 39_994, 934, True, "peer-to-peer",
              "erdos-renyi", seed=12, num_nodes=260, num_edges=520),
        _spec("ego-Facebook", 4_039, 88_234, 1_612_010, True, "ego network",
              "powerlaw-cluster", seed=13,
              num_nodes=110, edges_per_node=7, triangle_probability=0.8),
        _spec("ca-CondMat", 23_133, 186_936, 173_361, True, "collaboration",
              "watts-strogatz", seed=14,
              num_nodes=220, neighbours=8, rewire_probability=0.2),
        _spec("wiki-Vote", 7_115, 103_689, 608_389, True, "voting",
              "barabasi-albert", seed=15, num_nodes=160, edges_per_node=6),
        _spec("p2p-Gnutella31", 62_586, 147_892, 2_024, True, "peer-to-peer",
              "erdos-renyi", seed=16, num_nodes=420, num_edges=900),
        _spec("email-Enron", 36_692, 367_662, 727_044, True, "communication",
              "barabasi-albert", seed=17, num_nodes=260, edges_per_node=6),
        _spec("loc-Brightkite", 58_228, 428_156, 494_728, True, "location",
              "planted-partition", seed=18,
              num_nodes=240, num_communities=8, p_within=0.22, p_between=0.004),
        _spec("soc-Epinions1", 75_879, 508_837, 1_624_481, False, "social",
              "barabasi-albert", seed=19, num_nodes=340, edges_per_node=6),
        _spec("soc-Slashdot0811", 77_360, 905_468, 551_724, False, "social",
              "barabasi-albert", seed=20, num_nodes=420, edges_per_node=7),
        _spec("soc-Slashdot0902", 82_168, 948_464, 602_592, False, "social",
              "barabasi-albert", seed=21, num_nodes=440, edges_per_node=7),
        _spec("ego-Twitter", 81_306, 2_420_766, 13_082_506, False, "ego network",
              "powerlaw-cluster", seed=22,
              num_nodes=360, edges_per_node=8, triangle_probability=0.7),
        _spec("soc-Pokec", 1_632_803, 30_622_564, 32_557_458, False, "social",
              "barabasi-albert", seed=23, num_nodes=900, edges_per_node=8),
        _spec("soc-LiveJournal1", 4_847_571, 68_993_773, 285_730_264, False,
              "social", "barabasi-albert", seed=24,
              num_nodes=1200, edges_per_node=9),
        _spec("com-Orkut", 3_072_441, 117_185_083, 627_584_181, False, "social",
              "barabasi-albert", seed=25, num_nodes=1500, edges_per_node=10),
    ]
}


def dataset_names(small_only: bool = False,
                  large_only: bool = False) -> List[str]:
    """Dataset names in the catalog's (paper-size) order."""
    names = list(DATASET_CATALOG)
    if small_only:
        names = [name for name in names if DATASET_CATALOG[name].small]
    if large_only:
        names = [name for name in names if not DATASET_CATALOG[name].small]
    return names


def dataset(name: str) -> DatasetSpec:
    """Look up a dataset spec by name."""
    try:
        return DATASET_CATALOG[name]
    except KeyError:
        known = ", ".join(dataset_names())
        raise DatasetError(f"unknown dataset {name!r}; known datasets: {known}") \
            from None


def load_dataset(name: str, scale: float = 1.0,
                 relation_name: str = "edge") -> Relation:
    """Generate the dataset's ``edge`` relation (both edge directions stored)."""
    spec = dataset(name)
    edges = spec.generate_edges(scale=scale)
    return edge_relation_from_pairs(edges, name=relation_name, undirected=True)


def load_dataset_database(name: str, scale: float = 1.0) -> Database:
    """A database holding just the dataset's ``edge`` relation.

    Node samples (``v1``, ``v2``, ...) are attached separately with
    :func:`repro.data.sampling.attach_samples` because different benchmark
    cells need different selectivities.
    """
    return Database([load_dataset(name, scale=scale)])
