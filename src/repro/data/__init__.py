"""Dataset substrate: synthetic graphs standing in for the SNAP collection.

The paper's experiments run over fifteen SNAP network datasets.  Those
files are not available offline, so this package provides deterministic
synthetic generators (:mod:`repro.data.generators`) and a catalog
(:mod:`repro.data.catalog`) that maps every SNAP dataset the paper uses to
a scaled-down synthetic graph in the same structural regime (sparse
peer-to-peer, dense ego/social, collaboration, ...).  Node sampling by
selectivity — the ``v1``/``v2`` relations of the acyclic queries — lives in
:mod:`repro.data.sampling`.
"""

from repro.data.generators import (
    GraphSpec,
    barabasi_albert_graph,
    erdos_renyi_graph,
    planted_partition_graph,
    powerlaw_cluster_graph,
    ring_lattice_graph,
    watts_strogatz_graph,
)
from repro.data.catalog import (
    DATASET_CATALOG,
    DatasetSpec,
    dataset,
    dataset_names,
    load_dataset,
    load_dataset_database,
)
from repro.data.sampling import attach_samples, sample_nodes

__all__ = [
    "DATASET_CATALOG",
    "DatasetSpec",
    "GraphSpec",
    "attach_samples",
    "barabasi_albert_graph",
    "dataset",
    "dataset_names",
    "erdos_renyi_graph",
    "load_dataset",
    "load_dataset_database",
    "planted_partition_graph",
    "powerlaw_cluster_graph",
    "ring_lattice_graph",
    "sample_nodes",
    "watts_strogatz_graph",
]
