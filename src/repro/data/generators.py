"""Deterministic synthetic graph generators.

Every generator takes an explicit ``seed`` and uses its own
:class:`random.Random` instance, so the same parameters always produce the
same graph — a requirement for reproducible benchmarks.  The generators
cover the structural regimes of the SNAP datasets the paper uses:

* :func:`erdos_renyi_graph` — uniform sparse graphs (the p2p-Gnutella
  snapshots: large, sparse, almost triangle-free);
* :func:`barabasi_albert_graph` — preferential attachment (the social
  networks: heavy-tailed degrees, many triangles around hubs);
* :func:`watts_strogatz_graph` — small-world rewired ring lattices
  (collaboration networks: high clustering, moderate degrees);
* :func:`powerlaw_cluster_graph` — preferential attachment with triad
  closure (ego networks such as ego-Facebook: very dense, clique-rich);
* :func:`planted_partition_graph` — community structure (location-based
  and discussion networks).

All generators return an undirected edge list of ``(u, v)`` pairs with
``u != v`` and each undirected edge listed once; the storage loader
symmetrises them into the ``edge`` relation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.errors import DatasetError
from repro.util import deterministic_rng

EdgePair = Tuple[int, int]


def _normalise(u: int, v: int) -> EdgePair:
    return (u, v) if u < v else (v, u)


def _check_nodes(num_nodes: int) -> None:
    if num_nodes <= 1:
        raise DatasetError("a graph needs at least two nodes")


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def erdos_renyi_graph(num_nodes: int, num_edges: int, seed: int = 0) -> List[EdgePair]:
    """A G(n, m) graph: ``num_edges`` distinct uniform random edges."""
    _check_nodes(num_nodes)
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise DatasetError(
            f"cannot place {num_edges} edges among {num_nodes} nodes "
            f"(maximum {max_edges})"
        )
    rng = deterministic_rng(seed)
    edges: Set[EdgePair] = set()
    while len(edges) < num_edges:
        u = rng.randrange(num_nodes)
        v = rng.randrange(num_nodes)
        if u == v:
            continue
        edges.add(_normalise(u, v))
    return sorted(edges)


def ring_lattice_graph(num_nodes: int, neighbours: int) -> List[EdgePair]:
    """A ring lattice where every node connects to its ``neighbours`` nearest.

    ``neighbours`` must be even (half on each side), as in the standard
    Watts-Strogatz construction.
    """
    _check_nodes(num_nodes)
    if neighbours <= 0 or neighbours % 2:
        raise DatasetError("ring lattice needs a positive even neighbour count")
    if neighbours >= num_nodes:
        raise DatasetError("neighbour count must be smaller than the node count")
    edges: Set[EdgePair] = set()
    half = neighbours // 2
    for node in range(num_nodes):
        for offset in range(1, half + 1):
            edges.add(_normalise(node, (node + offset) % num_nodes))
    return sorted(edges)


def watts_strogatz_graph(num_nodes: int, neighbours: int,
                         rewire_probability: float, seed: int = 0) -> List[EdgePair]:
    """A small-world graph: ring lattice with random rewiring."""
    if not 0.0 <= rewire_probability <= 1.0:
        raise DatasetError("rewire probability must be in [0, 1]")
    rng = deterministic_rng(seed)
    edges: Set[EdgePair] = set(ring_lattice_graph(num_nodes, neighbours))
    rewired: Set[EdgePair] = set()
    for u, v in sorted(edges):
        if rng.random() >= rewire_probability:
            rewired.add((u, v))
            continue
        # Rewire the far endpoint to a uniformly random non-neighbour.
        for _ in range(num_nodes):
            w = rng.randrange(num_nodes)
            candidate = _normalise(u, w)
            if w != u and candidate not in rewired and candidate not in edges:
                rewired.add(candidate)
                break
        else:
            rewired.add((u, v))
    return sorted(rewired)


def barabasi_albert_graph(num_nodes: int, edges_per_node: int,
                          seed: int = 0) -> List[EdgePair]:
    """Preferential attachment: each new node attaches to ``edges_per_node``
    existing nodes chosen proportionally to their degree."""
    _check_nodes(num_nodes)
    if edges_per_node < 1:
        raise DatasetError("each node must attach with at least one edge")
    if edges_per_node >= num_nodes:
        raise DatasetError("edges per node must be smaller than the node count")
    rng = deterministic_rng(seed)
    edges: Set[EdgePair] = set()
    # Start from a small clique so early attachments have targets.
    core = edges_per_node + 1
    for i in range(core):
        for j in range(i + 1, core):
            edges.add((i, j))
    # repeated_nodes holds one entry per edge endpoint: sampling from it is
    # sampling proportionally to degree.
    repeated_nodes: List[int] = []
    for u, v in edges:
        repeated_nodes.extend((u, v))
    for node in range(core, num_nodes):
        targets: Set[int] = set()
        while len(targets) < edges_per_node:
            targets.add(rng.choice(repeated_nodes))
        for target in targets:
            edges.add(_normalise(node, target))
            repeated_nodes.extend((node, target))
    return sorted(edges)


def powerlaw_cluster_graph(num_nodes: int, edges_per_node: int,
                           triangle_probability: float,
                           seed: int = 0) -> List[EdgePair]:
    """Holme-Kim style generator: preferential attachment plus triad closure.

    After each preferential attachment step, with probability
    ``triangle_probability`` the next edge goes to a random neighbour of the
    previous target, closing a triangle.  This produces the clique-rich
    graphs (ego-Facebook, ego-Twitter) on which the paper's clique queries
    are expensive.
    """
    _check_nodes(num_nodes)
    if not 0.0 <= triangle_probability <= 1.0:
        raise DatasetError("triangle probability must be in [0, 1]")
    if edges_per_node < 1 or edges_per_node >= num_nodes:
        raise DatasetError("edges per node must be in [1, num_nodes)")
    rng = deterministic_rng(seed)
    edges: Set[EdgePair] = set()
    neighbours: List[Set[int]] = [set() for _ in range(num_nodes)]

    def add_edge(u: int, v: int) -> None:
        if u == v:
            return
        edges.add(_normalise(u, v))
        neighbours[u].add(v)
        neighbours[v].add(u)

    core = edges_per_node + 1
    for i in range(core):
        for j in range(i + 1, core):
            add_edge(i, j)
    repeated_nodes: List[int] = []
    for u, v in edges:
        repeated_nodes.extend((u, v))

    for node in range(core, num_nodes):
        added = 0
        last_target: int = -1
        while added < edges_per_node:
            if (last_target >= 0 and rng.random() < triangle_probability
                    and neighbours[last_target]):
                candidate = rng.choice(sorted(neighbours[last_target]))
            else:
                candidate = rng.choice(repeated_nodes)
            if candidate == node or candidate in neighbours[node]:
                # Fall back to a fresh preferential pick to avoid stalling.
                candidate = rng.choice(repeated_nodes)
                if candidate == node or candidate in neighbours[node]:
                    continue
            add_edge(node, candidate)
            repeated_nodes.extend((node, candidate))
            last_target = candidate
            added += 1
    return sorted(edges)


def planted_partition_graph(num_nodes: int, num_communities: int,
                            p_within: float, p_between: float,
                            seed: int = 0) -> List[EdgePair]:
    """Community-structured graph: dense within blocks, sparse across."""
    _check_nodes(num_nodes)
    if num_communities < 1:
        raise DatasetError("need at least one community")
    for probability in (p_within, p_between):
        if not 0.0 <= probability <= 1.0:
            raise DatasetError("edge probabilities must be in [0, 1]")
    rng = deterministic_rng(seed)
    community_of = [node % num_communities for node in range(num_nodes)]
    edges: Set[EdgePair] = set()
    for u in range(num_nodes):
        for v in range(u + 1, num_nodes):
            probability = (
                p_within if community_of[u] == community_of[v] else p_between
            )
            if rng.random() < probability:
                edges.add((u, v))
    return sorted(edges)


# ----------------------------------------------------------------------
# Declarative specification (used by the catalog)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GraphSpec:
    """A declarative description of a synthetic graph.

    ``kind`` selects the generator and ``parameters`` its keyword arguments
    (excluding ``seed``); :meth:`generate` instantiates the edge list.
    """

    kind: str
    parameters: Tuple[Tuple[str, float], ...]
    seed: int = 0

    _GENERATORS = {
        "erdos-renyi": erdos_renyi_graph,
        "barabasi-albert": barabasi_albert_graph,
        "watts-strogatz": watts_strogatz_graph,
        "powerlaw-cluster": powerlaw_cluster_graph,
        "planted-partition": planted_partition_graph,
    }

    def generate(self) -> List[EdgePair]:
        """Build the edge list described by the spec."""
        generator = self._GENERATORS.get(self.kind)
        if generator is None:
            known = ", ".join(sorted(self._GENERATORS))
            raise DatasetError(f"unknown graph kind {self.kind!r}; known: {known}")
        return generator(seed=self.seed, **dict(self.parameters))
