"""A column-at-a-time executor (the MonetDB stand-in).

MonetDB evaluates queries as a sequence of full-column operations, always
materialising the operand and result columns, and its optimizer picks join
orders greedily from base-table sizes rather than from estimated
intermediate sizes.  The paper observes the consequence on graph patterns:
"MonetDB starts from either of the random node samples, and immediately
does a self-join between two edges, which is a slow execution plan".

This module reproduces that regime:

* join order = smallest base relation first, then grow greedily
  (:func:`repro.joins.optimizer.greedy_smallest_first_order`);
* every step materialises *positional* column vectors (with duplicates) for
  the whole intermediate, as a column store would, rather than hashed sets
  of rows;
* filters are applied only when all their columns are materialised.

The executor is still exact — it is a baseline, not a strawman — but its
work is proportional to the blown-up intermediates, which is what Tables 6
and 7 show.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    resolve_atom_relation,
)
from repro.joins.optimizer import greedy_smallest_first_order
from repro.storage.database import Database
from repro.util import TimeBudget


class _ColumnBlock:
    """A bag-semantics intermediate stored column-wise."""

    __slots__ = ("schema", "columns", "length")

    def __init__(self, schema: Sequence[Variable],
                 columns: Sequence[List[int]]) -> None:
        self.schema = tuple(schema)
        self.columns = [list(column) for column in columns]
        self.length = len(self.columns[0]) if self.columns else 0
        for column in self.columns:
            if len(column) != self.length:
                raise ExecutionError("ragged column block")

    def row(self, index: int) -> Tuple[int, ...]:
        return tuple(column[index] for column in self.columns)

    def __len__(self) -> int:
        return self.length


class ColumnAtATimeJoin(JoinAlgorithm):
    """Greedy, fully materialising, column-at-a-time join executor."""

    name = "columnar"

    def __init__(self, budget: Optional[TimeBudget] = None) -> None:
        super().__init__(budget)
        self.last_intermediate_sizes: List[int] = []
        self.last_atom_order: List[int] = []

    # ------------------------------------------------------------------
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        block = self._evaluate(database, query)
        if block is None:
            return
        variables = query.variables
        positions = [block.schema.index(v) for v in variables]
        seen: Set[Tuple[int, ...]] = set()
        for index in range(len(block)):
            row = block.row(index)
            key = tuple(row[p] for p in positions)
            if key in seen:
                continue
            seen.add(key)
            yield dict(zip(variables, key))

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        self._check_supported(query)
        block = self._evaluate(database, query)
        if block is None:
            return 0
        variables = query.variables
        positions = [block.schema.index(v) for v in variables]
        distinct: Set[Tuple[int, ...]] = set()
        for index in range(len(block)):
            row = block.row(index)
            distinct.add(tuple(row[p] for p in positions))
        return len(distinct)

    # ------------------------------------------------------------------
    def _evaluate(self, database: Database,
                  query: ConjunctiveQuery) -> Optional[_ColumnBlock]:
        order = greedy_smallest_first_order(database, query)
        self.last_atom_order = list(order)
        self.last_intermediate_sizes = []
        pending_filters = list(query.filters)

        current: Optional[_ColumnBlock] = None
        for atom_index in order:
            scan = self._scan(database, query, atom_index)
            if scan is None:
                return _ColumnBlock(query.variables,
                                    [[] for _ in query.variables])
            if not scan.schema:
                # A satisfied ground atom adds no columns; skip it.
                continue
            current = scan if current is None else self._join(current, scan)
            current = self._apply_filters(current, pending_filters)
            self.last_intermediate_sizes.append(len(current))
            if len(current) == 0:
                return _ColumnBlock(query.variables,
                                    [[] for _ in query.variables])
        if current is None:
            return None
        missing = [v for v in query.variables if v not in current.schema]
        if missing:
            raise ExecutionError(f"columnar plan failed to bind {missing}")
        return current

    def _scan(self, database: Database, query: ConjunctiveQuery,
              atom_index: int) -> Optional[_ColumnBlock]:
        atom = query.atoms[atom_index]
        relation = resolve_atom_relation(database, atom)
        columns = atom_variable_columns(atom)
        if not columns:
            if len(relation) == 0:
                return None
            return _ColumnBlock((), [])
        schema = [variable for variable, _ in columns]
        vectors: List[List[int]] = [[] for _ in schema]
        for row in relation:
            for position, (_, column) in enumerate(columns):
                vectors[position].append(row[column])
        return _ColumnBlock(schema, vectors)

    def _join(self, left: _ColumnBlock, right: _ColumnBlock) -> _ColumnBlock:
        """Column-at-a-time equi-join: build on the right, probe column-wise."""
        shared = [v for v in left.schema if v in right.schema]
        right_extra = [v for v in right.schema if v not in shared]
        out_schema = tuple(left.schema) + tuple(right_extra)

        right_key_positions = [right.schema.index(v) for v in shared]
        right_extra_positions = [right.schema.index(v) for v in right_extra]
        left_key_positions = [left.schema.index(v) for v in shared]

        index: Dict[Tuple[int, ...], List[int]] = {}
        for row_id in range(len(right)):
            self.budget.tick()
            key = tuple(right.columns[p][row_id] for p in right_key_positions)
            index.setdefault(key, []).append(row_id)

        out_columns: List[List[int]] = [[] for _ in out_schema]
        num_left = len(left.schema)
        for row_id in range(len(left)):
            self.budget.tick()
            key = tuple(left.columns[p][row_id] for p in left_key_positions)
            for match in index.get(key, ()):  # positional fan-out
                for position in range(num_left):
                    out_columns[position].append(left.columns[position][row_id])
                for offset, right_position in enumerate(right_extra_positions):
                    out_columns[num_left + offset].append(
                        right.columns[right_position][match]
                    )
        if not out_schema:
            # Joining two empty-schema blocks: keep a single unit row if both
            # sides are non-empty.
            length = 1 if len(left) and len(right) else 0
            block = _ColumnBlock((), [])
            block.length = length
            return block
        return _ColumnBlock(out_schema, out_columns)

    def _apply_filters(self, block: _ColumnBlock,
                       pending: List[ComparisonAtom]) -> _ColumnBlock:
        available = set(block.schema)
        ready = [f for f in pending if set(f.variables) <= available]
        if not ready or len(block) == 0:
            return block
        for flt in ready:
            pending.remove(flt)
        position_of = {v: i for i, v in enumerate(block.schema)}
        keep: List[int] = []
        for row_id in range(len(block)):
            self.budget.tick()
            binding = {v: block.columns[i][row_id] for v, i in position_of.items()}
            if all(flt.evaluate(binding) for flt in ready):
                keep.append(row_id)
        columns = [[column[row_id] for row_id in keep] for column in block.columns]
        return _ColumnBlock(block.schema, columns)
