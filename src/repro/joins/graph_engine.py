"""A specialized graph-pattern engine (the GraphLab stand-in).

The paper compares against GraphLab, whose clique finders are hand-written
C++ kernels over adjacency structures rather than join plans.  GraphLab's
coverage in the paper is limited to the 3-clique and 4-clique queries
("developing new algorithms on GraphLab can be a heavy undertaking"), and
this stand-in mirrors that: it recognises k-clique patterns over a single
binary edge relation and evaluates them with sorted-adjacency-set
intersection; any other query is rejected with :class:`ExecutionError`.

The kernels are the standard node/edge-iterator algorithms: for the ordered
clique ``a < b < c (< d)`` the engine iterates edges ``(u, v)`` with
``u < v`` and intersects forward adjacency sets, which is why — like the
real GraphLab — it is extremely fast on sparse graphs with few cliques.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable, is_variable
from repro.joins.base import Binding, JoinAlgorithm, filters_satisfied
from repro.storage.database import Database
from repro.util import TimeBudget


class CliquePattern:
    """A recognised k-clique pattern: the edge relation and the variables."""

    def __init__(self, relation_name: str, variables: Tuple[Variable, ...],
                 ordered_chain: Optional[Tuple[Variable, ...]]) -> None:
        self.relation_name = relation_name
        self.variables = variables
        self.ordered_chain = ordered_chain

    @property
    def k(self) -> int:
        return len(self.variables)


def recognise_clique(query: ConjunctiveQuery) -> Optional[CliquePattern]:
    """Return the clique pattern of ``query`` or ``None`` if it is not one.

    A k-clique query has exactly ``k * (k - 1) / 2`` binary atoms over one
    relation, covering every unordered pair of its ``k`` variables, with no
    constants and no unary atoms.  The symmetry-breaking filters
    ``a < b < c ...`` are recognised separately (``ordered_chain``) so the
    engine knows whether it should emit ordered cliques or all permutations.
    """
    if not query.atoms:
        return None
    relation_names = {atom.name for atom in query.atoms}
    if len(relation_names) != 1:
        return None
    relation_name = next(iter(relation_names))
    pairs: Set[frozenset] = set()
    for atom in query.atoms:
        if atom.arity != 2:
            return None
        if not all(is_variable(term) for term in atom.terms):
            return None
        if atom.terms[0] == atom.terms[1]:
            return None
        pairs.add(frozenset(atom.terms))
    variables = query.variables
    k = len(variables)
    expected = {frozenset(pair) for pair in _all_pairs(variables)}
    if pairs != expected or len(query.atoms) != len(expected):
        return None
    ordered_chain = _ordered_chain(query.filters, variables)
    return CliquePattern(relation_name, variables, ordered_chain)


def _all_pairs(variables: Sequence[Variable]) -> List[Tuple[Variable, Variable]]:
    out = []
    for i, u in enumerate(variables):
        for v in variables[i + 1:]:
            out.append((u, v))
    return out


def _ordered_chain(filters: Sequence[ComparisonAtom],
                   variables: Sequence[Variable]) -> Optional[Tuple[Variable, ...]]:
    """Detect a strict total order ``v1 < v2 < ... < vk`` among the filters."""
    strict_less: Set[Tuple[Variable, Variable]] = set()
    for flt in filters:
        if flt.op == "<" and is_variable(flt.left) and is_variable(flt.right):
            strict_less.add((flt.left, flt.right))
        elif flt.op == ">" and is_variable(flt.left) and is_variable(flt.right):
            strict_less.add((flt.right, flt.left))
        else:
            return None
    if len(strict_less) != len(variables) - 1:
        return None
    successors = dict(strict_less)
    sources = set(successors) - set(successors.values())
    if len(sources) != 1:
        return None
    chain = [next(iter(sources))]
    while chain[-1] in successors:
        chain.append(successors[chain[-1]])
    if len(chain) != len(variables) or set(chain) != set(variables):
        return None
    return tuple(chain)


class GraphEngine(JoinAlgorithm):
    """Adjacency-set clique kernels; rejects everything else."""

    name = "graphlab"

    def __init__(self, budget: Optional[TimeBudget] = None) -> None:
        super().__init__(budget)

    # ------------------------------------------------------------------
    def supports(self, query: ConjunctiveQuery) -> bool:
        """True when the engine has a kernel for ``query``."""
        pattern = recognise_clique(query)
        return pattern is not None and 3 <= pattern.k <= 4

    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        pattern = recognise_clique(query)
        if pattern is None or not 3 <= pattern.k <= 4:
            raise ExecutionError(
                "the graph engine only implements 3-clique and 4-clique kernels"
            )
        adjacency = self._adjacency(database, pattern.relation_name)
        if pattern.k == 3:
            cliques = self._triangles(adjacency)
        else:
            cliques = self._four_cliques(adjacency)

        if pattern.ordered_chain is not None:
            chain = pattern.ordered_chain
            for nodes in cliques:
                yield dict(zip(chain, nodes))
            return
        # No (or unusual) symmetry breaking: expand each unordered clique to
        # the permutations satisfying the query's filters.
        variables = pattern.variables
        for nodes in cliques:
            for assignment in permutations(nodes):
                binding = dict(zip(variables, assignment))
                if filters_satisfied(binding, query.filters):
                    yield binding

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        return sum(1 for _ in self.enumerate_bindings(database, query))

    # ------------------------------------------------------------------
    # Kernels
    # ------------------------------------------------------------------
    def _adjacency(self, database: Database,
                   relation_name: str) -> Dict[int, Set[int]]:
        relation = database.relation(relation_name)
        if relation.arity != 2:
            raise ExecutionError(
                f"clique kernels need a binary relation, got arity {relation.arity}"
            )
        adjacency: Dict[int, Set[int]] = {}
        for u, v in relation:
            if u == v:
                continue
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        return adjacency

    def _triangles(self, adjacency: Dict[int, Set[int]]
                   ) -> Iterator[Tuple[int, int, int]]:
        """Ordered triangles ``u < v < w`` via forward-adjacency intersection."""
        for u in sorted(adjacency):
            self.budget.tick()
            forward_u = {v for v in adjacency[u] if v > u}
            for v in sorted(forward_u):
                common = forward_u & adjacency[v]
                for w in sorted(common):
                    if w > v:
                        yield (u, v, w)

    def _four_cliques(self, adjacency: Dict[int, Set[int]]
                      ) -> Iterator[Tuple[int, int, int, int]]:
        """Ordered 4-cliques ``u < v < w < x``."""
        for u in sorted(adjacency):
            self.budget.tick()
            forward_u = {v for v in adjacency[u] if v > u}
            for v in sorted(forward_u):
                common_uv = forward_u & adjacency[v]
                for w in sorted(common_uv):
                    if w <= v:
                        continue
                    self.budget.tick()
                    common_uvw = common_uv & adjacency[w]
                    for x in sorted(common_uvw):
                        if x > w:
                            yield (u, v, w, x)
