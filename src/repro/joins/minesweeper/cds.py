"""The Constraint Data Structure (CDS): a trie of patterns with interval lists.

The CDS stores every gap box discovered so far and answers one question:
*what is the next free tuple* — the lexicographically smallest point of the
output space, at or after the current frontier, that is not covered by any
stored gap box (Idea 2: the moving frontier).

Structure (§4.3): a tree with one level per GAO attribute.  Each edge is
labelled with a value or the wildcard ``*``; the labels along the path from
the root identify a node's *pattern*.  Each node stores an
:class:`~repro.joins.minesweeper.intervals.IntervalList`; an interval
``(l, r)`` at a node with pattern ``p`` encodes the constraint
``<p, (l, r), *, ..., *>``.

``compute_free_tuple`` walks the attributes in GAO order.  At depth ``d``
the constraints that can rule out values are exactly those stored at nodes
whose pattern *generalizes* the current prefix ``(t_0, ..., t_{d-1})``; for
β-acyclic queries evaluated under a nested elimination order those nodes
form a chain (Proposition 4.2), which is what makes the interval caching of
Idea 5 and the complete nodes of Idea 6 effective.  This implementation
does not *require* the chain property: caching is applied only when the
constraining nodes do form a chain (detected via their exact-position
sets), so the data structure stays correct for arbitrary queries — exactly
the robustness Idea 7 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError
from repro.joins.minesweeper.constraints import WILDCARD, Constraint
from repro.joins.minesweeper.intervals import (
    NEG_INF,
    POS_INF,
    IntervalList,
    interval_is_empty,
)

Number = Union[int, float]
Label = Union[int, str]


class CDSNode:
    """One node of the constraint tree."""

    __slots__ = ("label", "parent", "depth", "children", "intervals",
                 "exact_positions", "exhaust_count", "complete")

    def __init__(self, label: Optional[Label], parent: Optional["CDSNode"]) -> None:
        self.label = label
        self.parent = parent
        self.depth = 0 if parent is None else parent.depth + 1
        self.children: Dict[Label, CDSNode] = {}
        self.intervals = IntervalList()
        # GAO positions at which the node's pattern has an exact value.
        if parent is None:
            self.exact_positions: frozenset = frozenset()
        elif label == WILDCARD:
            self.exact_positions = parent.exact_positions
        else:
            self.exact_positions = parent.exact_positions | {parent.depth}
        # Idea 6 bookkeeping: a node becomes "complete" after the search has
        # exhausted its level twice; from then on its own interval list is
        # enough and the ping-pong over the chain can be skipped.
        self.exhaust_count = 0
        self.complete = False

    def child(self, label: Label, create: bool = False) -> Optional["CDSNode"]:
        """Return the child along ``label``, creating it when asked."""
        node = self.children.get(label)
        if node is None and create:
            node = CDSNode(label, self)
            self.children[label] = node
        return node

    def pattern(self) -> Tuple[Label, ...]:
        """The labels from the root to this node (diagnostics and tests)."""
        labels: List[Label] = []
        node: Optional[CDSNode] = self
        while node is not None and node.parent is not None:
            labels.append(node.label)  # type: ignore[arg-type]
            node = node.parent
        return tuple(reversed(labels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CDSNode(pattern={self.pattern()}, intervals={self.intervals!r})"


@dataclass
class CDSStatistics:
    """Counters describing the work done by the CDS (used by benchmarks)."""

    constraints_inserted: int = 0
    nodes_created: int = 0
    cache_intervals_inserted: int = 0
    truncations: int = 0
    ping_pong_rounds: int = 0
    complete_node_hits: int = 0
    free_tuples_returned: int = 0

    def as_dict(self) -> dict:
        """Flat counters for traces, reports, and JSON output."""
        return {
            "constraints_inserted": self.constraints_inserted,
            "nodes_created": self.nodes_created,
            "cache_intervals_inserted": self.cache_intervals_inserted,
            "truncations": self.truncations,
            "ping_pong_rounds": self.ping_pong_rounds,
            "complete_node_hits": self.complete_node_hits,
            "free_tuples_returned": self.free_tuples_returned,
        }


class ConstraintTree:
    """The CDS plus the moving frontier.

    Parameters
    ----------
    width:
        Number of GAO attributes ``n``.
    enable_interval_caching:
        Idea 5: insert the interval discovered by a ping-pong round into the
        chain's bottom node so the work is never repeated.
    enable_complete_nodes:
        Idea 6: once a bottom node has been exhausted twice, trust its own
        interval list and skip the ping-pong entirely.
    """

    def __init__(self, width: int,
                 enable_interval_caching: bool = True,
                 enable_complete_nodes: bool = True) -> None:
        if width <= 0:
            raise ExecutionError("CDS width must be positive")
        self.width = width
        self.root = CDSNode(None, None)
        self.frontier: List[int] = [-1] * width
        self.enable_interval_caching = enable_interval_caching
        self.enable_complete_nodes = enable_complete_nodes
        self.statistics = CDSStatistics()
        self._node_count = 1

    # ------------------------------------------------------------------
    # Frontier management (Idea 2)
    # ------------------------------------------------------------------
    def set_frontier(self, values: Sequence[int]) -> None:
        """Move the frontier; it must never move backwards lexicographically."""
        candidate = list(values)
        if len(candidate) != self.width:
            raise ExecutionError(
                f"frontier of length {len(candidate)} for width {self.width}"
            )
        if candidate < self.frontier:
            raise ExecutionError("frontier may only move forward")
        self.frontier = candidate

    def advance_frontier_after_output(self) -> None:
        """After reporting the current frontier as an output, step past it."""
        self.frontier = list(self.frontier)
        self.frontier[-1] += 1

    # ------------------------------------------------------------------
    # Constraint insertion
    # ------------------------------------------------------------------
    def insert_constraint(self, constraint: Constraint) -> None:
        """Insert a gap box (Definition 4.1) into the tree."""
        if constraint.width != self.width:
            raise ExecutionError(
                f"constraint width {constraint.width} != CDS width {self.width}"
            )
        if constraint.is_empty():
            return
        exact = dict(constraint.prefix)
        node = self.root
        for position in range(constraint.interval_position):
            label: Label = exact.get(position, WILDCARD)
            existed = label in node.children
            node = node.child(label, create=True)  # type: ignore[assignment]
            if not existed:
                self._node_count += 1
                self.statistics.nodes_created += 1
        merged_low, merged_high = node.intervals.insert(constraint.low, constraint.high)
        self.statistics.constraints_inserted += 1
        # Point-list benefit (Idea 1): children whose label now lies strictly
        # inside the merged interval are subsumed and can be pruned.
        for label in list(node.children):
            if isinstance(label, int) and merged_low < label < merged_high:
                del node.children[label]

    # ------------------------------------------------------------------
    # computeFreeTuple (Algorithm 4, iterative form)
    # ------------------------------------------------------------------
    def compute_free_tuple(self) -> bool:
        """Advance the frontier to the next free tuple.

        Returns ``True`` when a free tuple was found (it is left in
        ``self.frontier``); ``False`` when every tuple at or after the old
        frontier is covered by stored constraints, i.e. the search is done.
        """
        width = self.width
        t = list(self.frontier)
        # generalization_stack[d] holds every CDS node at depth d whose
        # pattern generalizes (t_0, ..., t_{d-1}).
        generalization_stack: List[List[CDSNode]] = [[self.root]]
        depth = 0
        while True:
            constrainers = [
                node for node in generalization_stack[depth] if node.intervals
            ]
            start = t[depth]
            value, blanket = self._get_free_value(start, constrainers)
            if value == POS_INF:
                if blanket is not None and not self._truncate(blanket):
                    return False
                # Backtrack: every value >= start at this level is ruled out
                # for the current prefix.  When the whole level is dead
                # (start == -1), bumping the immediately previous coordinate
                # can loop forever if that coordinate does not even occur in
                # the exhausting constraints; jump instead to the deepest
                # coordinate the constrainers actually mention.
                if start <= -1:
                    relevant = -1
                    for node in constrainers:
                        if node.exact_positions:
                            relevant = max(relevant, max(node.exact_positions))
                    target = relevant
                else:
                    target = depth - 1
                if target < 0:
                    return False
                del generalization_stack[target + 1:]
                depth = target
                t[depth] += 1
                for i in range(depth + 1, width):
                    t[i] = -1
                continue
            if value > t[depth]:
                t[depth] = int(value)
                for i in range(depth + 1, width):
                    t[i] = -1
            if depth == width - 1:
                self.frontier = t
                self.statistics.free_tuples_returned += 1
                return True
            # Descend: children reachable via the concrete value or a wildcard.
            next_nodes: List[CDSNode] = []
            for node in generalization_stack[depth]:
                child = node.children.get(t[depth])
                if child is not None:
                    next_nodes.append(child)
                child = node.children.get(WILDCARD)
                if child is not None:
                    next_nodes.append(child)
            generalization_stack.append(next_nodes)
            depth += 1

    # ------------------------------------------------------------------
    # getFreeValue (Algorithm 5) with Ideas 5 and 6
    # ------------------------------------------------------------------
    def _get_free_value(self, start: int,
                        nodes: List[CDSNode]) -> Tuple[Number, Optional[CDSNode]]:
        """Smallest value ``>= start`` not covered by any node in ``nodes``.

        Returns ``(value, blanket)`` where ``blanket`` is a node whose
        intervals cover the whole line, if one exists (the caller then
        truncates the CDS, Algorithm 6).
        """
        if not nodes:
            return start, None
        bottom = self._bottom_of_chain(nodes)

        value: Number = start
        if (
            self.enable_complete_nodes
            and bottom is not None
            and bottom.complete
        ):
            # Idea 6: the bottom node has absorbed the chain's discoveries;
            # seed the search with its consolidated view.  Its intervals are
            # genuine gap knowledge, so a bottom covering the whole suffix
            # is decisive.  A value it deems free, however, must still be
            # checked against the rest of the chain below: other nodes may
            # hold constraints inserted after the bottom became complete
            # (always the case when interval caching is off), and trusting
            # the bottom alone would report a covered tuple as free — the
            # engine would then rediscover the same gap forever.  When the
            # bottom really has seen everything the check is a single
            # ping-pong round.
            self.statistics.complete_node_hits += 1
            value = bottom.intervals.next_free(start)
            if value == POS_INF:
                blanket = bottom if bottom.intervals.has_no_free_value() else None
                return POS_INF, blanket

        while True:
            self.statistics.ping_pong_rounds += 1
            round_start = value
            for node in nodes:
                value = node.intervals.next_free(value)
                if value == POS_INF:
                    self._record_exhaustion(bottom, start)
                    blanket = next(
                        (n for n in nodes if n.intervals.has_no_free_value()), None
                    )
                    return POS_INF, blanket
            if value == round_start:
                break
        if (
            self.enable_interval_caching
            and bottom is not None
            and not interval_is_empty(start - 1, value)
        ):
            # Idea 5: cache the whole skipped range in the bottom node so the
            # next visit of this chain does not repeat the ping-pong.
            bottom.intervals.insert(start - 1, value)
            self.statistics.cache_intervals_inserted += 1
        return value, None

    def _record_exhaustion(self, bottom: Optional[CDSNode], start: int) -> None:
        """Bookkeeping for Idea 6: cache the exhaustion and count it."""
        if bottom is None:
            return
        if self.enable_interval_caching:
            bottom.intervals.insert(start - 1, POS_INF)
            self.statistics.cache_intervals_inserted += 1
        bottom.exhaust_count += 1
        if self.enable_complete_nodes and bottom.exhaust_count >= 2:
            bottom.complete = True

    @staticmethod
    def _bottom_of_chain(nodes: List[CDSNode]) -> Optional[CDSNode]:
        """The unique most-specialized node, or ``None`` if no chain exists.

        All nodes generalize the same prefix, so node A specializes node B
        exactly when A's exact-position set contains B's.  The bottom exists
        iff one node's exact positions contain every other node's — which is
        guaranteed for β-acyclic queries under a NEO (Proposition 4.2) and
        checked dynamically otherwise.
        """
        if len(nodes) == 1:
            return nodes[0]
        bottom = max(nodes, key=lambda node: len(node.exact_positions))
        for node in nodes:
            if not node.exact_positions <= bottom.exact_positions:
                return None
        return bottom

    # ------------------------------------------------------------------
    # Truncation (Algorithm 6)
    # ------------------------------------------------------------------
    def _truncate(self, node: CDSNode) -> bool:
        """Cut off a node whose intervals cover the whole line.

        Walks towards the root until the first edge labelled with a concrete
        value and rules that value out at the parent, so the search never
        descends into this dead branch again.  Returns ``False`` when every
        edge up to the root is a wildcard, meaning the entire remaining
        output space is dead and the search can stop.
        """
        self.statistics.truncations += 1
        current = node
        while current.parent is not None:
            label = current.label
            if isinstance(label, int):
                current.parent.intervals.insert(label - 1, label + 1)
                return True
            current = current.parent
        # All-wildcard pattern with a blanket interval: nothing is free.
        return False

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        """Number of allocated CDS nodes (root included)."""
        return self._node_count

    def covers(self, point: Sequence[int]) -> bool:
        """True when ``point`` is inside some stored gap box (test helper)."""
        if len(point) != self.width:
            raise ExecutionError("point width mismatch")

        def recurse(node: CDSNode, depth: int) -> bool:
            if depth >= self.width:
                return False
            if node.intervals.covers(point[depth]):
                return True
            for label in (point[depth], WILDCARD):
                child = node.children.get(label)
                if child is not None and recurse(child, depth + 1):
                    return True
            return False

        return recurse(self.root, 0)
