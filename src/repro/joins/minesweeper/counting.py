"""#Minesweeper-style counting (Idea 8).

The paper's #Minesweeper keeps a count next to every value of a complete
node's point list; when a node becomes complete, the sum of its counts is
multiplied into the count of the branch point it hangs off, so disjoint
parts of the search space are counted once and *combined* instead of being
re-enumerated ("micro message passing").

The essential property this buys is factorisation: the number of
completions of a prefix depends only on the prefix coordinates that the
*remaining* atoms and filters can see.  This module realises exactly that
property directly: a depth-first count over the GAO where the count of each
subtree is memoised on the projection of the prefix onto the positions that
still matter.  On the paper's example query

    R1(A,B) ⋈ R2(A,C) ⋈ R3(B,D) ⋈ R4(C) ⋈ R5(D)   (GAO = A, B, C, D)

the count below depth C depends only on ``A`` — the same sharing that the
point-list counts provide — so the C- and D-subtrees are counted once per
distinct ``A`` instead of once per ``(A, B)`` pair.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import ComparisonAtom
from repro.datalog.gao import select_gao
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    resolve_atom_relation,
)
from repro.joins.minesweeper.engine import MinesweeperJoin, MinesweeperOptions
from repro.storage.database import Database
from repro.storage.trie import TrieIndex
from repro.util import TimeBudget


class SharingMinesweeperCounter(JoinAlgorithm):
    """Count query outputs with #Minesweeper-style sharing.

    ``count`` runs the memoised search; ``enumerate_bindings`` delegates to
    the ordinary :class:`MinesweeperJoin` engine, because enumeration cannot
    share subtrees (every output has to be produced).
    """

    name = "ms-count"

    def __init__(self, budget: Optional[TimeBudget] = None,
                 options: Optional[MinesweeperOptions] = None,
                 variable_order: Optional[Sequence[str]] = None) -> None:
        super().__init__(budget)
        self.options = options or MinesweeperOptions()
        self.variable_order = tuple(variable_order) if variable_order else None
        self.last_cache_hits = 0
        self.last_cache_entries = 0

    # ------------------------------------------------------------------
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        engine = MinesweeperJoin(
            budget=self.budget, options=self.options,
            variable_order=self.variable_order,
        )
        yield from engine.enumerate_bindings(database, query)

    # ------------------------------------------------------------------
    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        self._check_supported(query)
        order = self._attribute_order(query)
        position_of = {variable: index for index, variable in enumerate(order)}
        width = len(order)

        participants, empty_ground = self._build_participants(
            database, query, order, position_of
        )
        if empty_ground:
            return 0

        participants_per_level: List[List[Tuple[TrieIndex, Tuple[int, ...], int]]] = [
            [] for _ in range(width)
        ]
        for index, gao_positions in participants:
            for level, position in enumerate(gao_positions):
                participants_per_level[position].append((index, gao_positions, level))
        for position, entries in enumerate(participants_per_level):
            if not entries:
                raise ExecutionError(
                    f"variable {order[position]} is not covered by any atom"
                )

        filters_per_level, filter_positions = self._filter_plan(
            query.filters, order, position_of
        )
        relevant = self._relevant_positions(
            width, [gp for _, gp in participants], filter_positions
        )

        memo: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self.last_cache_hits = 0
        values = [0] * width

        def candidates_at(depth: int) -> List[int]:
            entries = participants_per_level[depth]
            best: Optional[List[int]] = None
            for index, gao_positions, level in entries:
                prefix = tuple(values[gao_positions[k]] for k in range(level))
                children = index.children(prefix)
                if best is None or len(children) < len(best):
                    best = children
                if not best:
                    return []
            assert best is not None
            if len(entries) == 1:
                return best
            out: List[int] = []
            for value in best:
                keep = True
                for index, gao_positions, level in entries:
                    prefix = tuple(values[gao_positions[k]] for k in range(level))
                    if index.seek_value(prefix, value) != value:
                        keep = False
                        break
                if keep:
                    out.append(value)
            return out

        def filters_ok(depth: int) -> bool:
            binding = {order[i]: values[i] for i in range(depth + 1)}
            return all(flt.evaluate(binding) for flt in filters_per_level[depth])

        def count_from(depth: int) -> int:
            self.budget.tick()
            if depth == width:
                return 1
            key = (depth, tuple(values[p] for p in relevant[depth]))
            cached = memo.get(key)
            if cached is not None:
                self.last_cache_hits += 1
                return cached
            total = 0
            for value in candidates_at(depth):
                values[depth] = value
                if not filters_ok(depth):
                    continue
                total += count_from(depth + 1)
            memo[key] = total
            return total

        result = count_from(0)
        self.last_cache_entries = len(memo)
        return result

    # ------------------------------------------------------------------
    # Planning helpers
    # ------------------------------------------------------------------
    def _attribute_order(self, query: ConjunctiveQuery) -> Tuple[Variable, ...]:
        if self.variable_order is None:
            return select_gao(query, policy=self.options.gao_policy).order
        by_name = {v.name: v for v in query.variables}
        missing = [name for name in self.variable_order if name not in by_name]
        if missing:
            raise ExecutionError(f"unknown variables in explicit GAO: {missing}")
        if len(self.variable_order) != len(query.variables):
            raise ExecutionError("explicit GAO must mention every query variable")
        return tuple(by_name[name] for name in self.variable_order)

    @staticmethod
    def _build_participants(database: Database, query: ConjunctiveQuery,
                            order: Sequence[Variable],
                            position_of: Dict[Variable, int]
                            ) -> Tuple[List[Tuple[TrieIndex, Tuple[int, ...]]], bool]:
        participants: List[Tuple[TrieIndex, Tuple[int, ...]]] = []
        for atom in query.atoms:
            relation = resolve_atom_relation(database, atom)
            columns = atom_variable_columns(atom)
            if not columns:
                if len(relation) == 0:
                    return [], True
                continue
            ordered = sorted(columns, key=lambda pair: position_of[pair[0]])
            column_order = [column for _, column in ordered]
            gao_positions = tuple(position_of[variable] for variable, _ in ordered)
            participants.append((TrieIndex(relation, column_order), gao_positions))
        return participants, False

    @staticmethod
    def _filter_plan(filters: Sequence[ComparisonAtom], order: Sequence[Variable],
                     position_of: Dict[Variable, int]
                     ) -> Tuple[List[List[ComparisonAtom]], List[Set[int]]]:
        """Group filters by the depth at which they become checkable."""
        per_level: List[List[ComparisonAtom]] = [[] for _ in order]
        positions: List[Set[int]] = []
        for flt in filters:
            flt_positions = {position_of[v] for v in flt.variables}
            per_level[max(flt_positions)].append(flt)
            positions.append(flt_positions)
        return per_level, positions

    @staticmethod
    def _relevant_positions(width: int,
                            atom_positions: Sequence[Tuple[int, ...]],
                            filter_positions: Sequence[Set[int]]) -> List[Tuple[int, ...]]:
        """For each depth, the earlier positions the remaining work depends on.

        A position ``p < depth`` is relevant at ``depth`` when some atom or
        filter mentions both ``p`` and a position ``>= depth``; only those
        coordinates can influence the count of completions, so they form the
        memoisation key.
        """
        relevant: List[Tuple[int, ...]] = []
        groups = list(atom_positions) + [tuple(sorted(ps)) for ps in filter_positions]
        for depth in range(width):
            needed: Set[int] = set()
            for positions in groups:
                if any(p >= depth for p in positions):
                    needed.update(p for p in positions if p < depth)
            relevant.append(tuple(sorted(needed)))
        return relevant
