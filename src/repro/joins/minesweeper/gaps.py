"""Probing input relations for gap boxes around a free tuple (Ideas 3 and 4).

For every atom, the engine builds a trie index whose column order follows
the GAO restricted to the atom's variables (the GAO-consistency assumption
of §4.1).  ``seek_gap`` projects the free tuple onto the atom's attributes,
walks the trie level by level, and either confirms the projection is
present or returns the maximal gap box around it, exactly as described in
§4.5: find the first level ``j`` whose prefix is present but whose extended
prefix is not, and report the ``(glb, lub)`` interval at that level.

Idea 4 avoids repeated probes: gaps already reported by a relation and
projections already confirmed present are remembered, so the (conceptually
expensive, index-walking) ``seek_glb`` / ``seek_lub`` operations are only
issued when the cache cannot answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datalog.terms import Variable
from repro.joins.minesweeper.constraints import Constraint, constraint_from_gap
from repro.joins.minesweeper.intervals import IntervalList
from repro.storage.trie import TrieIndex


@dataclass
class AtomProbePlan:
    """Everything needed to probe one atom against free tuples."""

    atom_index: int
    atom_name: str
    index: TrieIndex
    # GAO positions of the atom's variables, ascending; trie level k holds
    # the variable at GAO position ``gao_positions[k]``.
    gao_positions: Tuple[int, ...]
    in_skeleton: bool = True

    @property
    def arity(self) -> int:
        return len(self.gao_positions)


@dataclass
class ProbeStatistics:
    """Counters for the probing layer (reported by the ablation benchmarks)."""

    probes_issued: int = 0
    index_seeks: int = 0
    cache_hits_present: int = 0
    cache_hits_gap: int = 0
    gaps_found: int = 0


class GapProber:
    """Stateful prober over one atom's trie index with Idea 4 caching."""

    def __init__(self, plan: AtomProbePlan, width: int,
                 enable_cache: bool = True) -> None:
        self.plan = plan
        self.width = width
        self.enable_cache = enable_cache
        self.statistics = ProbeStatistics()
        # Projections confirmed to be present in the relation (full length).
        self._present: Set[Tuple[int, ...]] = set()
        # Known gap intervals keyed by (level, prefix projection).
        self._gap_cache: Dict[Tuple[int, Tuple[int, ...]], IntervalList] = {}

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def seek_gap(self, point: Sequence[int]) -> Optional[Constraint]:
        """Return the gap box around ``point``'s projection, or ``None``.

        ``None`` means the projection is present in the relation, i.e. this
        atom does not rule the free tuple out.
        """
        self.statistics.probes_issued += 1
        plan = self.plan
        projection = tuple(point[p] for p in plan.gao_positions)

        if self.enable_cache and projection in self._present:
            self.statistics.cache_hits_present += 1
            return None

        prefix: List[int] = []
        for level, position in enumerate(plan.gao_positions):
            value = projection[level]
            cached = self._cached_gap(level, tuple(prefix), value)
            if cached is not None:
                self.statistics.cache_hits_gap += 1
                self.statistics.gaps_found += 1
                low, high = cached
                return self._make_constraint(level, prefix, low, high)
            self.statistics.index_seeks += 1
            glb, present, lub = plan.index.gap_around(prefix, value)
            if present:
                prefix.append(value)
                continue
            self.statistics.gaps_found += 1
            if self.enable_cache:
                interval_list = self._gap_cache.setdefault(
                    (level, tuple(prefix)), IntervalList()
                )
                interval_list.insert(
                    glb if glb is not None else float("-inf"),
                    lub if lub is not None else float("inf"),
                )
            return self._make_constraint(level, prefix, glb, lub)

        if self.enable_cache:
            self._present.add(projection)
        return None

    def _cached_gap(self, level: int, prefix: Tuple[int, ...],
                    value: int) -> Optional[Tuple[float, float]]:
        """Look up a previously discovered gap covering ``value``."""
        if not self.enable_cache:
            return None
        interval_list = self._gap_cache.get((level, prefix))
        if interval_list is None or not interval_list.covers(value):
            return None
        for low, high in interval_list:
            if low < value < high:
                return low, high
        return None

    def _make_constraint(self, level: int, prefix: Sequence[int],
                         low, high) -> Constraint:
        plan = self.plan
        return constraint_from_gap(
            width=self.width,
            exact_positions=plan.gao_positions[:level],
            exact_values=list(prefix),
            interval_position=plan.gao_positions[level],
            low=None if low in (None, float("-inf")) else int(low),
            high=None if high in (None, float("inf")) else int(high),
            source=f"{plan.atom_name}#{plan.atom_index}",
        )


def build_probe_plans(atoms_meta: Sequence[Tuple[int, str, TrieIndex, Tuple[int, ...]]],
                      skeleton: Set[int]) -> List[AtomProbePlan]:
    """Assemble probe plans; ``skeleton`` holds the atom indexes whose gaps
    are inserted into the CDS (Idea 7)."""
    plans = []
    for atom_index, name, index, gao_positions in atoms_meta:
        plans.append(AtomProbePlan(
            atom_index=atom_index,
            atom_name=name,
            index=index,
            gao_positions=gao_positions,
            in_skeleton=atom_index in skeleton,
        ))
    return plans
