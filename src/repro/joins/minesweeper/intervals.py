"""Interval lists: the per-node open-interval store of the CDS (Idea 1).

Each CDS node keeps a set of disjoint *open* intervals over the integers
(with ``-inf`` / ``+inf`` endpoints allowed).  The two operations that
matter are inserting an interval (merging overlaps) and ``next_free(x)``:
the smallest value ``>= x`` not strictly inside any stored interval.  The
paper implements the node's interval set and child map as a single sorted
"point list"; here the intervals live in a plain sorted list — the child
pruning benefit of the point list is realised separately by the CDS when an
inserted interval swallows child labels.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Iterator, List, Tuple, Union

Number = Union[int, float]

NEG_INF: float = float("-inf")
POS_INF: float = float("inf")


def interval_is_empty(low: Number, high: Number) -> bool:
    """True when the open interval ``(low, high)`` contains no integer."""
    if low == NEG_INF or high == POS_INF:
        return low >= high
    return high - low <= 1


class IntervalList:
    """A set of disjoint open intervals over the integers.

    Intervals are stored sorted by lower endpoint.  Overlapping intervals
    are merged on insert; *touching* intervals such as ``(1, 3)`` and
    ``(3, 5)`` are kept separate because the shared endpoint ``3`` is not
    covered by either.
    """

    __slots__ = ("_lows", "_highs")

    def __init__(self) -> None:
        self._lows: List[Number] = []
        self._highs: List[Number] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._lows)

    def __bool__(self) -> bool:
        return bool(self._lows)

    def __iter__(self) -> Iterator[Tuple[Number, Number]]:
        return iter(zip(self._lows, self._highs))

    def intervals(self) -> List[Tuple[Number, Number]]:
        """The stored intervals as (low, high) pairs, sorted by low."""
        return list(zip(self._lows, self._highs))

    def __repr__(self) -> str:
        parts = ", ".join(f"({low}, {high})" for low, high in self)
        return f"IntervalList([{parts}])"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def covers(self, value: Number) -> bool:
        """True when ``value`` lies strictly inside some stored interval."""
        index = bisect_right(self._lows, value) - 1
        if index < 0:
            return False
        return self._lows[index] < value < self._highs[index]

    def next_free(self, value: Number) -> Number:
        """Smallest ``y >= value`` not strictly inside any stored interval.

        Returns ``POS_INF`` when every value from ``value`` upward is covered
        (only possible when an interval extends to ``+inf``).
        """
        index = bisect_right(self._lows, value) - 1
        if index < 0:
            return value
        low, high = self._lows[index], self._highs[index]
        if low < value < high:
            # ``high`` itself is not covered by this interval (open), and the
            # next interval starts at or after ``high`` because overlapping
            # intervals are merged on insert.
            return high
        return value

    def has_no_free_value(self) -> bool:
        """True when a single interval covers the entire line (-inf, +inf)."""
        return (
            len(self._lows) == 1
            and self._lows[0] == NEG_INF
            and self._highs[0] == POS_INF
        )

    def covered_span(self) -> Number:
        """Total integer count covered (``inf`` when unbounded); diagnostics only."""
        total: Number = 0
        for low, high in self:
            if low == NEG_INF or high == POS_INF:
                return POS_INF
            total += max(0, int(high) - int(low) - 1)
        return total

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def insert(self, low: Number, high: Number) -> Tuple[Number, Number]:
        """Insert the open interval ``(low, high)``, merging overlaps.

        Returns the (possibly merged) interval that now covers the inserted
        range, which the CDS uses to prune swallowed child labels.  Empty
        intervals are ignored and returned unchanged.
        """
        if interval_is_empty(low, high):
            return low, high
        # Find all stored intervals overlapping (low, high): interval i
        # overlaps iff lows[i] < high and highs[i] > low.
        start = bisect_right(self._highs, low)
        # self._highs is sorted because intervals are disjoint and sorted by
        # low; the first interval that could overlap has high > low.
        end = start
        new_low, new_high = low, high
        while end < len(self._lows) and self._lows[end] < high:
            new_low = min(new_low, self._lows[end])
            new_high = max(new_high, self._highs[end])
            end += 1
        if start == end:
            self._lows.insert(start, low)
            self._highs.insert(start, high)
            return low, high
        self._lows[start:end] = [new_low]
        self._highs[start:end] = [new_high]
        return new_low, new_high

    def insert_many(self, intervals: List[Tuple[Number, Number]]) -> None:
        """Insert several intervals (convenience for filter constraints)."""
        for low, high in intervals:
            self.insert(low, high)

    def clear(self) -> None:
        """Drop every stored interval."""
        self._lows.clear()
        self._highs.clear()
