"""Gap boxes encoded as constraints (Definition 4.1 / Idea 3).

A constraint is an ``n``-dimensional tuple whose components are exact
values, a single open interval, and wildcards: every component before the
interval is either an exact value or a wildcard, and every component after
it is a wildcard.  The exact components form the constraint's *pattern*.
Geometrically the constraint is an axis-aligned box guaranteed to contain
no output tuple (a *gap box*); the collection of boxes discovered during a
run is the box certificate of §4.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExecutionError
from repro.joins.minesweeper.intervals import NEG_INF, POS_INF, interval_is_empty

Number = Union[int, float]

WILDCARD = "*"
"""Sentinel label used for wildcard components in CDS patterns."""


@dataclass(frozen=True)
class Constraint:
    """A gap box over the GAO-ordered output space.

    Attributes
    ----------
    width:
        The number of attributes ``n`` of the output space.
    prefix:
        ``(gao_position, value)`` pairs for the exact components, sorted by
        position; every position is smaller than ``interval_position``.
    interval_position:
        The GAO position carrying the open interval.
    low / high:
        The open interval's endpoints (``NEG_INF`` / ``POS_INF`` allowed).
    source:
        A label describing where the gap came from (atom index, "filter",
        "partition", ...); used for diagnostics and by tests.
    """

    width: int
    prefix: Tuple[Tuple[int, int], ...]
    interval_position: int
    low: Number
    high: Number
    source: str = ""

    def __post_init__(self) -> None:
        if not 0 <= self.interval_position < self.width:
            raise ExecutionError(
                f"interval position {self.interval_position} outside 0..{self.width - 1}"
            )
        positions = [position for position, _ in self.prefix]
        if positions != sorted(positions):
            raise ExecutionError("constraint prefix positions must be sorted")
        if len(set(positions)) != len(positions):
            raise ExecutionError("constraint prefix positions must be distinct")
        if any(position >= self.interval_position for position in positions):
            raise ExecutionError(
                "constraint prefix positions must precede the interval position"
            )
        if self.low >= self.high:
            raise ExecutionError(
                f"constraint interval ({self.low}, {self.high}) is empty"
            )

    # ------------------------------------------------------------------
    # Pattern view
    # ------------------------------------------------------------------
    def pattern(self) -> Tuple[Union[int, str], ...]:
        """The pattern: labels for positions 0..interval_position-1."""
        exact: Dict[int, int] = dict(self.prefix)
        return tuple(
            exact.get(position, WILDCARD) for position in range(self.interval_position)
        )

    def is_empty(self) -> bool:
        """True when the interval contains no integer (the box is empty)."""
        return interval_is_empty(self.low, self.high)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def excludes(self, point: Sequence[int]) -> bool:
        """True when ``point`` lies inside the gap box."""
        if len(point) != self.width:
            raise ExecutionError(
                f"point of length {len(point)} against constraint of width {self.width}"
            )
        for position, value in self.prefix:
            if point[position] != value:
                return False
        return self.low < point[self.interval_position] < self.high

    def advance_frontier_past(self, point: Sequence[int]) -> Optional[List[int]]:
        """Smallest lexicographic successor of ``point`` outside this box.

        Used by Idea 7 for gaps that are *not* inserted into the CDS: the gap
        still lets us advance the frontier past the box.  Returns ``None``
        when no tuple ``>= point`` lies outside the box (the rest of the
        output space is dead), which only happens for an unbounded interval
        at the first GAO position with an all-wildcard pattern.

        Precondition: ``point`` is inside the box.
        """
        if not self.excludes(point):
            raise ExecutionError("advance_frontier_past requires a covered point")
        result = list(point)
        position = self.interval_position
        if self.high != POS_INF:
            result[position] = int(self.high)
            for i in range(position + 1, self.width):
                result[i] = -1
            return result
        if position == 0:
            return None
        result[position - 1] += 1
        for i in range(position, self.width):
            result[i] = -1
        return result

    def __str__(self) -> str:
        exact = dict(self.prefix)
        parts: List[str] = []
        for position in range(self.width):
            if position == self.interval_position:
                parts.append(f"({self.low},{self.high})")
            elif position in exact:
                parts.append(str(exact[position]))
            else:
                parts.append(WILDCARD)
        return "<" + ", ".join(parts) + ">"


def constraint_from_gap(width: int,
                        exact_positions: Sequence[int],
                        exact_values: Sequence[int],
                        interval_position: int,
                        low: Optional[int],
                        high: Optional[int],
                        source: str = "") -> Constraint:
    """Build a constraint from a trie probe result.

    ``low`` / ``high`` of ``None`` mean unbounded below / above.
    """
    return Constraint(
        width=width,
        prefix=tuple(zip(exact_positions, exact_values)),
        interval_position=interval_position,
        low=NEG_INF if low is None else low,
        high=POS_INF if high is None else high,
        source=source,
    )


def excluded_intervals(op: str, bound: int) -> List[Tuple[Number, Number]]:
    """Open intervals excluded for ``x`` by the predicate ``bound op x``.

    Used to turn a violated comparison filter into gap boxes: the returned
    intervals cover exactly the integers ``x`` for which ``bound op x`` is
    false.
    """
    if op == "<":
        return [(NEG_INF, bound + 1)]
    if op == "<=":
        return [(NEG_INF, bound)]
    if op == ">":
        return [(bound - 1, POS_INF)]
    if op == ">=":
        return [(bound, POS_INF)]
    if op == "=":
        return [(NEG_INF, bound), (bound, POS_INF)]
    if op == "!=":
        return [(bound - 1, bound + 1)]
    raise ExecutionError(f"unsupported comparison operator {op!r}")
