"""Box certificates: the geometric certificate of §4.5 (Idea 3).

When Minesweeper finishes, the union of the output points and the gap
boxes it discovered covers the entire output space — the paper calls such
a collection a *box certificate* and proves its minimum size lower-bounds
the number of comparisons any comparison-based join must make.  The size
of the certificate Minesweeper actually produces is therefore the natural
"beyond worst-case" complexity measure: on easy instances it is far
smaller than the input, which is exactly what makes Minesweeper sublinear
there.

This module makes the certificate a first-class object:

* :class:`BoxCertificate` stores the gap boxes and output points of a run,
  can check whether a point is covered, and can *verify* (by exhaustive
  enumeration over the active domain, so only for small inputs) that the
  certificate really covers everything — the property the correctness of
  Minesweeper's output rests on;
* :func:`certified_run` executes Minesweeper with certificate collection
  switched on and returns the outputs together with the certificate, which
  the analysis example and the certificate ablation benchmark consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import Binding
from repro.joins.minesweeper.constraints import Constraint
from repro.joins.minesweeper.engine import MinesweeperJoin, MinesweeperOptions
from repro.storage.database import Database


@dataclass
class BoxCertificate:
    """The gap boxes and output points discovered by one Minesweeper run."""

    width: int
    attribute_order: Tuple[Variable, ...]
    boxes: List[Constraint] = field(default_factory=list)
    outputs: List[Tuple[int, ...]] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_box(self, constraint: Constraint) -> None:
        """Record one gap box."""
        self.boxes.append(constraint)

    def add_output(self, point: Sequence[int]) -> None:
        """Record one output point."""
        self.outputs.append(tuple(point))

    @property
    def size(self) -> int:
        """The certificate size |C|: gap boxes plus output points."""
        return len(self.boxes) + len(self.outputs)

    def covers(self, point: Sequence[int]) -> bool:
        """True when ``point`` lies inside at least one gap box."""
        return any(box.excludes(point) for box in self.boxes)

    def boxes_by_source(self) -> Dict[str, int]:
        """How many boxes each atom / filter contributed (diagnostics)."""
        histogram: Dict[str, int] = {}
        for box in self.boxes:
            histogram[box.source] = histogram.get(box.source, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    def verify(self, domains: Sequence[Sequence[int]],
               expected_outputs: Optional[Iterable[Sequence[int]]] = None) -> bool:
        """Exhaustively check the certificate over a finite domain grid.

        ``domains[i]`` is the candidate value set for GAO position ``i``
        (typically the active domain of the attribute).  Every grid point
        must either be a recorded output or be covered by a gap box; when
        ``expected_outputs`` is given, the recorded outputs must also match
        it exactly.  Intended for tests and small examples — the grid is
        the full cross product.
        """
        output_set: Set[Tuple[int, ...]] = set(self.outputs)
        if expected_outputs is not None:
            if output_set != {tuple(point) for point in expected_outputs}:
                return False
        for point in product(*domains):
            if point in output_set:
                continue
            if not self.covers(point):
                return False
        return True


def certified_run(database: Database, query: ConjunctiveQuery,
                  options: Optional[MinesweeperOptions] = None,
                  variable_order: Optional[Sequence[str]] = None
                  ) -> Tuple[List[Binding], BoxCertificate]:
    """Run Minesweeper and return its outputs together with the certificate."""
    algorithm = MinesweeperJoin(options=options, variable_order=variable_order)
    collector: List[Constraint] = []
    algorithm.certificate_sink = collector
    outputs = list(algorithm.enumerate_bindings(database, query))
    order = algorithm.last_order or tuple(query.variables)
    certificate = BoxCertificate(width=len(order), attribute_order=tuple(order))
    for constraint in collector:
        certificate.add_box(constraint)
    for binding in outputs:
        certificate.add_output(tuple(binding[v] for v in order))
    return outputs, certificate


def certificate_size(database: Database, query: ConjunctiveQuery,
                     options: Optional[MinesweeperOptions] = None) -> int:
    """The size of the certificate Minesweeper produces on this instance."""
    _, certificate = certified_run(database, query, options=options)
    return certificate.size
