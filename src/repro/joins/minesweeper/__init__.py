"""Minesweeper: the beyond-worst-case join algorithm of the paper.

The subpackage mirrors the structure of §4 of the paper:

* :mod:`intervals` — the point-list / interval-list machinery (Idea 1),
* :mod:`constraints` — gap boxes encoded as constraints (Idea 3),
* :mod:`cds` — the Constraint Data Structure: ``insert_constraint`` and
  ``compute_free_tuple`` with the moving frontier (Idea 2), ping-pong
  ``get_free_value`` with interval caching and truncation (Idea 5), and
  complete nodes (Idea 6),
* :mod:`gaps` — probing trie indexes for gaps with probe caching (Idea 4),
* :mod:`engine` — the outer loop, options, and the β-acyclic skeleton for
  cyclic queries (Idea 7),
* :mod:`counting` — #Minesweeper-style counting (Idea 8),
* :mod:`parallel` — the output-space partitioning of §4.10.
"""

from repro.joins.minesweeper.constraints import Constraint, NEG_INF, POS_INF
from repro.joins.minesweeper.intervals import IntervalList
from repro.joins.minesweeper.cds import ConstraintTree
from repro.joins.minesweeper.engine import MinesweeperJoin, MinesweeperOptions
from repro.joins.minesweeper.counting import SharingMinesweeperCounter
from repro.joins.minesweeper.certificate import (
    BoxCertificate,
    certificate_size,
    certified_run,
)
from repro.joins.minesweeper.parallel import (
    PartitionedMinesweeper,
    simulate_work_stealing,
)

__all__ = [
    "BoxCertificate",
    "Constraint",
    "ConstraintTree",
    "IntervalList",
    "MinesweeperJoin",
    "MinesweeperOptions",
    "NEG_INF",
    "POS_INF",
    "PartitionedMinesweeper",
    "SharingMinesweeperCounter",
    "certificate_size",
    "certified_run",
    "simulate_work_stealing",
]
