"""The Minesweeper outer loop (Algorithm 3) and its configuration.

The engine ties together the pieces built by the rest of the subpackage:

1. choose a global attribute order (GAO) — a nested elimination order when
   the query is β-acyclic, otherwise a NEO of a β-acyclic *skeleton* of the
   query (Idea 7) extended to the remaining attributes;
2. build one :class:`~repro.joins.minesweeper.gaps.GapProber` per atom,
   indexed consistently with the GAO;
3. repeatedly ask the :class:`~repro.joins.minesweeper.cds.ConstraintTree`
   for the next free tuple, probe every atom (and every comparison filter)
   around it, and either report the tuple as an output or insert the
   discovered gap boxes;
4. for atoms outside the β-acyclic skeleton, use the gap only to advance
   the frontier instead of inserting it (Idea 7), trading possibly repeated
   probes for a CDS that stays chain-shaped.

Every optimisation from §4 can be switched off independently through
:class:`MinesweeperOptions`, which is how the ablation benchmarks
(Tables 1-3 of the paper) measure each idea's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import ComparisonAtom
from repro.datalog.gao import GAOChoice, select_gao
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable, is_variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    resolve_atom_relation,
)
from repro.joins.minesweeper.cds import ConstraintTree
from repro.joins.minesweeper.constraints import (
    Constraint,
    NEG_INF,
    POS_INF,
    excluded_intervals,
)
from repro.joins.minesweeper.gaps import AtomProbePlan, GapProber
from repro.obs.metrics import record_minesweeper_run
from repro.storage.database import Database
from repro.storage.trie import TrieIndex
from repro.util import TimeBudget


_FLIPPED_OP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass(frozen=True)
class MinesweeperOptions:
    """Feature switches mirroring the implementation ideas of §4.

    Attributes
    ----------
    enable_probe_cache:
        Idea 4 — remember which gaps each relation already reported and
        which projections are known to be present, so repeated
        ``seek_glb``/``seek_lub`` probes are avoided.
    enable_interval_caching:
        Idea 5 — cache the interval discovered by a ping-pong round of
        ``getFreeValue`` in the chain's bottom node.
    enable_complete_nodes:
        Idea 6 — once a bottom node has been exhausted twice, trust its own
        interval list and skip the ping-pong entirely.
    use_skeleton:
        Idea 7 — on β-cyclic queries, only insert gaps from a β-acyclic
        skeleton of the query into the CDS; gaps from the remaining atoms
        merely advance the frontier.
    gao_policy:
        How to choose the GAO when no explicit order is given; passed to
        :func:`repro.datalog.gao.select_gao` for β-acyclic queries.
    """

    enable_probe_cache: bool = True
    enable_interval_caching: bool = True
    enable_complete_nodes: bool = True
    use_skeleton: bool = True
    gao_policy: str = "auto"

    @classmethod
    def baseline(cls) -> "MinesweeperOptions":
        """Every optimisation switched off (the ablation baseline)."""
        return cls(
            enable_probe_cache=False,
            enable_interval_caching=False,
            enable_complete_nodes=False,
            use_skeleton=False,
        )


@dataclass
class MinesweeperStatistics:
    """Aggregated run statistics exposed after an execution."""

    free_tuples_examined: int = 0
    outputs: int = 0
    constraints_inserted: int = 0
    frontier_advances: int = 0
    skeleton_size: int = 0
    num_atoms: int = 0
    probe_statistics: List[Dict[str, int]] = field(default_factory=list)


@dataclass
class _FilterProbe:
    """A comparison filter viewed as a gap source.

    ``low_position`` is the earlier GAO position involved (or ``None`` when
    that side is a constant), ``high_position`` the later one; ``op`` is
    normalised so the predicate reads ``bound op value_at_high_position``.
    """

    filter: ComparisonAtom
    low_position: Optional[int]
    low_constant: Optional[int]
    high_position: int
    op: str


class MinesweeperJoin(JoinAlgorithm):
    """The Minesweeper join algorithm (Algorithms 2-6 plus Ideas 1-7).

    Parameters
    ----------
    budget:
        Optional soft time budget.
    options:
        Feature switches; defaults to everything enabled.
    variable_order:
        Explicit GAO as a list of variable names (used by the Table 4
        GAO-sensitivity benchmark).  When omitted the engine selects a NEO
        (β-acyclic queries) or a skeleton-derived order (cyclic queries).
    """

    name = "ms"

    def __init__(self, budget: Optional[TimeBudget] = None,
                 options: Optional[MinesweeperOptions] = None,
                 variable_order: Optional[Sequence[str]] = None) -> None:
        super().__init__(budget)
        self.options = options or MinesweeperOptions()
        self.variable_order = tuple(variable_order) if variable_order else None
        self.last_statistics: Optional[MinesweeperStatistics] = None
        # The GAO used by the most recent run (set even for empty outputs).
        self.last_order: Optional[Tuple[Variable, ...]] = None
        # When set to a list, every discovered gap box is appended to it,
        # which is how repro.joins.minesweeper.certificate collects the box
        # certificate of a run.
        self.certificate_sink: Optional[List[Constraint]] = None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _explicit_order(self, query: ConjunctiveQuery) -> Tuple[Variable, ...]:
        by_name = {v.name: v for v in query.variables}
        missing = [name for name in self.variable_order or () if name not in by_name]
        if missing:
            raise ExecutionError(f"unknown variables in explicit GAO: {missing}")
        if len(self.variable_order or ()) != len(query.variables):
            raise ExecutionError("explicit GAO must mention every query variable")
        return tuple(by_name[name] for name in self.variable_order or ())

    def _select_order_and_skeleton(
            self, query: ConjunctiveQuery) -> Tuple[Tuple[Variable, ...], Set[int]]:
        """Choose the GAO and the set of skeleton atom indexes (Idea 7)."""
        hypergraph = Hypergraph.of_query(query)
        beta_acyclic = hypergraph.is_beta_acyclic()

        if self.variable_order is not None:
            order = self._explicit_order(query)
            skeleton = self._skeleton_atoms(query) if not beta_acyclic else set(
                range(len(query.atoms)))
            if not self.options.use_skeleton:
                skeleton = set(range(len(query.atoms)))
            return order, skeleton

        if beta_acyclic:
            choice = select_gao(query, policy=self.options.gao_policy)
            return choice.order, set(range(len(query.atoms)))

        # β-cyclic: pick a maximal β-acyclic skeleton and order it with a NEO.
        skeleton = self._skeleton_atoms(query)
        order = self._order_from_skeleton(query, skeleton)
        if not self.options.use_skeleton:
            skeleton = set(range(len(query.atoms)))
        return order, skeleton

    @staticmethod
    def _skeleton_atoms(query: ConjunctiveQuery) -> Set[int]:
        """A maximal subset of atom indexes whose sub-hypergraph is β-acyclic.

        Atoms are considered in descending arity (unary sample relations are
        always safe to add last), greedily keeping every atom that does not
        break β-acyclicity.  The result always contains at least one atom.
        """
        variables = query.variables
        candidate_order = sorted(
            range(len(query.atoms)),
            key=lambda i: (-query.atoms[i].arity, i),
        )
        chosen: List[int] = []
        for index in candidate_order:
            trial = chosen + [index]
            edges = [set(query.atoms[i].variables) for i in trial]
            if Hypergraph(variables, edges).is_beta_acyclic():
                chosen.append(index)
        if not chosen:
            chosen.append(candidate_order[0])
        return set(chosen)

    @staticmethod
    def _order_from_skeleton(query: ConjunctiveQuery,
                             skeleton: Set[int]) -> Tuple[Variable, ...]:
        """A GAO that is a NEO of the skeleton, extended to all attributes."""
        skeleton_atoms = [query.atoms[i] for i in sorted(skeleton)]
        sub_query = ConjunctiveQuery(skeleton_atoms)
        choice = select_gao(sub_query, policy="auto")
        order = list(choice.order)
        for variable in query.variables:
            if variable not in order:
                order.append(variable)
        return tuple(order)

    def _build_probers(self, database: Database, query: ConjunctiveQuery,
                       order: Sequence[Variable],
                       skeleton: Set[int]) -> List[GapProber]:
        position_of = {variable: index for index, variable in enumerate(order)}
        probers: List[GapProber] = []
        for atom_index, atom in enumerate(query.atoms):
            relation = resolve_atom_relation(database, atom)
            columns = atom_variable_columns(atom)
            if not columns:
                # Fully ground atom: emptiness decides the whole query.
                if len(relation) == 0:
                    raise _EmptyGroundAtom()
                continue
            ordered = sorted(columns, key=lambda pair: position_of[pair[0]])
            column_order = [column for _, column in ordered]
            index = TrieIndex(relation, column_order)
            gao_positions = tuple(position_of[variable] for variable, _ in ordered)
            plan = AtomProbePlan(
                atom_index=atom_index,
                atom_name=atom.name,
                index=index,
                gao_positions=gao_positions,
                in_skeleton=atom_index in skeleton,
            )
            probers.append(GapProber(
                plan, width=len(order),
                enable_cache=self.options.enable_probe_cache,
            ))
        return probers

    def _build_filter_probes(self, query: ConjunctiveQuery,
                             order: Sequence[Variable]) -> List[_FilterProbe]:
        position_of = {variable: index for index, variable in enumerate(order)}
        probes: List[_FilterProbe] = []
        for flt in query.filters:
            left_var = is_variable(flt.left)
            right_var = is_variable(flt.right)
            if left_var and right_var:
                left_position = position_of[flt.left]
                right_position = position_of[flt.right]
                if right_position > left_position:
                    # bound (= left value) op value-at-right-position
                    probes.append(_FilterProbe(
                        filter=flt,
                        low_position=left_position,
                        low_constant=None,
                        high_position=right_position,
                        op=flt.op,
                    ))
                else:
                    # left is the later attribute; flip so the bound comes first.
                    probes.append(_FilterProbe(
                        filter=flt,
                        low_position=right_position,
                        low_constant=None,
                        high_position=left_position,
                        op=_FLIPPED_OP[flt.op],
                    ))
            elif left_var:
                # value-at-position op constant  ==  constant flipped-op value
                probes.append(_FilterProbe(
                    filter=flt,
                    low_position=None,
                    low_constant=flt.right.value,
                    high_position=position_of[flt.left],
                    op=_FLIPPED_OP[flt.op],
                ))
            else:
                probes.append(_FilterProbe(
                    filter=flt,
                    low_position=None,
                    low_constant=flt.left.value,
                    high_position=position_of[flt.right],
                    op=flt.op,
                ))
        return probes

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        try:
            runner = _MinesweeperRun(self, database, query)
        except _EmptyGroundAtom:
            self.last_statistics = MinesweeperStatistics()
            return
        yield from runner.run()
        self.last_statistics = runner.statistics

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        total = 0
        for _ in self.enumerate_bindings(database, query):
            total += 1
        return total


class _EmptyGroundAtom(Exception):
    """Internal signal: a fully ground atom selected an empty relation."""


class _MinesweeperRun:
    """One execution of the Minesweeper outer loop over a fixed query."""

    def __init__(self, algorithm: MinesweeperJoin, database: Database,
                 query: ConjunctiveQuery,
                 extra_constraints: Sequence[Constraint] = (),
                 initial_frontier: Optional[Sequence[int]] = None) -> None:
        self.algorithm = algorithm
        self.query = query
        order, skeleton = algorithm._select_order_and_skeleton(query)
        self.order = order
        self.skeleton = skeleton
        algorithm.last_order = order
        self.width = len(order)
        self.probers = algorithm._build_probers(database, query, order, skeleton)
        self.filter_probes = algorithm._build_filter_probes(query, order)
        self.cds = ConstraintTree(
            width=self.width,
            enable_interval_caching=algorithm.options.enable_interval_caching,
            enable_complete_nodes=algorithm.options.enable_complete_nodes,
        )
        for constraint in extra_constraints:
            self.cds.insert_constraint(constraint)
        if initial_frontier is not None:
            self.cds.set_frontier(list(initial_frontier))
        self.statistics = MinesweeperStatistics(
            skeleton_size=len(skeleton), num_atoms=len(query.atoms)
        )

    # ------------------------------------------------------------------
    def run(self) -> Iterator[Binding]:
        budget = self.algorithm.budget
        cds = self.cds
        order = self.order
        statistics = self.statistics
        while cds.compute_free_tuple():
            budget.tick()
            free = list(cds.frontier)
            statistics.free_tuples_examined += 1
            gap_found = False
            frontier_moved = False

            sink = self.algorithm.certificate_sink
            for prober in self.probers:
                constraint = prober.seek_gap(free)
                if constraint is None:
                    continue
                gap_found = True
                if sink is not None:
                    sink.append(constraint)
                if prober.plan.in_skeleton:
                    cds.insert_constraint(constraint)
                    statistics.constraints_inserted += 1
                else:
                    moved = self._advance_past(constraint, free)
                    if moved is None:
                        self._finish()
                        return
                    frontier_moved = frontier_moved or moved
                break

            if not gap_found:
                for probe in self.filter_probes:
                    constraint = self._filter_gap(probe, free)
                    if constraint is None:
                        continue
                    gap_found = True
                    if sink is not None:
                        sink.append(constraint)
                    cds.insert_constraint(constraint)
                    statistics.constraints_inserted += 1
                    break

            if not gap_found:
                statistics.outputs += 1
                yield {order[i]: free[i] for i in range(self.width)}
                cds.advance_frontier_after_output()
            elif not frontier_moved:
                # The inserted constraint covers the free tuple; the next
                # compute_free_tuple call will move past it.
                pass
        self._finish()

    def _finish(self) -> None:
        self.statistics.probe_statistics = [
            {
                "atom": prober.plan.atom_name,
                "probes": prober.statistics.probes_issued,
                "index_seeks": prober.statistics.index_seeks,
                "cache_hits_present": prober.statistics.cache_hits_present,
                "cache_hits_gap": prober.statistics.cache_hits_gap,
                "gaps_found": prober.statistics.gaps_found,
            }
            for prober in self.probers
        ]
        self.statistics.constraints_inserted = (
            self.cds.statistics.constraints_inserted
        )
        record_minesweeper_run(self.statistics)

    # ------------------------------------------------------------------
    def _advance_past(self, constraint: Constraint,
                      free: Sequence[int]) -> Optional[bool]:
        """Advance the frontier past a non-skeleton gap (Idea 7).

        Returns ``True`` when the frontier moved, ``None`` when the rest of
        the output space is dead (the caller should stop).
        """
        successor = constraint.advance_frontier_past(free)
        if successor is None:
            return None
        self.cds.set_frontier(successor)
        self.statistics.frontier_advances += 1
        return True

    def _filter_gap(self, probe: _FilterProbe,
                    free: Sequence[int]) -> Optional[Constraint]:
        """A gap box covering ``free`` when it violates ``probe.filter``."""
        binding = {self.order[i]: free[i] for i in range(self.width)}
        if probe.filter.evaluate(binding):
            return None
        if probe.low_position is not None:
            bound = free[probe.low_position]
            prefix = ((probe.low_position, bound),) \
                if probe.low_position < probe.high_position else ()
        else:
            bound = probe.low_constant  # type: ignore[assignment]
            prefix = ()
        intervals = excluded_intervals(probe.op, int(bound))
        value = free[probe.high_position]
        for low, high in intervals:
            if low < value < high:
                return Constraint(
                    width=self.width,
                    prefix=prefix,
                    interval_position=probe.high_position,
                    low=low,
                    high=high,
                    source=f"filter:{probe.filter}",
                )
        # The filter is violated yet no excluded interval covers the value;
        # fall back to ruling out just this value of the later attribute.
        return Constraint(
            width=self.width,
            prefix=prefix,
            interval_position=probe.high_position,
            low=value - 1,
            high=value + 1,
            source=f"filter:{probe.filter}",
        )
