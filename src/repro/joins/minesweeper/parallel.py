"""Output-space partitioning and the work-stealing model of §4.10.

The paper parallelises Minesweeper by splitting the output space into
``p = num_cpus * granularity`` parts, submitting each part as a job to a
pool, and letting idle threads steal unclaimed jobs.  CPython's global
interpreter lock makes real thread-level speedups unobservable here, so the
module reproduces the *scheduling* behaviour instead:

* :class:`PartitionedMinesweeper` splits the first GAO attribute's active
  domain into contiguous ranges, runs one Minesweeper instance per part
  (each restricted by two extra gap constraints), and records the wall-clock
  cost of every part;
* :func:`simulate_work_stealing` replays those per-part costs on ``w``
  workers under the paper's greedy job-pool discipline and reports the
  makespan, which is what Table 5 normalises across granularity factors.

Correctness is unaffected by partitioning: the per-part outputs are disjoint
by construction and their union is exactly the unpartitioned output.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import Binding, JoinAlgorithm
from repro.joins.minesweeper.constraints import Constraint, NEG_INF, POS_INF
from repro.joins.minesweeper.engine import (
    MinesweeperJoin,
    MinesweeperOptions,
    _EmptyGroundAtom,
    _MinesweeperRun,
)
from repro.storage.database import Database
from repro.util import TimeBudget


@dataclass
class PartitionResult:
    """Outcome of one output-space part."""

    part_index: int
    low: int
    high: int
    outputs: int
    duration: float


@dataclass
class PartitionedRunReport:
    """Everything the Table 5 benchmark needs from a partitioned run."""

    parts: List[PartitionResult] = field(default_factory=list)
    total_outputs: int = 0

    @property
    def part_durations(self) -> List[float]:
        return [part.duration for part in self.parts]

    @property
    def sequential_duration(self) -> float:
        """Total single-threaded work (sum of per-part costs)."""
        return sum(part.duration for part in self.parts)

    def makespan(self, workers: int) -> float:
        """Simulated parallel completion time on ``workers`` threads."""
        return simulate_work_stealing(self.part_durations, workers)


def simulate_work_stealing(durations: Sequence[float], workers: int) -> float:
    """Makespan of the paper's job-pool schedule.

    Jobs are taken from the pool in submission order; whenever a worker
    finishes it immediately claims the next unclaimed job.  This is the
    classic list-scheduling model and matches the work-stealing behaviour
    described in §4.10.
    """
    if workers <= 0:
        raise ExecutionError("number of workers must be positive")
    if not durations:
        return 0.0
    finish_times = [0.0] * workers
    for duration in durations:
        earliest = min(range(workers), key=lambda w: finish_times[w])
        finish_times[earliest] += duration
    return max(finish_times)


class PartitionedMinesweeper(JoinAlgorithm):
    """Minesweeper over a partitioned output space (§4.10).

    Parameters
    ----------
    num_workers:
        The modelled number of CPUs (the paper uses 8 hyperthreads).
    granularity:
        The factor ``f``; the number of parts is ``num_workers * f``.
    options:
        Minesweeper feature switches shared by every part.
    """

    name = "ms-parallel"

    def __init__(self, budget: Optional[TimeBudget] = None,
                 options: Optional[MinesweeperOptions] = None,
                 num_workers: int = 8,
                 granularity: int = 1,
                 variable_order: Optional[Sequence[str]] = None) -> None:
        super().__init__(budget)
        if num_workers <= 0:
            raise ExecutionError("num_workers must be positive")
        if granularity <= 0:
            raise ExecutionError("granularity must be positive")
        self.options = options or MinesweeperOptions()
        self.num_workers = num_workers
        self.granularity = granularity
        self.variable_order = tuple(variable_order) if variable_order else None
        self.last_report: Optional[PartitionedRunReport] = None

    # ------------------------------------------------------------------
    @property
    def num_parts(self) -> int:
        return self.num_workers * self.granularity

    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        engine = MinesweeperJoin(
            budget=self.budget, options=self.options,
            variable_order=self.variable_order,
        )
        try:
            boundaries, order = self._partition_boundaries(engine, database, query)
        except _EmptyGroundAtom:
            self.last_report = PartitionedRunReport()
            return
        report = PartitionedRunReport()
        for part_index, (low, high) in enumerate(boundaries):
            constraints = self._range_constraints(len(order), low, high)
            started = time.perf_counter()
            outputs = 0
            try:
                run = _MinesweeperRun(engine, database, query,
                                      extra_constraints=constraints)
            except _EmptyGroundAtom:
                break
            for binding in run.run():
                outputs += 1
                yield binding
            report.parts.append(PartitionResult(
                part_index=part_index,
                low=low,
                high=high,
                outputs=outputs,
                duration=time.perf_counter() - started,
            ))
            report.total_outputs += outputs
        self.last_report = report

    # ------------------------------------------------------------------
    def _partition_boundaries(self, engine: MinesweeperJoin, database: Database,
                              query: ConjunctiveQuery
                              ) -> Tuple[List[Tuple[int, int]], Tuple[Variable, ...]]:
        """Split the first GAO attribute's active domain into equal ranges."""
        order, skeleton = engine._select_order_and_skeleton(query)
        first = order[0]
        values: List[int] = []
        seen = set()
        for atom in query.atoms:
            if first not in atom.variables:
                continue
            relation = database.relation(atom.name)
            for position in atom.positions_of(first):
                for value in relation.distinct_values(position):
                    if value not in seen:
                        seen.add(value)
                        values.append(value)
        values.sort()
        if not values:
            return [(0, 0)], order

        parts = min(self.num_parts, len(values))
        chunk = (len(values) + parts - 1) // parts
        boundaries: List[Tuple[int, int]] = []
        for start in range(0, len(values), chunk):
            block = values[start:start + chunk]
            boundaries.append((block[0], block[-1]))
        return boundaries, order

    @staticmethod
    def _range_constraints(width: int, low: int, high: int) -> List[Constraint]:
        """Gap boxes confining the first attribute to ``[low, high]``."""
        return [
            Constraint(width=width, prefix=(), interval_position=0,
                       low=NEG_INF, high=low, source="partition"),
            Constraint(width=width, prefix=(), interval_position=0,
                       low=high, high=POS_INF, source="partition"),
        ]
