"""The Selinger-style pairwise-join executor (the PostgreSQL stand-in).

This executor evaluates the query as a tree of binary hash joins in the
order chosen by :class:`repro.joins.optimizer.SelingerOptimizer`, fully
materialising every intermediate result.  Filters are applied as soon as
their variables are available, and duplicate rows are eliminated at each
step (set semantics), both of which only *help* the baseline.

It nevertheless exhibits the failure mode the paper attributes to
conventional engines: on cyclic patterns such as cliques the intermediate
self-join (``edge ⋈ edge``) is enormous regardless of join order, so the
executor's work — and its materialised intermediate sizes, which are
recorded in :attr:`PairwiseHashJoin.last_intermediate_sizes` — explodes
even though the final output is small.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    resolve_atom_relation,
)
from repro.joins.optimizer import SelingerOptimizer, greedy_smallest_first_order
from repro.storage.database import Database
from repro.util import TimeBudget


class _Intermediate:
    """A materialised intermediate result: a schema plus distinct rows."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Sequence[Variable],
                 rows: Set[Tuple[int, ...]]) -> None:
        self.schema = tuple(schema)
        self.rows = rows

    def __len__(self) -> int:
        return len(self.rows)


class PairwiseHashJoin(JoinAlgorithm):
    """Binary hash-join executor with a Selinger-style optimizer.

    Parameters
    ----------
    budget:
        Optional soft time budget checked while building intermediates.
    ordering:
        ``"selinger"`` (default) uses the subset-DP optimizer; ``"greedy"``
        uses the smallest-relation-first ordering, which is the behaviour
        the columnar baseline shares.
    """

    name = "pairwise"

    def __init__(self, budget: Optional[TimeBudget] = None,
                 ordering: str = "selinger") -> None:
        super().__init__(budget)
        if ordering not in ("selinger", "greedy"):
            raise ExecutionError(f"unknown pairwise ordering {ordering!r}")
        self.ordering = ordering
        self.last_intermediate_sizes: List[int] = []
        self.last_atom_order: List[int] = []

    # ------------------------------------------------------------------
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        result = self._evaluate(database, query)
        if result is None:
            return
        for row in sorted(result.rows):
            yield dict(zip(result.schema, row))

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        self._check_supported(query)
        result = self._evaluate(database, query)
        if result is None:
            return 0
        return len(result.rows)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _evaluate(self, database: Database,
                  query: ConjunctiveQuery) -> Optional[_Intermediate]:
        atom_order = self._atom_order(database, query)
        self.last_atom_order = list(atom_order)
        self.last_intermediate_sizes = []

        pending_filters = list(query.filters)
        current: Optional[_Intermediate] = None
        for atom_index in atom_order:
            scan = self._scan(database, query, atom_index)
            if scan is None:
                return _Intermediate(query.variables, set())
            if current is None:
                current = scan
            else:
                current = self._hash_join(current, scan)
            current = self._apply_filters(current, pending_filters)
            self.last_intermediate_sizes.append(len(current))
            if not current.rows:
                return _Intermediate(query.variables, set())
        if current is None:
            return None
        return self._project_to_variables(current, query.variables)

    def _atom_order(self, database: Database,
                    query: ConjunctiveQuery) -> List[int]:
        if self.ordering == "greedy":
            return greedy_smallest_first_order(database, query)
        plan = SelingerOptimizer(database, query).optimize()
        return plan.atom_order

    def _scan(self, database: Database, query: ConjunctiveQuery,
              atom_index: int) -> Optional[_Intermediate]:
        """Materialise one atom as an intermediate; ``None`` for an empty
        fully ground atom (which empties the whole query)."""
        atom = query.atoms[atom_index]
        relation = resolve_atom_relation(database, atom)
        columns = atom_variable_columns(atom)
        if not columns:
            if len(relation) == 0:
                return None
            # A satisfied ground atom contributes nothing to the schema.
            return _Intermediate((), {()})
        schema = [variable for variable, _ in columns]
        rows = {tuple(row[column] for _, column in columns) for row in relation}
        return _Intermediate(schema, rows)

    def _hash_join(self, left: _Intermediate,
                   right: _Intermediate) -> _Intermediate:
        """Classic build/probe hash join on the shared variables."""
        shared = [v for v in left.schema if v in right.schema]
        left_key_positions = [left.schema.index(v) for v in shared]
        right_key_positions = [right.schema.index(v) for v in shared]
        right_extra_positions = [
            i for i, v in enumerate(right.schema) if v not in shared
        ]
        out_schema = tuple(left.schema) + tuple(
            right.schema[i] for i in right_extra_positions
        )

        build_side: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        for row in right.rows:
            self.budget.tick()
            key = tuple(row[i] for i in right_key_positions)
            build_side.setdefault(key, []).append(
                tuple(row[i] for i in right_extra_positions)
            )

        out_rows: Set[Tuple[int, ...]] = set()
        for row in left.rows:
            self.budget.tick()
            key = tuple(row[i] for i in left_key_positions)
            for extra in build_side.get(key, ()):  # probe
                out_rows.add(row + extra)
        return _Intermediate(out_schema, out_rows)

    def _apply_filters(self, intermediate: _Intermediate,
                       pending: List[ComparisonAtom]) -> _Intermediate:
        """Apply (and consume) every filter whose variables are now bound."""
        available = set(intermediate.schema)
        ready = [f for f in pending if set(f.variables) <= available]
        if not ready:
            return intermediate
        for flt in ready:
            pending.remove(flt)
        position_of = {v: i for i, v in enumerate(intermediate.schema)}
        kept: Set[Tuple[int, ...]] = set()
        for row in intermediate.rows:
            self.budget.tick()
            binding = {v: row[i] for v, i in position_of.items()}
            if all(flt.evaluate(binding) for flt in ready):
                kept.add(row)
        return _Intermediate(intermediate.schema, kept)

    def _project_to_variables(self, intermediate: _Intermediate,
                              variables: Sequence[Variable]) -> _Intermediate:
        missing = [v for v in variables if v not in intermediate.schema]
        if missing:
            raise ExecutionError(
                f"pairwise plan failed to bind variables {missing}"
            )
        positions = [intermediate.schema.index(v) for v in variables]
        rows = {tuple(row[p] for p in positions) for row in intermediate.rows}
        return _Intermediate(tuple(variables), rows)
