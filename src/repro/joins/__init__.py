"""Join algorithms: the paper's new algorithms and every baseline.

* :mod:`repro.joins.leapfrog` — Leapfrog Triejoin (worst-case optimal).
* :mod:`repro.joins.generic` — Generic Join / NPRR-style hash variant.
* :mod:`repro.joins.minesweeper` — the Minesweeper engine (CDS, gap boxes,
  Ideas 1-8) plus #Minesweeper counting and the parallel partitioner.
* :mod:`repro.joins.hybrid` — the MS-on-path / LFTJ-on-clique hybrid (§4.12).
* :mod:`repro.joins.pairwise` + :mod:`repro.joins.optimizer` — Selinger-style
  binary-join executor (the PostgreSQL stand-in).
* :mod:`repro.joins.columnar` — column-at-a-time greedy executor (the
  MonetDB stand-in).
* :mod:`repro.joins.yannakakis` — the classical acyclic-query algorithm.
* :mod:`repro.joins.graph_engine` — specialized clique kernels (the GraphLab
  stand-in).
* :mod:`repro.joins.naive` — an obviously-correct backtracking evaluator used
  as the test oracle.
"""

from repro.joins.base import BindingIterator, JoinAlgorithm, bindings_to_tuples
from repro.joins.naive import NaiveBacktrackingJoin
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.joins.generic import GenericJoin
from repro.joins.pairwise import PairwiseHashJoin
from repro.joins.columnar import ColumnAtATimeJoin
from repro.joins.yannakakis import YannakakisJoin
from repro.joins.graph_engine import GraphEngine
from repro.joins.hybrid import HybridMinesweeperLeapfrog
from repro.joins.minesweeper import MinesweeperJoin, MinesweeperOptions

__all__ = [
    "BindingIterator",
    "ColumnAtATimeJoin",
    "GenericJoin",
    "GraphEngine",
    "HybridMinesweeperLeapfrog",
    "JoinAlgorithm",
    "LeapfrogTrieJoin",
    "MinesweeperJoin",
    "MinesweeperOptions",
    "NaiveBacktrackingJoin",
    "PairwiseHashJoin",
    "YannakakisJoin",
    "bindings_to_tuples",
]
