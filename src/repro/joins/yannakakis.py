"""The Yannakakis algorithm for α-acyclic queries.

Yannakakis (1981) evaluates an acyclic join in three passes over a join
tree: a bottom-up semijoin sweep removing dangling tuples, a top-down
semijoin sweep, and a final bottom-up join whose intermediates are then
guaranteed to stay within ``O(input + output)``.  It is the classical
linear-time baseline against which Minesweeper's instance-optimality is a
strict improvement (Minesweeper can be *sublinear* thanks to indexing).

The implementation also provides a counting mode that avoids materialising
the full join: after the semijoin reduction every remaining tuple
participates in at least one output, so counts can be propagated up the
join tree per distinct connecting prefix.

The algorithm refuses β-cyclic *and* α-cyclic queries alike (it needs a
join tree); the engine façade only routes acyclic queries to it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.hypergraph import Hypergraph, JoinTree
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    filters_satisfied,
    resolve_atom_relation,
)
from repro.storage.database import Database
from repro.util import TimeBudget


class _Table:
    """A small in-memory table: schema (variables) plus a set of rows."""

    __slots__ = ("schema", "rows")

    def __init__(self, schema: Sequence[Variable],
                 rows: Set[Tuple[int, ...]]) -> None:
        self.schema = tuple(schema)
        self.rows = rows

    def positions(self, variables: Sequence[Variable]) -> List[int]:
        return [self.schema.index(v) for v in variables]

    def project_keys(self, variables: Sequence[Variable]) -> Set[Tuple[int, ...]]:
        positions = self.positions(variables)
        return {tuple(row[p] for p in positions) for row in self.rows}

    def semijoin(self, variables: Sequence[Variable],
                 keys: Set[Tuple[int, ...]]) -> "_Table":
        positions = self.positions(variables)
        rows = {
            row for row in self.rows
            if tuple(row[p] for p in positions) in keys
        }
        return _Table(self.schema, rows)

    def __len__(self) -> int:
        return len(self.rows)


class YannakakisJoin(JoinAlgorithm):
    """Semijoin-reduce then join, for α-acyclic queries only."""

    name = "yannakakis"

    def __init__(self, budget: Optional[TimeBudget] = None) -> None:
        super().__init__(budget)
        self.last_semijoin_sizes: List[int] = []

    # ------------------------------------------------------------------
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        prepared = self._prepare(database, query)
        if prepared is None:
            return
        tables, tree = prepared
        joined = self._join_up(tables, tree)
        variables = query.variables
        missing = [v for v in variables if v not in joined.schema]
        if missing:
            # Disconnected query components: finish with a cross product.
            joined = self._cross_complete(joined, tables, variables)
        positions = joined.positions(variables)
        seen: Set[Tuple[int, ...]] = set()
        for row in joined.rows:
            key = tuple(row[p] for p in positions)
            if key in seen:
                continue
            seen.add(key)
            binding = dict(zip(variables, key))
            if filters_satisfied(binding, query.filters):
                yield binding

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        if query.filters:
            # Filters break the pure semijoin counting argument; fall back to
            # enumeration, which is still polynomial in input + output.
            return sum(1 for _ in self.enumerate_bindings(database, query))
        self._check_supported(query)
        prepared = self._prepare(database, query)
        if prepared is None:
            return 0
        tables, tree = prepared
        return self._count_up(tables, tree)

    # ------------------------------------------------------------------
    # Preparation: scans, join tree, semijoin reduction
    # ------------------------------------------------------------------
    def _prepare(self, database: Database, query: ConjunctiveQuery
                 ) -> Optional[Tuple[List[_Table], JoinTree]]:
        hypergraph = Hypergraph.of_query(query)
        acyclic, tree = hypergraph.gyo_reduction()
        if not acyclic or tree is None:
            raise ExecutionError(
                "Yannakakis requires an alpha-acyclic query; "
                f"{query} is cyclic"
            )
        tables: List[_Table] = []
        for atom in query.atoms:
            relation = resolve_atom_relation(database, atom)
            columns = atom_variable_columns(atom)
            if not columns:
                if len(relation) == 0:
                    return None
                tables.append(_Table((), {()}))
                continue
            schema = [variable for variable, _ in columns]
            rows = {tuple(row[column] for _, column in columns)
                    for row in relation}
            tables.append(_Table(schema, rows))

        self._semijoin_reduce(tables, tree)
        self.last_semijoin_sizes = [len(table) for table in tables]
        if any(len(table) == 0 for table in tables):
            return None
        return tables, tree

    def _semijoin_reduce(self, tables: List[_Table], tree: JoinTree) -> None:
        """Bottom-up then top-down semijoin passes."""
        order = tree.postorder()
        # Bottom-up: child filters parent? No — in Yannakakis the child is
        # semijoined *into* the parent going up (parent keeps only tuples
        # with a matching child), then down the other way.
        for index in order:
            parent = tree.parent.get(index)
            if parent is None:
                continue
            self.budget.tick()
            shared = [v for v in tables[parent].schema if v in tables[index].schema]
            if not shared:
                continue
            keys = tables[index].project_keys(shared)
            tables[parent] = tables[parent].semijoin(shared, keys)
        for index in reversed(order):
            parent = tree.parent.get(index)
            if parent is None:
                continue
            self.budget.tick()
            shared = [v for v in tables[parent].schema if v in tables[index].schema]
            if not shared:
                continue
            keys = tables[parent].project_keys(shared)
            tables[index] = tables[index].semijoin(shared, keys)

    # ------------------------------------------------------------------
    # Final join / count
    # ------------------------------------------------------------------
    def _join_up(self, tables: List[_Table], tree: JoinTree) -> _Table:
        """Join children into parents bottom-up after the reduction."""
        merged = list(tables)
        for index in tree.postorder():
            parent = tree.parent.get(index)
            if parent is None:
                continue
            merged[parent] = self._join_tables(merged[parent], merged[index])
        return merged[tree.root]

    def _join_tables(self, left: _Table, right: _Table) -> _Table:
        shared = [v for v in left.schema if v in right.schema]
        right_extra = [v for v in right.schema if v not in shared]
        out_schema = tuple(left.schema) + tuple(right_extra)
        right_key_positions = right.positions(shared)
        right_extra_positions = right.positions(right_extra)
        left_key_positions = left.positions(shared)

        index: Dict[Tuple[int, ...], List[Tuple[int, ...]]] = {}
        for row in right.rows:
            self.budget.tick()
            key = tuple(row[p] for p in right_key_positions)
            index.setdefault(key, []).append(
                tuple(row[p] for p in right_extra_positions)
            )
        rows: Set[Tuple[int, ...]] = set()
        for row in left.rows:
            self.budget.tick()
            key = tuple(row[p] for p in left_key_positions)
            for extra in index.get(key, ()):  # matching child tuples
                rows.add(row + extra)
        return _Table(out_schema, rows)

    def _cross_complete(self, joined: _Table, tables: List[_Table],
                        variables: Sequence[Variable]) -> _Table:
        """Cross-product in components the join tree did not reach."""
        current = joined
        for table in tables:
            extra = [v for v in table.schema if v not in current.schema]
            if extra:
                current = self._join_tables(current, table)
        missing = [v for v in variables if v not in current.schema]
        if missing:
            raise ExecutionError(f"Yannakakis failed to bind {missing}")
        return current

    def _count_up(self, tables: List[_Table], tree: JoinTree) -> int:
        """Count outputs by propagating per-key counts up the join tree."""
        # counts[i] maps a row of table i to the number of output extensions
        # contributed by the subtree rooted at i.
        counts: List[Dict[Tuple[int, ...], int]] = [
            {row: 1 for row in table.rows} for table in tables
        ]
        order = tree.postorder()
        for index in order:
            parent = tree.parent.get(index)
            if parent is None:
                continue
            self.budget.tick()
            parent_table = tables[parent]
            child_table = tables[index]
            shared = [v for v in parent_table.schema if v in child_table.schema]
            child_key_positions = child_table.positions(shared)
            parent_key_positions = parent_table.positions(shared)
            # Sum the child's counts per connecting key.
            per_key: Dict[Tuple[int, ...], int] = {}
            for row, count in counts[index].items():
                key = tuple(row[p] for p in child_key_positions)
                per_key[key] = per_key.get(key, 0) + count
            for row in list(counts[parent]):
                key = tuple(row[p] for p in parent_key_positions)
                multiplier = per_key.get(key, 0)
                if multiplier == 0:
                    del counts[parent][row]
                else:
                    counts[parent][row] *= multiplier
        total = sum(counts[tree.root].values())
        return total
