"""A Selinger-style join-order optimizer for the pairwise baseline.

The optimizer enumerates join orders with dynamic programming over subsets
of atoms (the classical System R approach restricted, as in most practical
systems, to plans without Cartesian products unless unavoidable), costing
each plan with textbook independence assumptions:

* scan cost = relation cardinality;
* hash-join output estimate = ``|L| * |R| * prod(1 / max(V(L,a), V(R,a)))``
  over the shared attributes;
* plan cost = sum of the estimated sizes of every intermediate result.

This is deliberately the *pairwise* regime the paper argues against: the
cost model has no way to know that a cyclic pattern's intermediate self-join
explodes, which is exactly why the Postgres/MonetDB columns of Tables 6 and
7 fall off a cliff on cliques.  The estimates and the chosen order are
exposed so benchmarks can report them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanningError
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.storage.database import Database
from repro.storage.statistics import RelationStatistics


@dataclass(frozen=True)
class AtomInfo:
    """Planning metadata for one atom of the query."""

    atom_index: int
    name: str
    variables: Tuple[Variable, ...]
    cardinality: int
    distinct_per_variable: Dict[Variable, int]


@dataclass
class PlanNode:
    """A node of a binary join plan.

    ``atom_index`` is set for leaf scans; inner nodes carry ``left`` and
    ``right`` children.  ``estimated_rows`` is the optimizer's cardinality
    estimate for the node's output, and ``estimated_cost`` the cumulative
    cost (sum of intermediate estimates) of producing it.
    """

    variables: FrozenSet[Variable]
    estimated_rows: float
    estimated_cost: float
    atom_index: Optional[int] = None
    left: Optional["PlanNode"] = None
    right: Optional["PlanNode"] = None

    @property
    def is_leaf(self) -> bool:
        return self.atom_index is not None

    def leaf_order(self) -> List[int]:
        """Atom indexes in the left-to-right order they enter the plan."""
        if self.is_leaf:
            return [self.atom_index]  # type: ignore[list-item]
        assert self.left is not None and self.right is not None
        return self.left.leaf_order() + self.right.leaf_order()

    def describe(self, indent: int = 0) -> str:
        """A readable plan tree (used by examples and debugging)."""
        pad = "  " * indent
        if self.is_leaf:
            return f"{pad}scan(atom={self.atom_index}, rows~{self.estimated_rows:.0f})"
        assert self.left is not None and self.right is not None
        return "\n".join([
            f"{pad}hash_join(rows~{self.estimated_rows:.0f}, "
            f"cost~{self.estimated_cost:.0f})",
            self.left.describe(indent + 1),
            self.right.describe(indent + 1),
        ])


def _atom_infos(database: Database, query: ConjunctiveQuery) -> List[AtomInfo]:
    infos: List[AtomInfo] = []
    for atom_index, atom in enumerate(query.atoms):
        statistics: RelationStatistics = database.statistics(atom.name)
        distinct: Dict[Variable, int] = {}
        for variable in atom.variables:
            position = atom.positions_of(variable)[0]
            if position < len(statistics.distinct_counts):
                distinct[variable] = statistics.distinct_counts[position]
            else:  # constants were projected away; stay conservative
                distinct[variable] = max(statistics.cardinality, 1)
        infos.append(AtomInfo(
            atom_index=atom_index,
            name=atom.name,
            variables=atom.variables,
            cardinality=statistics.cardinality,
            distinct_per_variable=distinct,
        ))
    return infos


def _join_estimate(left: PlanNode, right: PlanNode,
                   distinct_of: Dict[Variable, int]) -> float:
    """Textbook equi-join estimate over the shared variables."""
    shared = left.variables & right.variables
    estimate = left.estimated_rows * right.estimated_rows
    for variable in shared:
        estimate /= max(distinct_of.get(variable, 1), 1)
    return max(estimate, 1.0)


@dataclass
class JoinPlan:
    """The optimizer's final answer."""

    root: PlanNode
    atom_order: List[int]
    estimated_cost: float
    estimated_rows: float


class SelingerOptimizer:
    """Dynamic-programming join-order enumeration (System R style).

    The search keeps the best plan per atom subset.  Plans joining two
    subsets with no shared variables (Cartesian products) are only
    considered when no connected alternative exists, mirroring the standard
    heuristic of commercial optimizers.
    """

    def __init__(self, database: Database, query: ConjunctiveQuery) -> None:
        self.database = database
        self.query = query
        self.infos = _atom_infos(database, query)
        # A single distinct-count per variable: the max over atoms, which is
        # what the containment assumption prescribes for join selectivity.
        self.distinct_of: Dict[Variable, int] = {}
        for info in self.infos:
            for variable, count in info.distinct_per_variable.items():
                self.distinct_of[variable] = max(
                    self.distinct_of.get(variable, 1), count
                )

    # ------------------------------------------------------------------
    def optimize(self) -> JoinPlan:
        """Return the cheapest plan found by subset DP."""
        num_atoms = len(self.infos)
        if num_atoms == 0:
            raise PlanningError("cannot plan a query with no atoms")

        best: Dict[FrozenSet[int], PlanNode] = {}
        for info in self.infos:
            subset = frozenset([info.atom_index])
            best[subset] = PlanNode(
                variables=frozenset(info.variables),
                estimated_rows=float(max(info.cardinality, 1)),
                estimated_cost=float(max(info.cardinality, 1)),
                atom_index=info.atom_index,
            )

        all_indexes = list(range(num_atoms))
        for size in range(2, num_atoms + 1):
            for subset_tuple in itertools.combinations(all_indexes, size):
                subset = frozenset(subset_tuple)
                candidates: List[PlanNode] = []
                cross_candidates: List[PlanNode] = []
                for split_size in range(1, size):
                    for left_tuple in itertools.combinations(subset_tuple, split_size):
                        left_set = frozenset(left_tuple)
                        right_set = subset - left_set
                        left_plan = best.get(left_set)
                        right_plan = best.get(right_set)
                        if left_plan is None or right_plan is None:
                            continue
                        node = self._combine(left_plan, right_plan)
                        if left_plan.variables & right_plan.variables:
                            candidates.append(node)
                        else:
                            cross_candidates.append(node)
                pool = candidates or cross_candidates
                if not pool:
                    continue
                best[subset] = min(pool, key=lambda node: node.estimated_cost)

        full = frozenset(all_indexes)
        if full not in best:
            raise PlanningError("optimizer failed to cover every atom")
        root = best[full]
        return JoinPlan(
            root=root,
            atom_order=root.leaf_order(),
            estimated_cost=root.estimated_cost,
            estimated_rows=root.estimated_rows,
        )

    # ------------------------------------------------------------------
    def _combine(self, left: PlanNode, right: PlanNode) -> PlanNode:
        rows = _join_estimate(left, right, self.distinct_of)
        cost = left.estimated_cost + right.estimated_cost + rows
        return PlanNode(
            variables=left.variables | right.variables,
            estimated_rows=rows,
            estimated_cost=cost,
            left=left,
            right=right,
        )


def greedy_smallest_first_order(database: Database,
                                query: ConjunctiveQuery) -> List[int]:
    """The MonetDB-style ordering: smallest base relation first, then grow.

    No cost model is consulted beyond base cardinalities; ties prefer atoms
    connected to what has already been joined, then the original atom order.
    This is the regime the paper describes for the column store: "starts
    from either of the random node samples, and immediately does a self-join
    between two edges".
    """
    infos = _atom_infos(database, query)
    remaining = sorted(infos, key=lambda info: (info.cardinality, info.atom_index))
    if not remaining:
        raise PlanningError("cannot order a query with no atoms")
    order = [remaining.pop(0)]
    while remaining:
        bound: Set[Variable] = set()
        for info in order:
            bound.update(info.variables)
        connected = [info for info in remaining if bound & set(info.variables)]
        pool = connected or remaining
        nxt = min(pool, key=lambda info: (info.cardinality, info.atom_index))
        order.append(nxt)
        remaining.remove(nxt)
    return [info.atom_index for info in order]
