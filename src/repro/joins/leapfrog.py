"""Leapfrog Triejoin (LFTJ): the worst-case optimal multiway join.

LFTJ evaluates the query one attribute at a time following a global
attribute order.  For the current attribute it *leapfrogs* over the sorted
value lists of every atom containing that attribute: each participant seeks
to the current candidate value, the candidate is raised to the maximum key
seen, and the process repeats until all participants agree — at which point
the value is part of the intersection — or some participant runs out.  Its
running time is ``O~(N + AGM(Q))`` (Veldhuizen 2014), i.e. worst-case
optimal.

This implementation navigates :class:`repro.storage.trie.TrieIndex` objects
directly with explicit prefixes rather than stateful iterators; the search
pattern (and therefore the asymptotics) is identical to the iterator
formulation, and it keeps the recursion easy to read.

Comparison filters such as ``a < b < c`` are pushed into the search: a
filter whose greater side is the current attribute tightens the lower seek
bound, one whose lesser side is the current attribute provides an upper
cutoff, and everything else is checked as soon as its variables are bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import ComparisonAtom
from repro.datalog.gao import GAOChoice, select_gao
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    resolve_atom_relation,
)
from repro.storage.database import Database
from repro.storage.trie import TrieIndex
from repro.util import TimeBudget


@dataclass
class _AtomPlan:
    """Execution metadata for one atom under a fixed variable order."""

    index: TrieIndex
    # GAO positions of the atom's variables, ascending; level k of the trie
    # stores the variable at gao position ``gao_positions[k]``.
    gao_positions: Tuple[int, ...]
    # For each trie level, the GAO position it binds (same as gao_positions);
    # kept as a dict for O(1) lookup from gao position to trie level.
    level_of_position: Dict[int, int]


@dataclass
class _LevelPlan:
    """Per-attribute execution metadata."""

    variable: Variable
    # (atom plan, trie level) pairs for every atom containing the variable.
    participants: List[Tuple[_AtomPlan, int]]
    # Filters that become fully checkable at this level.
    checks: List[ComparisonAtom]
    # Filters of the form ``other < var`` / ``other <= var`` giving lower bounds.
    lower_bounds: List[Tuple[Variable, bool]]  # (other, strict)
    # Filters of the form ``var < other`` / ``var <= other`` giving upper cutoffs.
    upper_bounds: List[Tuple[Variable, bool]]  # (other, strict)


class LeapfrogTrieJoin(JoinAlgorithm):
    """Worst-case optimal Leapfrog Triejoin.

    Parameters
    ----------
    budget:
        Optional soft time budget.
    variable_order:
        Explicit attribute order (list of variable names).  Defaults to the
        automatic GAO selection, which is what the benchmarks use unless
        they are explicitly sweeping orders.
    """

    name = "lftj"

    def __init__(self, budget: Optional[TimeBudget] = None,
                 variable_order: Optional[Sequence[str]] = None) -> None:
        super().__init__(budget)
        self.variable_order = tuple(variable_order) if variable_order else None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def _attribute_order(self, query: ConjunctiveQuery) -> Tuple[Variable, ...]:
        if self.variable_order is None:
            return select_gao(query, policy="auto").order
        by_name = {v.name: v for v in query.variables}
        missing = [name for name in self.variable_order if name not in by_name]
        if missing:
            raise ExecutionError(f"unknown variables in explicit order: {missing}")
        if len(self.variable_order) != len(query.variables):
            raise ExecutionError(
                "explicit variable order must mention every query variable"
            )
        return tuple(by_name[name] for name in self.variable_order)

    def _plan(self, database: Database,
              query: ConjunctiveQuery) -> Tuple[Tuple[Variable, ...], List[_LevelPlan]]:
        order = self._attribute_order(query)
        position_of = {variable: index for index, variable in enumerate(order)}

        atom_plans: List[_AtomPlan] = []
        for atom in query.atoms:
            relation = resolve_atom_relation(database, atom)
            columns = atom_variable_columns(atom)
            if not columns:
                # Fully ground atom: an empty relation kills the query.
                if len(relation) == 0:
                    return order, []
                continue
            # Sort the atom's variables by GAO position; the trie must be
            # built in that column order (GAO consistency).
            ordered = sorted(columns, key=lambda pair: position_of[pair[0]])
            column_order = [column for _, column in ordered]
            index = TrieIndex(relation, column_order)
            gao_positions = tuple(position_of[variable] for variable, _ in ordered)
            atom_plans.append(_AtomPlan(
                index=index,
                gao_positions=gao_positions,
                level_of_position={p: level for level, p in enumerate(gao_positions)},
            ))

        levels: List[_LevelPlan] = []
        for position, variable in enumerate(order):
            participants: List[Tuple[_AtomPlan, int]] = []
            for plan in atom_plans:
                level = plan.level_of_position.get(position)
                if level is not None:
                    participants.append((plan, level))
            if not participants:
                raise ExecutionError(
                    f"variable {variable} is not covered by any atom"
                )
            checks: List[ComparisonAtom] = []
            lower_bounds: List[Tuple[Variable, bool]] = []
            upper_bounds: List[Tuple[Variable, bool]] = []
            for flt in query.filters:
                positions = [position_of[v] for v in flt.variables]
                if max(positions) != position:
                    continue
                bound_extracted = self._extract_bound(
                    flt, variable, position_of, lower_bounds, upper_bounds
                )
                if not bound_extracted:
                    checks.append(flt)
            levels.append(_LevelPlan(
                variable=variable,
                participants=participants,
                checks=checks,
                lower_bounds=lower_bounds,
                upper_bounds=upper_bounds,
            ))
        return order, levels

    @staticmethod
    def _extract_bound(flt: ComparisonAtom, variable: Variable,
                       position_of: Dict[Variable, int],
                       lower_bounds: List[Tuple[Variable, bool]],
                       upper_bounds: List[Tuple[Variable, bool]]) -> bool:
        """Register ``flt`` as a seek bound if it has the right shape.

        Returns True when the filter was fully handled as a bound; False when
        it must be evaluated as an ordinary check.
        """
        if not isinstance(flt.left, Variable) or not isinstance(flt.right, Variable):
            return False
        left, op, right = flt.left, flt.op, flt.right
        # Normalize to "low-side OP high-side" with the current variable last.
        if op in ("<", "<="):
            if right == variable:
                lower_bounds.append((left, op == "<"))
                return True
            if left == variable:
                upper_bounds.append((right, op == "<"))
                return True
        if op in (">", ">="):
            if left == variable:
                lower_bounds.append((right, op == ">"))
                return True
            if right == variable:
                upper_bounds.append((left, op == ">"))
                return True
        return False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        order, levels = self._plan(database, query)
        if not levels:
            if order and len(query.variables) > 0:
                return
            return
        values: List[int] = [0] * len(order)
        yield from self._search(0, values, order, levels)

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        self._check_supported(query)
        order, levels = self._plan(database, query)
        if not levels:
            return 0
        values: List[int] = [0] * len(order)
        return self._count_level(0, values, order, levels)

    # -- recursive search -------------------------------------------------
    def _candidate_values(self, depth: int, values: List[int],
                          levels: List[_LevelPlan]) -> Iterator[int]:
        """Yield the leapfrog intersection at ``depth`` in increasing order."""
        level = levels[depth]
        lower = 0
        for other, strict in level.lower_bounds:
            bound = values[self._position_cache[other]]
            lower = max(lower, bound + 1 if strict else bound)
        upper: Optional[int] = None
        for other, strict in level.upper_bounds:
            bound = values[self._position_cache[other]]
            cutoff = bound - 1 if strict else bound
            upper = cutoff if upper is None else min(upper, cutoff)

        participants = []
        for plan, trie_level in level.participants:
            prefix = tuple(
                values[plan.gao_positions[k]] for k in range(trie_level)
            )
            participants.append((plan.index, prefix))

        candidate = lower
        while True:
            self.budget.tick()
            if upper is not None and candidate > upper:
                return
            # Leapfrog: raise the candidate to the max of all participants'
            # least keys >= candidate until they all agree.
            agreed = candidate
            exhausted = False
            changed = True
            while changed:
                changed = False
                for index, prefix in participants:
                    key = index.seek_value(prefix, agreed)
                    if key is None:
                        exhausted = True
                        break
                    if key > agreed:
                        agreed = key
                        changed = True
                if exhausted:
                    break
            if exhausted:
                return
            if upper is not None and agreed > upper:
                return
            yield agreed
            candidate = agreed + 1

    def _check_filters(self, depth: int, values: List[int],
                       order: Sequence[Variable],
                       levels: List[_LevelPlan]) -> bool:
        binding = {order[i]: values[i] for i in range(depth + 1)}
        for flt in levels[depth].checks:
            if not flt.evaluate(binding):
                return False
        return True

    def _search(self, depth: int, values: List[int], order: Sequence[Variable],
                levels: List[_LevelPlan]) -> Iterator[Binding]:
        self._position_cache = {v: i for i, v in enumerate(order)}
        yield from self._search_inner(depth, values, order, levels)

    def _search_inner(self, depth: int, values: List[int],
                      order: Sequence[Variable],
                      levels: List[_LevelPlan]) -> Iterator[Binding]:
        for value in self._candidate_values(depth, values, levels):
            values[depth] = value
            if not self._check_filters(depth, values, order, levels):
                continue
            if depth == len(order) - 1:
                yield {order[i]: values[i] for i in range(len(order))}
            else:
                yield from self._search_inner(depth + 1, values, order, levels)

    def _count_level(self, depth: int, values: List[int],
                     order: Sequence[Variable], levels: List[_LevelPlan]) -> int:
        self._position_cache = {v: i for i, v in enumerate(order)}
        return self._count_inner(depth, values, order, levels)

    def _count_inner(self, depth: int, values: List[int],
                     order: Sequence[Variable], levels: List[_LevelPlan]) -> int:
        total = 0
        for value in self._candidate_values(depth, values, levels):
            values[depth] = value
            if not self._check_filters(depth, values, order, levels):
                continue
            if depth == len(order) - 1:
                total += 1
            else:
                total += self._count_inner(depth + 1, values, order, levels)
        return total
