"""Shared contract and helpers for every join algorithm.

All algorithms implement the same two entry points:

* ``enumerate_bindings(database, query)`` — yield each output tuple as a
  mapping from :class:`~repro.datalog.terms.Variable` to ``int``;
* ``count(database, query)`` — return the number of output tuples.

The default ``count`` simply drains ``enumerate_bindings``; algorithms with
smarter counting (``#Minesweeper``, Yannakakis) override it.  Outputs are
*set semantics* over the query's variables, matching the paper's count
queries.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable, is_variable
from repro.storage.database import Database
from repro.storage.relation import Relation
from repro.util import TimeBudget

Binding = Dict[Variable, int]


class BindingIterator:
    """Type alias helper: an iterator of variable bindings."""

    def __class_getitem__(cls, item):  # pragma: no cover - typing sugar
        return Iterator[Binding]


class JoinAlgorithm(abc.ABC):
    """Abstract base class for join algorithms.

    Subclasses must implement :meth:`enumerate_bindings`; :meth:`count` has a
    drain-the-iterator default.  ``name`` is the identifier used by the
    :class:`repro.engine.QueryEngine` registry and the benchmark harness.
    """

    name: str = "abstract"

    def __init__(self, budget: Optional[TimeBudget] = None) -> None:
        self.budget = budget or TimeBudget.unlimited()

    @abc.abstractmethod
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        """Yield every output binding of ``query`` over ``database``."""

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        """Number of output tuples (default: drain the enumerator)."""
        total = 0
        for _ in self.enumerate_bindings(database, query):
            total += 1
        return total

    # ------------------------------------------------------------------
    # Shared pre-processing helpers
    # ------------------------------------------------------------------
    def _check_supported(self, query: ConjunctiveQuery) -> None:
        """Reject atoms with repeated variables (not used by the workload)."""
        for atom in query.atoms:
            seen: List[Variable] = []
            for term in atom.terms:
                if is_variable(term):
                    if term in seen:
                        raise ExecutionError(
                            f"{self.name}: atom {atom} repeats variable {term}; "
                            f"rewrite with an explicit equality filter"
                        )
                    seen.append(term)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# Constant elimination
# ----------------------------------------------------------------------
def resolve_atom_relation(database: Database, atom: Atom) -> Relation:
    """The relation for ``atom`` with constant arguments pre-selected away.

    For an atom like ``edge(a, 5)``, returns ``σ_{dst=5}(edge)`` projected to
    the variable columns, so that downstream algorithms only ever deal with
    all-variable atoms.  The projected relation keeps one column per
    *distinct* variable in order of first occurrence within the atom.
    """
    relation = database.relation(atom.name)
    constant_columns = [
        (position, term.value)
        for position, term in enumerate(atom.terms)
        if isinstance(term, Constant)
    ]
    for position, value in constant_columns:
        relation = relation.select_eq(position, value)
    if not constant_columns:
        return relation
    variable_columns = [
        position for position, term in enumerate(atom.terms) if is_variable(term)
    ]
    if not variable_columns:
        # Fully ground atom: keep a single marker column so emptiness checks work.
        return relation.project([0], name=f"{atom.name}_ground")
    return relation.project(variable_columns, name=f"{atom.name}_bound")


def atom_variable_columns(atom: Atom) -> List[Tuple[Variable, int]]:
    """(variable, column) pairs of an all-variable view of ``atom``.

    When the atom has constants, columns refer to the projected relation
    produced by :func:`resolve_atom_relation` (variable columns only, in
    positional order).
    """
    pairs: List[Tuple[Variable, int]] = []
    next_column = 0
    for term in atom.terms:
        if is_variable(term):
            pairs.append((term, next_column))
            next_column += 1
    return pairs


# ----------------------------------------------------------------------
# Filters
# ----------------------------------------------------------------------
def filters_satisfied(binding: Binding,
                      filters: Sequence[ComparisonAtom]) -> bool:
    """Evaluate the filters that are fully bound; unbound filters pass."""
    for flt in filters:
        if all(v in binding for v in flt.variables):
            if not flt.evaluate(binding):
                return False
    return True


def newly_checkable_filters(filters: Sequence[ComparisonAtom],
                            order: Sequence[Variable]) -> List[List[ComparisonAtom]]:
    """Group filters by the first position in ``order`` where they become checkable.

    ``result[i]`` holds the filters whose variables are all bound once the
    first ``i + 1`` variables of ``order`` are bound.  Attribute-at-a-time
    algorithms use this to check each filter exactly once, as early as
    possible.
    """
    groups: List[List[ComparisonAtom]] = [[] for _ in order]
    position_of = {variable: index for index, variable in enumerate(order)}
    for flt in filters:
        last = max(position_of[v] for v in flt.variables)
        groups[last].append(flt)
    return groups


# ----------------------------------------------------------------------
# Output shaping
# ----------------------------------------------------------------------
def bindings_to_tuples(bindings: Iterable[Binding],
                       variables: Sequence[Variable]) -> List[Tuple[int, ...]]:
    """Convert bindings to tuples in the canonical variable order (sorted)."""
    rows = [tuple(binding[v] for v in variables) for binding in bindings]
    rows.sort()
    return rows


def canonical_variable_order(query: ConjunctiveQuery) -> Tuple[Variable, ...]:
    """First-occurrence variable order used to canonicalize outputs in tests."""
    return query.variables
