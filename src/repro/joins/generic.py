"""Generic Join: the hash-based formulation of worst-case optimal join.

This is the NPRR / "skew strikes back" style algorithm [Ngo, Ré, Rudra
2013]: evaluate one attribute at a time; for the current attribute take the
candidate set from the participant with the *fewest* matching values and
probe the remaining participants with hash lookups.  It has the same
worst-case optimality guarantee as Leapfrog Triejoin but exercises a
different data-structure regime (hash maps instead of sorted tries), which
is why the repository keeps both: cross-validation plus the
``wcoj-variants`` ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.gao import select_gao
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    filters_satisfied,
    newly_checkable_filters,
    resolve_atom_relation,
)
from repro.storage.database import Database
from repro.util import TimeBudget


class _HashedAtom:
    """An atom's relation hashed by every prefix of its variable order."""

    __slots__ = ("variables", "prefix_maps")

    def __init__(self, variables: Sequence[Variable],
                 rows: Sequence[Tuple[int, ...]]) -> None:
        self.variables = tuple(variables)
        # prefix_maps[k] maps a k-tuple of values (for the first k variables)
        # to the set of values the (k+1)-th variable can take.
        self.prefix_maps: List[Dict[Tuple[int, ...], Set[int]]] = [
            {} for _ in range(len(self.variables))
        ]
        for row in rows:
            for k in range(len(self.variables)):
                prefix = row[:k]
                self.prefix_maps[k].setdefault(prefix, set()).add(row[k])

    def candidates(self, prefix: Tuple[int, ...], level: int) -> Set[int]:
        """Values the variable at ``level`` can take under ``prefix``."""
        return self.prefix_maps[level].get(prefix, set())


class GenericJoin(JoinAlgorithm):
    """Hash-based worst-case optimal join (Generic Join / NPRR-style)."""

    name = "generic"

    def __init__(self, budget: Optional[TimeBudget] = None,
                 variable_order: Optional[Sequence[str]] = None) -> None:
        super().__init__(budget)
        self.variable_order = tuple(variable_order) if variable_order else None

    def _attribute_order(self, query: ConjunctiveQuery) -> Tuple[Variable, ...]:
        if self.variable_order is None:
            return select_gao(query, policy="auto").order
        by_name = {v.name: v for v in query.variables}
        missing = [name for name in self.variable_order if name not in by_name]
        if missing:
            raise ExecutionError(f"unknown variables in explicit order: {missing}")
        return tuple(by_name[name] for name in self.variable_order)

    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        order = self._attribute_order(query)
        position_of = {variable: index for index, variable in enumerate(order)}

        hashed: List[Tuple[_HashedAtom, Tuple[int, ...]]] = []
        for atom in query.atoms:
            relation = resolve_atom_relation(database, atom)
            columns = atom_variable_columns(atom)
            if not columns:
                if len(relation) == 0:
                    return
                continue
            ordered = sorted(columns, key=lambda pair: position_of[pair[0]])
            variables = [variable for variable, _ in ordered]
            column_order = [column for _, column in ordered]
            rows = [tuple(row[c] for c in column_order) for row in relation]
            gao_positions = tuple(position_of[variable] for variable in variables)
            hashed.append((_HashedAtom(variables, rows), gao_positions))

        filter_groups = newly_checkable_filters(query.filters, order)

        def participants_at(position: int) -> List[Tuple[_HashedAtom, int]]:
            out = []
            for atom_hash, gao_positions in hashed:
                if position in gao_positions:
                    out.append((atom_hash, gao_positions.index(position)))
            return out

        participants_per_level = [participants_at(i) for i in range(len(order))]
        for position, participants in enumerate(participants_per_level):
            if not participants:
                raise ExecutionError(
                    f"variable {order[position]} is not covered by any atom"
                )

        values: Dict[Variable, int] = {}

        def search(depth: int) -> Iterator[Binding]:
            self.budget.tick()
            if depth == len(order):
                yield dict(values)
                return
            participants = participants_per_level[depth]
            candidate_sets: List[Set[int]] = []
            for atom_hash, level in participants:
                prefix = tuple(values[v] for v in atom_hash.variables[:level])
                candidate_sets.append(atom_hash.candidates(prefix, level))
            candidate_sets.sort(key=len)
            candidates = candidate_sets[0]
            for other in candidate_sets[1:]:
                candidates = candidates & other
                if not candidates:
                    break
            variable = order[depth]
            for value in sorted(candidates):
                self.budget.tick()
                values[variable] = value
                if all(f.evaluate(values) for f in filter_groups[depth]):
                    yield from search(depth + 1)
            values.pop(variable, None)

        yield from search(0)
