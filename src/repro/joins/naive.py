"""An obviously-correct backtracking evaluator used as the test oracle.

The algorithm binds atoms one by one, scanning each atom's relation for
tuples consistent with the current partial binding.  It is deliberately
simple (no indexes beyond a per-atom scan, no planning) so that its
correctness can be verified by inspection; every other algorithm in the
library is cross-checked against it on randomized instances.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Variable
from repro.joins.base import (
    Binding,
    JoinAlgorithm,
    atom_variable_columns,
    filters_satisfied,
    resolve_atom_relation,
)
from repro.storage.database import Database


class NaiveBacktrackingJoin(JoinAlgorithm):
    """Reference evaluator: atom-at-a-time backtracking search."""

    name = "naive"

    @staticmethod
    def _atom_order(query: ConjunctiveQuery, atom_relations) -> List[int]:
        """Smallest-first ordering that prefers atoms touching bound variables."""
        remaining = list(range(len(query.atoms)))
        order: List[int] = []
        bound: set = set()
        while remaining:
            connected = [
                index for index in remaining
                if bound & set(query.atoms[index].variables)
            ]
            pool = connected or remaining
            nxt = min(pool, key=lambda index: (len(atom_relations[index]), index))
            order.append(nxt)
            remaining.remove(nxt)
            bound.update(query.atoms[nxt].variables)
        return order

    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        atom_relations = [resolve_atom_relation(database, atom) for atom in query.atoms]
        atom_columns = [atom_variable_columns(atom) for atom in query.atoms]
        # Order atoms smallest-first, preferring atoms that share a variable
        # with the ones already placed so each new atom is constrained by the
        # current partial binding.  This is an optimization only (any order
        # is correct); without it tree-shaped queries degenerate into
        # unconstrained cross products of the edge relation.
        order = self._atom_order(query, atom_relations)
        all_variables = query.variables

        def extend(index: int, binding: Binding) -> Iterator[Binding]:
            self.budget.tick()
            if index == len(order):
                if filters_satisfied(binding, query.filters):
                    yield dict(binding)
                return
            atom_index = order[index]
            relation = atom_relations[atom_index]
            columns = atom_columns[atom_index]
            for row in relation:
                self.budget.tick()
                extended = dict(binding)
                consistent = True
                for variable, column in columns:
                    value = row[column]
                    if variable in extended and extended[variable] != value:
                        consistent = False
                        break
                    extended[variable] = value
                if not consistent:
                    continue
                if not filters_satisfied(extended, query.filters):
                    continue
                yield from extend(index + 1, extended)

        seen: set = set()
        for binding in extend(0, {}):
            key = tuple(binding[v] for v in all_variables)
            if key in seen:
                continue
            seen.add(key)
            yield binding
