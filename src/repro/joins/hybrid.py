"""The Minesweeper + Leapfrog Triejoin hybrid of §4.12.

Lollipop queries concatenate a path (where Minesweeper's caching wins) with
a clique (where LFTJ's simultaneous narrowing wins); the paper's hybrid
runs Minesweeper on the path part and LFTJ on the clique part, and Table 7
shows it beating both pure algorithms.

The split is computed structurally rather than from the query name:

* nest-point elimination is run as far as it goes; the vertices that cannot
  be eliminated form the *cyclic core* of the query;
* atoms whose variables all lie inside the core form the **clique part**,
  everything else the **path part** (which is β-acyclic by construction);
* Minesweeper enumerates the path part; for every distinct assignment of
  the *interface variables* (core variables touched by the path part), the
  clique part — with those variables frozen to constants — is evaluated by
  LFTJ exactly once and cached, which is the redundancy-avoidance the
  lollipop workload rewards.

When the query has no cyclic core the hybrid degenerates to plain
Minesweeper; when it has no acyclic part it degenerates to plain LFTJ.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import ExecutionError
from repro.datalog.atoms import Atom, ComparisonAtom
from repro.datalog.hypergraph import Hypergraph
from repro.datalog.query import ConjunctiveQuery
from repro.datalog.terms import Constant, Variable, is_variable
from repro.joins.base import Binding, JoinAlgorithm, filters_satisfied
from repro.joins.leapfrog import LeapfrogTrieJoin
from repro.joins.minesweeper.engine import MinesweeperJoin, MinesweeperOptions
from repro.storage.database import Database
from repro.util import TimeBudget


def cyclic_core(query: ConjunctiveQuery) -> Set[Variable]:
    """Variables that survive exhaustive nest-point elimination.

    The result is empty exactly when the query is β-acyclic.
    """
    hypergraph = Hypergraph.of_query(query)
    edges: List[Set[Variable]] = [set(edge) for edge in hypergraph.edges if edge]
    remaining: Set[Variable] = set(hypergraph.vertices)
    changed = True
    while changed:
        changed = False
        for vertex in sorted(remaining, key=lambda v: v.name):
            if Hypergraph._is_nest_point(vertex, edges):
                remaining.discard(vertex)
                edges = [edge - {vertex} for edge in edges]
                edges = [edge for edge in edges if edge]
                changed = True
                break
    return remaining


def split_query(query: ConjunctiveQuery
                ) -> Tuple[List[int], List[int], Set[Variable]]:
    """Partition atom indexes into (path part, clique part, interface vars)."""
    core = cyclic_core(query)
    clique_atoms = [
        index for index, atom in enumerate(query.atoms)
        if atom.variables and set(atom.variables) <= core
    ]
    path_atoms = [index for index in range(len(query.atoms))
                  if index not in clique_atoms]
    path_variables: Set[Variable] = set()
    for index in path_atoms:
        path_variables.update(query.atoms[index].variables)
    interface = core & path_variables
    return path_atoms, clique_atoms, interface


class HybridMinesweeperLeapfrog(JoinAlgorithm):
    """Minesweeper on the acyclic part, LFTJ on the cyclic core (§4.12)."""

    name = "hybrid"

    def __init__(self, budget: Optional[TimeBudget] = None,
                 options: Optional[MinesweeperOptions] = None) -> None:
        super().__init__(budget)
        self.options = options or MinesweeperOptions()
        self.last_clique_cache_hits = 0
        self.last_clique_evaluations = 0

    # ------------------------------------------------------------------
    def enumerate_bindings(self, database: Database,
                           query: ConjunctiveQuery) -> Iterator[Binding]:
        self._check_supported(query)
        path_atoms, clique_atoms, interface = split_query(query)

        if not clique_atoms:
            engine = MinesweeperJoin(budget=self.budget, options=self.options)
            yield from engine.enumerate_bindings(database, query)
            return
        if not path_atoms:
            engine = LeapfrogTrieJoin(budget=self.budget)
            yield from engine.enumerate_bindings(database, query)
            return

        path_query, clique_query, cross_filters = self._split_filters(
            query, path_atoms, clique_atoms
        )
        clique_variables = clique_query.variables
        interface_order = sorted(interface, key=lambda v: v.name)

        minesweeper = MinesweeperJoin(budget=self.budget, options=self.options)
        clique_cache: Dict[Tuple[int, ...], List[Dict[Variable, int]]] = {}
        self.last_clique_cache_hits = 0
        self.last_clique_evaluations = 0

        for path_binding in minesweeper.enumerate_bindings(database, path_query):
            self.budget.tick()
            key = tuple(path_binding[v] for v in interface_order)
            completions = clique_cache.get(key)
            if completions is None:
                completions = self._clique_completions(
                    database, clique_query, interface_order, key
                )
                clique_cache[key] = completions
                self.last_clique_evaluations += 1
            else:
                self.last_clique_cache_hits += 1
            for clique_binding in completions:
                merged = dict(path_binding)
                merged.update(clique_binding)
                if cross_filters and not filters_satisfied(merged, cross_filters):
                    continue
                yield merged

    def count(self, database: Database, query: ConjunctiveQuery) -> int:
        return sum(1 for _ in self.enumerate_bindings(database, query))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _split_filters(query: ConjunctiveQuery, path_atoms: Sequence[int],
                       clique_atoms: Sequence[int]
                       ) -> Tuple[ConjunctiveQuery, ConjunctiveQuery,
                                  Tuple[ComparisonAtom, ...]]:
        """Build the two subqueries and collect filters that span both."""
        path_atom_list = [query.atoms[i] for i in path_atoms]
        clique_atom_list = [query.atoms[i] for i in clique_atoms]
        path_variables: Set[Variable] = set()
        for atom in path_atom_list:
            path_variables.update(atom.variables)
        clique_variables: Set[Variable] = set()
        for atom in clique_atom_list:
            clique_variables.update(atom.variables)

        path_filters: List[ComparisonAtom] = []
        clique_filters: List[ComparisonAtom] = []
        cross_filters: List[ComparisonAtom] = []
        for flt in query.filters:
            needed = set(flt.variables)
            if needed <= path_variables:
                path_filters.append(flt)
            elif needed <= clique_variables:
                clique_filters.append(flt)
            else:
                cross_filters.append(flt)
        path_query = ConjunctiveQuery(path_atom_list, path_filters)
        clique_query = ConjunctiveQuery(clique_atom_list, clique_filters)
        return path_query, clique_query, tuple(cross_filters)

    def _clique_completions(self, database: Database,
                            clique_query: ConjunctiveQuery,
                            interface_order: Sequence[Variable],
                            key: Tuple[int, ...]) -> List[Dict[Variable, int]]:
        """Evaluate the clique part with the interface variables frozen."""
        substitution = dict(zip(interface_order, key))
        bound_atoms: List[Atom] = []
        for atom in clique_query.atoms:
            terms = [
                Constant(substitution[term]) if is_variable(term) and term in substitution
                else term
                for term in atom.terms
            ]
            bound_atoms.append(Atom(atom.name, terms))
        free_variables = [
            v for v in clique_query.variables if v not in substitution
        ]
        filters = [
            flt for flt in clique_query.filters
            if not set(flt.variables) <= set(substitution)
        ]
        # Filters entirely over interface variables are decided right now.
        decided = [
            flt for flt in clique_query.filters
            if set(flt.variables) <= set(substitution)
        ]
        if any(not flt.evaluate(substitution) for flt in decided):
            return []
        if not free_variables:
            # The clique part is fully determined by the interface values;
            # check each ground atom directly.
            for atom in bound_atoms:
                relation = database.relation(atom.name)
                row = tuple(term.value for term in atom.terms)  # type: ignore[union-attr]
                if row not in relation:
                    return []
            return [dict(substitution)]
        rewritten_filters = [self._rewrite_filter(flt, substitution) for flt in filters]
        bound_query = ConjunctiveQuery(bound_atoms, rewritten_filters)
        engine = LeapfrogTrieJoin(budget=self.budget)
        completions: List[Dict[Variable, int]] = []
        for binding in engine.enumerate_bindings(database, bound_query):
            completion = {v: binding[v] for v in free_variables}
            completion.update(substitution)
            completions.append(completion)
        return completions

    @staticmethod
    def _rewrite_filter(flt: ComparisonAtom,
                        substitution: Dict[Variable, int]) -> ComparisonAtom:
        """Replace interface variables inside a filter with constants."""
        left = (Constant(substitution[flt.left])
                if is_variable(flt.left) and flt.left in substitution else flt.left)
        right = (Constant(substitution[flt.right])
                 if is_variable(flt.right) and flt.right in substitution else flt.right)
        return ComparisonAtom(left, flt.op, right)
