"""A small catalog: named relations plus cached trie indexes."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, StorageError
from repro.storage.relation import Relation
from repro.storage.trie import TrieIndex
from repro.storage.statistics import RelationStatistics, collect_statistics

ChangeListener = Callable[[str], None]


class Database:
    """Named relations with on-demand, cached trie indexes.

    The paper's engines assume each relation is available in one or more
    attribute orders consistent with the query's GAO.  Real systems maintain
    those as persistent indexes; here the catalog builds them lazily the
    first time an (attribute-order-specific) index is requested and caches
    them so repeated queries and benchmark iterations do not pay the sort
    again.
    """

    def __init__(self, relations: Optional[Iterable[Relation]] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        self._indexes: Dict[Tuple[str, Tuple[int, ...]], TrieIndex] = {}
        self._statistics: Dict[str, RelationStatistics] = {}
        # Monotonic change counters: the catalog-wide version bumps on every
        # add/remove, and each relation name carries its own version so
        # caches (e.g. the service result cache) can validate entries per
        # relation instead of flushing wholesale.
        self._version = 0
        self._relation_versions: Dict[str, int] = {}
        self._listeners: List[ChangeListener] = []
        for relation in relations or ():
            self.add(relation)

    # ------------------------------------------------------------------
    # Catalog management
    # ------------------------------------------------------------------
    def add(self, relation: Relation, replace: bool = False) -> None:
        """Register ``relation`` under its name."""
        if relation.name in self._relations and not replace:
            raise SchemaError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation
        # Any cached indexes or statistics for a replaced relation are stale.
        self._indexes = {
            key: index for key, index in self._indexes.items()
            if key[0] != relation.name
        }
        self._statistics.pop(relation.name, None)
        self._note_change(relation.name)

    def remove(self, name: str) -> None:
        """Remove a relation and every cached index built over it."""
        if name not in self._relations:
            raise SchemaError(f"relation {name!r} does not exist")
        del self._relations[name]
        self._indexes = {
            key: index for key, index in self._indexes.items() if key[0] != name
        }
        self._statistics.pop(name, None)
        self._note_change(name)

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------
    def _note_change(self, name: str) -> None:
        self._version += 1
        self._relation_versions[name] = self._version
        for listener in list(self._listeners):
            listener(name)

    @property
    def version(self) -> int:
        """Catalog-wide version: bumps whenever any relation changes."""
        return self._version

    def relation_version(self, name: str) -> int:
        """Version of one relation name (0 if it never existed)."""
        return self._relation_versions.get(name, 0)

    def subscribe(self, listener: ChangeListener) -> ChangeListener:
        """Register ``listener(name)`` to fire on every add/remove.

        Returns the listener so callers can keep the handle for
        :meth:`unsubscribe`.  Listeners run synchronously inside the
        mutating call, after the catalog and version counters are updated.
        """
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: ChangeListener) -> None:
        """Remove a previously registered change listener (idempotent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def names(self) -> List[str]:
        """All relation names, sorted."""
        return sorted(self._relations)

    def relations(self) -> List[Relation]:
        """All relations, sorted by name."""
        return [self._relations[name] for name in self.names()]

    def __len__(self) -> int:
        return len(self._relations)

    def total_tuples(self) -> int:
        """Sum of relation cardinalities (the paper's N)."""
        return sum(len(rel) for rel in self._relations.values())

    def copy(self) -> "Database":
        """A shallow copy sharing the (immutable) relations but no index cache."""
        return Database(self._relations.values())

    # ------------------------------------------------------------------
    # Indexes and statistics
    # ------------------------------------------------------------------
    def index(self, name: str, column_order: Sequence[int]) -> TrieIndex:
        """Return (building and caching if needed) a trie index.

        ``column_order`` is the permutation of the relation's columns that
        the index should be sorted by.
        """
        relation = self.relation(name)
        key = (name, tuple(column_order))
        if key not in self._indexes:
            if sorted(column_order) != list(range(relation.arity)):
                raise StorageError(
                    f"column order {list(column_order)} invalid for relation "
                    f"{name!r} of arity {relation.arity}"
                )
            self._indexes[key] = TrieIndex(relation, column_order)
        return self._indexes[key]

    def natural_index(self, name: str) -> TrieIndex:
        """The index in the relation's natural column order."""
        relation = self.relation(name)
        return self.index(name, tuple(range(relation.arity)))

    def statistics(self, name: str) -> RelationStatistics:
        """Cached per-relation statistics for the cost-based optimizer."""
        if name not in self._statistics:
            self._statistics[name] = collect_statistics(self.relation(name))
        return self._statistics[name]

    def index_cache_size(self) -> int:
        """Number of materialised indexes (useful in tests and benchmarks)."""
        return len(self._indexes)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}[{len(rel)}]" for name, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
