"""Immutable sorted relations over integer domains."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SchemaError, StorageError

Tuple_ = Tuple[int, ...]


class Relation:
    """An immutable set of integer tuples with a fixed arity.

    Tuples are de-duplicated and stored in lexicographic order, which makes
    the relation directly usable as a level-0 trie and keeps scans
    deterministic.  All values must be non-negative integers (node
    identifiers), matching the paper's model of the output space as a grid
    of naturals.
    """

    __slots__ = ("name", "arity", "attributes", "_tuples")

    def __init__(
        self,
        name: str,
        arity: int,
        tuples: Iterable[Sequence[int]],
        attributes: Optional[Sequence[str]] = None,
    ) -> None:
        if arity <= 0:
            raise SchemaError(f"relation {name!r} must have positive arity")
        if attributes is not None and len(attributes) != arity:
            raise SchemaError(
                f"relation {name!r}: {len(attributes)} attribute names for "
                f"arity {arity}"
            )
        self.name = name
        self.arity = arity
        self.attributes = tuple(attributes) if attributes is not None else tuple(
            f"c{i}" for i in range(arity)
        )
        normalized: Set[Tuple_] = set()
        for row in tuples:
            row_tuple = tuple(int(v) for v in row)
            if len(row_tuple) != arity:
                raise StorageError(
                    f"relation {name!r}: tuple {row_tuple} has arity "
                    f"{len(row_tuple)}, expected {arity}"
                )
            if any(v < 0 for v in row_tuple):
                raise StorageError(
                    f"relation {name!r}: tuple {row_tuple} has a negative value"
                )
            normalized.add(row_tuple)
        self._tuples: List[Tuple_] = sorted(normalized)

    @classmethod
    def from_sorted(
        cls,
        name: str,
        arity: int,
        sorted_rows: Iterable[Tuple_],
        attributes: Optional[Sequence[str]] = None,
    ) -> "Relation":
        """Build a relation from rows that are *already* sorted and unique.

        This is the fast path used by the partitioner: a shard fragment is
        a subsequence of an existing relation's sorted tuple list, so it is
        sorted and de-duplicated by construction and re-validating it per
        shard would dominate the cost of partitioning.  Callers own the
        invariant; no checking is performed.
        """
        if arity <= 0:
            raise SchemaError(f"relation {name!r} must have positive arity")
        relation = cls.__new__(cls)
        relation.name = name
        relation.arity = arity
        relation.attributes = (
            tuple(attributes) if attributes is not None
            else tuple(f"c{i}" for i in range(arity))
        )
        relation._tuples = list(sorted_rows)
        return relation

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def __contains__(self, row: Sequence[int]) -> bool:
        # Binary search on the sorted tuple list: membership costs
        # O(log n) instead of keeping a second copy of every tuple in a
        # hash set, which halves the relation's resident memory.
        probe = tuple(row)
        index = bisect_left(self._tuples, probe)
        return index < len(self._tuples) and self._tuples[index] == probe

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity, tuple(self._tuples)))

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, arity={self.arity}, size={len(self)})"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def tuples(self) -> List[Tuple_]:
        """The sorted tuples (a copy is *not* made; treat it as read-only)."""
        return self._tuples

    def column(self, index: int) -> List[int]:
        """All values of column ``index`` in tuple order (with duplicates)."""
        self._check_column(index)
        return [row[index] for row in self._tuples]

    def distinct_values(self, index: int) -> List[int]:
        """Sorted distinct values of column ``index``."""
        self._check_column(index)
        return sorted({row[index] for row in self._tuples})

    def active_domain(self) -> List[int]:
        """Sorted distinct values appearing anywhere in the relation."""
        values: Set[int] = set()
        for row in self._tuples:
            values.update(row)
        return sorted(values)

    def min_value(self, index: int) -> Optional[int]:
        """Smallest value in column ``index`` (None if empty)."""
        self._check_column(index)
        if not self._tuples:
            return None
        return min(row[index] for row in self._tuples)

    def max_value(self, index: int) -> Optional[int]:
        """Largest value in column ``index`` (None if empty)."""
        self._check_column(index)
        if not self._tuples:
            return None
        return max(row[index] for row in self._tuples)

    # ------------------------------------------------------------------
    # Relational operators (small, eager, used by baselines and tests)
    # ------------------------------------------------------------------
    def project(self, columns: Sequence[int], name: Optional[str] = None) -> "Relation":
        """Project onto the given column indexes (duplicates removed)."""
        for column in columns:
            self._check_column(column)
        projected = {tuple(row[c] for c in columns) for row in self._tuples}
        return Relation(
            name or f"{self.name}_proj",
            len(columns),
            projected,
            [self.attributes[c] for c in columns],
        )

    def select_eq(self, column: int, value: int,
                  name: Optional[str] = None) -> "Relation":
        """Select tuples whose ``column`` equals ``value``."""
        self._check_column(column)
        rows = [row for row in self._tuples if row[column] == value]
        return Relation(name or f"{self.name}_sel", self.arity, rows, self.attributes)

    def reorder(self, permutation: Sequence[int],
                name: Optional[str] = None) -> "Relation":
        """Return the relation with columns permuted.

        ``permutation[i]`` gives the source column of output column ``i``.
        """
        if sorted(permutation) != list(range(self.arity)):
            raise SchemaError(
                f"invalid permutation {permutation} for arity {self.arity}"
            )
        rows = [tuple(row[p] for p in permutation) for row in self._tuples]
        attrs = [self.attributes[p] for p in permutation]
        return Relation(name or self.name, self.arity, rows, attrs)

    def union(self, other: "Relation", name: Optional[str] = None) -> "Relation":
        """Set union with another relation of the same arity."""
        if other.arity != self.arity:
            raise SchemaError(
                f"cannot union arity {self.arity} with arity {other.arity}"
            )
        return Relation(
            name or self.name, self.arity,
            list(self._tuples) + list(other._tuples), self.attributes,
        )

    # ------------------------------------------------------------------
    # Prefix search support (the trie uses these directly)
    # ------------------------------------------------------------------
    def prefix_range(self, prefix: Sequence[int],
                     lo: int = 0, hi: Optional[int] = None) -> Tuple[int, int]:
        """Return ``[lo, hi)`` bounds of tuples starting with ``prefix``.

        The search can be restricted to an existing range, which is how the
        trie narrows level by level.
        """
        if hi is None:
            hi = len(self._tuples)
        prefix_tuple = tuple(prefix)
        if len(prefix_tuple) > self.arity:
            raise StorageError(
                f"prefix {prefix_tuple} longer than arity {self.arity}"
            )
        lower = bisect_left(self._tuples, prefix_tuple, lo, hi)
        upper_key = prefix_tuple[:-1] + (prefix_tuple[-1] + 1,) if prefix_tuple else ()
        if prefix_tuple:
            upper = bisect_left(self._tuples, upper_key, lower, hi)
        else:
            upper = hi
        return lower, upper

    def has_prefix(self, prefix: Sequence[int]) -> bool:
        """True iff some tuple starts with ``prefix``."""
        lower, upper = self.prefix_range(prefix)
        return lower < upper

    def _check_column(self, index: int) -> None:
        if not 0 <= index < self.arity:
            raise StorageError(
                f"column {index} out of range for relation {self.name!r} "
                f"of arity {self.arity}"
            )


def relation_from_rows(name: str, rows: Iterable[Sequence[int]],
                       attributes: Optional[Sequence[str]] = None) -> Relation:
    """Convenience constructor inferring the arity from the first row."""
    materialized = [tuple(row) for row in rows]
    if not materialized:
        raise StorageError(
            f"cannot infer arity of empty relation {name!r}; "
            f"use Relation(name, arity, []) instead"
        )
    return Relation(name, len(materialized[0]), materialized, attributes)
