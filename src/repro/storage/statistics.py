"""Per-relation statistics backing the Selinger-style cost model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.storage.relation import Relation


@dataclass(frozen=True)
class RelationStatistics:
    """Summary statistics of a relation used for cardinality estimation.

    ``distinct_counts[i]`` is the number of distinct values in column ``i``;
    ``min_values`` / ``max_values`` give per-column value ranges.  The
    pairwise baselines use these with the textbook independence and
    containment-of-value-sets assumptions, which is exactly the estimation
    regime under which Selinger-style optimizers mis-plan cyclic graph
    patterns (§1 of the paper).
    """

    name: str
    cardinality: int
    distinct_counts: Tuple[int, ...]
    min_values: Tuple[Optional[int], ...]
    max_values: Tuple[Optional[int], ...]

    @property
    def arity(self) -> int:
        return len(self.distinct_counts)

    def selectivity_of_equality(self, column: int) -> float:
        """Estimated selectivity of ``column = constant``."""
        distinct = self.distinct_counts[column]
        if distinct == 0:
            return 0.0
        return 1.0 / distinct

    def join_selectivity(self, column: int, other: "RelationStatistics",
                         other_column: int) -> float:
        """Estimated selectivity of an equi-join predicate between two columns.

        Uses the standard ``1 / max(V(R, a), V(S, b))`` formula.
        """
        left = self.distinct_counts[column]
        right = other.distinct_counts[other_column]
        denominator = max(left, right)
        if denominator == 0:
            return 0.0
        return 1.0 / denominator


def collect_statistics(relation: Relation) -> RelationStatistics:
    """Scan ``relation`` once and build its statistics."""
    distinct = []
    minimums = []
    maximums = []
    for column in range(relation.arity):
        values = relation.distinct_values(column)
        distinct.append(len(values))
        minimums.append(values[0] if values else None)
        maximums.append(values[-1] if values else None)
    return RelationStatistics(
        name=relation.name,
        cardinality=len(relation),
        distinct_counts=tuple(distinct),
        min_values=tuple(minimums),
        max_values=tuple(maximums),
    )


def estimated_join_size(left: RelationStatistics, left_column: int,
                        right: RelationStatistics, right_column: int) -> float:
    """Textbook equi-join size estimate ``|R| * |S| / max(V(R,a), V(S,b))``."""
    selectivity = left.join_selectivity(left_column, right, right_column)
    return left.cardinality * right.cardinality * selectivity


def estimation_report(statistics: Dict[str, RelationStatistics]) -> str:
    """A human-readable dump of catalog statistics (used by examples)."""
    lines = ["relation        |tuples|  distinct-per-column"]
    for name in sorted(statistics):
        stats = statistics[name]
        distinct = ", ".join(str(d) for d in stats.distinct_counts)
        lines.append(f"{name:<15} {stats.cardinality:>8}  [{distinct}]")
    return "\n".join(lines)
