"""Loaders turning graph edge lists and node sets into relations."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.errors import DatasetError
from repro.storage.relation import Relation

EdgePair = Tuple[int, int]


def undirected_closure(edges: Iterable[EdgePair],
                       drop_self_loops: bool = True) -> List[EdgePair]:
    """Symmetrise an edge list: for every (u, v) also include (v, u).

    The paper treats graphs as undirected for the clique queries; storing
    both directions in the ``edge`` relation is how a relational engine
    realises that convention.
    """
    closure: Set[EdgePair] = set()
    for u, v in edges:
        if drop_self_loops and u == v:
            continue
        closure.add((int(u), int(v)))
        closure.add((int(v), int(u)))
    return sorted(closure)


def edge_relation_from_pairs(edges: Iterable[EdgePair],
                             name: str = "edge",
                             undirected: bool = True,
                             drop_self_loops: bool = True) -> Relation:
    """Build the binary ``edge`` relation used by every benchmark query."""
    pairs = list(edges)
    if undirected:
        rows: Sequence[EdgePair] = undirected_closure(pairs, drop_self_loops)
    else:
        rows = [
            (int(u), int(v))
            for u, v in pairs
            if not (drop_self_loops and u == v)
        ]
    return Relation(name, 2, rows, attributes=("src", "dst"))


def node_relation(nodes: Iterable[int], name: str) -> Relation:
    """Build a unary relation of node identifiers (the paper's v1/v2 samples)."""
    return Relation(name, 1, [(int(n),) for n in nodes], attributes=("node",))


def load_edge_list(path: Union[str, Path],
                   name: str = "edge",
                   undirected: bool = True,
                   comment_prefix: str = "#") -> Relation:
    """Load a SNAP-style whitespace-separated edge-list file.

    Lines starting with ``comment_prefix`` are skipped, matching the format
    of the SNAP datasets the paper uses.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"edge list file not found: {path}")
    pairs: List[EdgePair] = []
    with path.open() as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(comment_prefix):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise DatasetError(
                    f"{path}:{line_number}: expected two node ids, got {stripped!r}"
                )
            try:
                pairs.append((int(fields[0]), int(fields[1])))
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{line_number}: non-integer node id in {stripped!r}"
                ) from exc
    return edge_relation_from_pairs(pairs, name=name, undirected=undirected)


def save_edge_list(relation: Relation, path: Union[str, Path],
                   deduplicate_directions: bool = True) -> None:
    """Write a binary relation back out as a SNAP-style edge list."""
    if relation.arity != 2:
        raise DatasetError(
            f"can only save binary relations as edge lists, got arity {relation.arity}"
        )
    path = Path(path)
    seen: Set[EdgePair] = set()
    with path.open("w") as handle:
        handle.write(f"# edges of relation {relation.name}\n")
        for u, v in relation:
            if deduplicate_directions:
                key = (min(u, v), max(u, v))
                if key in seen:
                    continue
                seen.add(key)
            handle.write(f"{u}\t{v}\n")


def nodes_of(edge_relation: Relation) -> List[int]:
    """The sorted set of node identifiers appearing in a binary relation."""
    if edge_relation.arity != 2:
        raise DatasetError(
            f"nodes_of expects a binary relation, got arity {edge_relation.arity}"
        )
    return edge_relation.active_domain()


def edge_count(edge_relation: Relation, undirected: bool = True) -> int:
    """Number of edges, counting each undirected edge once when requested."""
    if edge_relation.arity != 2:
        raise DatasetError(
            f"edge_count expects a binary relation, got arity {edge_relation.arity}"
        )
    if not undirected:
        return len(edge_relation)
    unique: Set[EdgePair] = set()
    for u, v in edge_relation:
        unique.add((min(u, v), max(u, v)))
    return len(unique)
