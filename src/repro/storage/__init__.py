"""Relational storage substrate: relations, trie indexes, and the catalog.

The paper's algorithms assume every input relation is stored in a
search-tree index (a trie / B-tree) ordered consistently with the global
attribute order.  This package provides that substrate in pure Python:

* :class:`repro.storage.relation.Relation` — immutable sorted tuple sets,
* :class:`repro.storage.trie.TrieIndex` — prefix-ordered index with the
  ``seek_lub`` / ``seek_glb`` operations Minesweeper probes and the
  linear-iterator interface Leapfrog Triejoin consumes,
* :class:`repro.storage.database.Database` — a small catalog caching one
  trie per (relation, attribute order) pair,
* loaders for graph edge lists and node samples,
* per-relation statistics for the Selinger-style optimizer.
"""

from repro.storage.relation import Relation
from repro.storage.trie import TrieIndex, TrieIterator, LeapfrogIterator
from repro.storage.database import Database
from repro.storage.loader import (
    edge_relation_from_pairs,
    node_relation,
    undirected_closure,
)
from repro.storage.statistics import RelationStatistics, collect_statistics

__all__ = [
    "Database",
    "LeapfrogIterator",
    "Relation",
    "RelationStatistics",
    "TrieIndex",
    "TrieIterator",
    "collect_statistics",
    "edge_relation_from_pairs",
    "node_relation",
    "undirected_closure",
]
