"""Trie indexes over relations and the iterator interfaces built on them.

A :class:`TrieIndex` views a relation, with its columns permuted into a
chosen attribute order, as a trie: level ``d`` of the trie holds the sorted
distinct values of column ``d`` among the tuples sharing the current prefix.
The index supports the two access patterns the paper's algorithms need:

* **Leapfrog Triejoin** consumes a :class:`TrieIterator` with the classic
  ``open / up / key / next / seek / at_end`` interface.
* **Minesweeper** probes the index with :meth:`TrieIndex.gap_around`, the
  combination of ``seek_glb`` / ``seek_lub`` described in Idea 4, to obtain
  the maximal gap box around a free tuple's projection.

The trie is not materialised as linked nodes; it is a binary-search view
over the relation's sorted tuple list, which keeps construction O(N log N)
and navigation O(log N) per step while staying allocation-free.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.storage.relation import Relation

Tuple_ = Tuple[int, ...]


class TrieIndex:
    """A relation indexed under a specific column order.

    Parameters
    ----------
    relation:
        The base relation.
    column_order:
        Permutation of the relation's columns; ``column_order[i]`` is the
        source column stored at trie level ``i``.  This is how the library
        realises the GAO-consistency assumption: the engine asks the catalog
        for the index of each atom in the order induced by the GAO.
    """

    __slots__ = ("relation", "column_order", "_tuples", "arity")

    def __init__(self, relation: Relation, column_order: Sequence[int]) -> None:
        if sorted(column_order) != list(range(relation.arity)):
            raise StorageError(
                f"column order {list(column_order)} is not a permutation of "
                f"0..{relation.arity - 1} for relation {relation.name!r}"
            )
        self.relation = relation
        self.column_order = tuple(column_order)
        self.arity = relation.arity
        self._tuples: List[Tuple_] = sorted(
            tuple(row[c] for c in self.column_order) for row in relation.tuples
        )

    # ------------------------------------------------------------------
    # Whole-index properties
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def tuples(self) -> List[Tuple_]:
        """The reordered, sorted tuples backing the trie (read-only)."""
        return self._tuples

    def __repr__(self) -> str:
        return (
            f"TrieIndex({self.relation.name!r}, order={list(self.column_order)}, "
            f"size={len(self)})"
        )

    # ------------------------------------------------------------------
    # Prefix navigation
    # ------------------------------------------------------------------
    def prefix_range(self, prefix: Sequence[int],
                     lo: int = 0, hi: Optional[int] = None) -> Tuple[int, int]:
        """Bounds ``[lo, hi)`` of tuples starting with ``prefix`` (trie order)."""
        if hi is None:
            hi = len(self._tuples)
        prefix_tuple = tuple(prefix)
        if len(prefix_tuple) > self.arity:
            raise StorageError(
                f"prefix of length {len(prefix_tuple)} exceeds arity {self.arity}"
            )
        if not prefix_tuple:
            return lo, hi
        lower = bisect_left(self._tuples, prefix_tuple, lo, hi)
        upper = bisect_left(
            self._tuples, prefix_tuple[:-1] + (prefix_tuple[-1] + 1,), lower, hi
        )
        return lower, upper

    def contains_prefix(self, prefix: Sequence[int]) -> bool:
        """True iff some tuple of the index starts with ``prefix``."""
        lower, upper = self.prefix_range(prefix)
        return lower < upper

    def contains(self, row: Sequence[int]) -> bool:
        """Full-tuple membership in trie order."""
        if len(row) != self.arity:
            raise StorageError(
                f"tuple of length {len(row)} does not match arity {self.arity}"
            )
        lower, upper = self.prefix_range(row)
        return lower < upper

    def children(self, prefix: Sequence[int]) -> List[int]:
        """Sorted distinct values one level below ``prefix``."""
        depth = len(prefix)
        if depth >= self.arity:
            raise StorageError("cannot descend below the last trie level")
        lower, upper = self.prefix_range(prefix)
        values: List[int] = []
        position = lower
        while position < upper:
            value = self._tuples[position][depth]
            values.append(value)
            position = bisect_left(
                self._tuples, tuple(prefix) + (value + 1,), position, upper
            )
        return values

    def count_children(self, prefix: Sequence[int]) -> int:
        """Number of distinct values one level below ``prefix``."""
        return len(self.children(prefix))

    def first_child(self, prefix: Sequence[int]) -> Optional[int]:
        """The smallest value below ``prefix`` or ``None`` if the prefix is absent."""
        depth = len(prefix)
        lower, upper = self.prefix_range(prefix)
        if lower >= upper:
            return None
        return self._tuples[lower][depth]

    def seek_value(self, prefix: Sequence[int], value: int) -> Optional[int]:
        """Least value ``>= value`` below ``prefix`` (``None`` if no such value)."""
        depth = len(prefix)
        lower, upper = self.prefix_range(prefix)
        if lower >= upper:
            return None
        position = bisect_left(self._tuples, tuple(prefix) + (value,), lower, upper)
        if position >= upper:
            return None
        return self._tuples[position][depth]

    def next_value(self, prefix: Sequence[int], value: int) -> Optional[int]:
        """Least value strictly greater than ``value`` below ``prefix``."""
        return self.seek_value(prefix, value + 1)

    # ------------------------------------------------------------------
    # Minesweeper probes: seek_glb / seek_lub around a point
    # ------------------------------------------------------------------
    def gap_around(self, prefix: Sequence[int],
                   value: int) -> Tuple[Optional[int], bool, Optional[int]]:
        """Return ``(glb, present, lub)`` for ``value`` one level below ``prefix``.

        ``glb`` is the greatest indexed value strictly below ``value`` (or
        ``None`` meaning -infinity), ``present`` says whether ``value`` itself
        is indexed under the prefix, and ``lub`` is the least indexed value
        strictly above ``value`` (or ``None`` meaning +infinity).  This is the
        pair of ``seek_glb`` / ``seek_lub`` probes from Idea 4, fused so a
        single binary search serves both.
        """
        depth = len(prefix)
        if depth >= self.arity:
            raise StorageError("gap_around cannot be asked below the last level")
        lower, upper = self.prefix_range(prefix)
        if lower >= upper:
            return None, False, None
        position = bisect_left(self._tuples, tuple(prefix) + (value,), lower, upper)
        present = position < upper and self._tuples[position][depth] == value
        glb: Optional[int] = None
        if position > lower:
            glb = self._tuples[position - 1][depth]
        lub: Optional[int] = None
        if present:
            lub_position = bisect_left(
                self._tuples, tuple(prefix) + (value + 1,), position, upper
            )
            if lub_position < upper:
                lub = self._tuples[lub_position][depth]
        else:
            if position < upper:
                lub = self._tuples[position][depth]
        return glb, present, lub

    # ------------------------------------------------------------------
    # Iterators
    # ------------------------------------------------------------------
    def iterator(self) -> "TrieIterator":
        """A fresh trie iterator positioned at the (virtual) root."""
        return TrieIterator(self)

    def scan(self) -> Iterator[Tuple_]:
        """Iterate all tuples in trie order."""
        return iter(self._tuples)


class TrieIterator:
    """The classic Leapfrog Triejoin trie-iterator interface.

    The iterator maintains a stack of ``(lo, hi, pos)`` ranges, one per open
    level; ``pos`` points at the first tuple carrying the current key of the
    deepest open level.
    """

    __slots__ = ("_index", "_stack", "_at_end")

    def __init__(self, index: TrieIndex) -> None:
        self._index = index
        # Each frame is [lo, hi, pos]; the root frame spans the whole index.
        self._stack: List[List[int]] = [[0, len(index.tuples), 0]]
        self._at_end = len(index.tuples) == 0

    # -- introspection ---------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of open levels (0 = positioned at the root)."""
        return len(self._stack) - 1

    def at_end(self) -> bool:
        """True when the current level has been exhausted."""
        return self._at_end

    def key(self) -> int:
        """The value at the current level (undefined at the root / at end)."""
        if self.depth == 0:
            raise StorageError("key() called at the trie root")
        if self._at_end:
            raise StorageError("key() called on an exhausted iterator level")
        frame = self._stack[-1]
        return self._index.tuples[frame[2]][self.depth - 1]

    # -- vertical movement -----------------------------------------------
    def open(self) -> None:
        """Descend to the first value of the next level."""
        if self.depth >= self._index.arity:
            raise StorageError("open() below the last trie level")
        if self._at_end:
            raise StorageError("open() on an exhausted iterator level")
        lo, hi = self._current_value_range()
        self._stack.append([lo, hi, lo])
        self._at_end = lo >= hi

    def up(self) -> None:
        """Ascend one level (the parent's position is unchanged)."""
        if self.depth == 0:
            raise StorageError("up() called at the trie root")
        self._stack.pop()
        self._at_end = False

    # -- horizontal movement ----------------------------------------------
    def next(self) -> None:
        """Advance to the next distinct value at the current level."""
        if self.depth == 0:
            raise StorageError("next() called at the trie root")
        if self._at_end:
            return
        frame = self._stack[-1]
        level = self.depth - 1
        tuples = self._index.tuples
        current = tuples[frame[2]][level]
        prefix = tuples[frame[2]][:level] + (current + 1,)
        frame[2] = bisect_left(tuples, prefix, frame[2], frame[1])
        self._at_end = frame[2] >= frame[1]

    def seek(self, value: int) -> None:
        """Advance to the least value ``>= value`` at the current level."""
        if self.depth == 0:
            raise StorageError("seek() called at the trie root")
        if self._at_end:
            return
        frame = self._stack[-1]
        level = self.depth - 1
        tuples = self._index.tuples
        current = tuples[frame[2]][level]
        if value <= current:
            return
        prefix = tuples[frame[2]][:level] + (value,)
        frame[2] = bisect_left(tuples, prefix, frame[2], frame[1])
        self._at_end = frame[2] >= frame[1]

    # -- helpers -----------------------------------------------------------
    def _current_value_range(self) -> Tuple[int, int]:
        """Range of tuples sharing the key of the deepest open level."""
        frame = self._stack[-1]
        if self.depth == 0:
            return frame[0], frame[1]
        level = self.depth - 1
        tuples = self._index.tuples
        value = tuples[frame[2]][level]
        prefix = tuples[frame[2]][:level] + (value + 1,)
        upper = bisect_left(tuples, prefix, frame[2], frame[1])
        return frame[2], upper

    def current_prefix(self) -> Tuple_:
        """The values bound by the open levels, shallowest first."""
        if self._at_end:
            raise StorageError("current_prefix() on an exhausted iterator level")
        frame = self._stack[-1]
        if self.depth == 0:
            return ()
        return self._index.tuples[frame[2]][: self.depth]


class LeapfrogIterator:
    """A single-attribute view of a trie iterator used by leapfrog join.

    Leapfrog Triejoin intersects, per variable, one :class:`LeapfrogIterator`
    per atom containing that variable.  This wrapper simply re-exposes the
    horizontal operations of the underlying :class:`TrieIterator` so the
    join code reads like the published algorithm.
    """

    __slots__ = ("trie_iterator",)

    def __init__(self, trie_iterator: TrieIterator) -> None:
        self.trie_iterator = trie_iterator

    def key(self) -> int:
        return self.trie_iterator.key()

    def next(self) -> None:
        self.trie_iterator.next()

    def seek(self, value: int) -> None:
        self.trie_iterator.seek(value)

    def at_end(self) -> bool:
        return self.trie_iterator.at_end()
