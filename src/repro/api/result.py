""":class:`ResultSet` — the lazy, streaming answer handle of the client API.

``Session.run`` (and ``QueryEngine.run``) return a ``ResultSet`` instead of
a materialized list: nothing executes until the caller pulls.  Iteration
streams bindings generator-style through the executor's shard-merge path —
the serial executor yields straight out of the join algorithm's
enumerator, shard by shard, so consuming the first *k* answers of a huge
join costs O(k) work and memory, not O(output).

The handle is a forward-only cursor (like a DB-API cursor): ``__iter__``,
:meth:`fetchmany`, and :meth:`fetchall` all advance the same position and
compose.  When a session result cache is attached (and no ``limit`` is
set), streamed rows are retained so the fully drained answer can be
stored; otherwise streaming holds no history and stays O(1) memory.  A
result served *from* a session's result cache starts materialized and
costs nothing to read.

:meth:`count` answers "how many?" without streaming: it routes through the
executor's count path (which sums per-shard counts and can use the
counting-optimized algorithms), consulting the session's count cache when
one is attached.

:attr:`stats` reports what actually happened: the algorithm and
partitioning used, plan/execution timings, cache provenance, and how many
rows have been delivered.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import islice
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ExecutionError
from repro.util import TimeBudget

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.engine import QueryEngine
    from repro.exec.plan import PhysicalPlan
    from repro.obs.trace import QueryTrace, Span

#: One output tuple, in first-occurrence variable order.
Row = Tuple[int, ...]


class RowCursor:
    """The forward-only cursor surface shared by every result-set backend.

    Subclasses supply two things: ``_variables`` (the output variables,
    first-occurrence order) and :meth:`_pull` (the next undelivered row,
    or ``None`` at the end of the answer).  Everything a consumer touches
    — iteration, :meth:`rows`, :meth:`fetchmany`, :meth:`fetchall` — is
    defined here once, so the local :class:`ResultSet` and the wire-backed
    :class:`repro.net.client.RemoteResultSet` expose the exact same
    DB-API-style contract: one shared position, composing fetches, and
    nothing more after exhaustion.
    """

    _variables: Tuple[object, ...] = ()

    def _pull(self) -> Optional[Row]:
        """The next undelivered row, or ``None`` at the end of the answer."""
        raise NotImplementedError

    @property
    def columns(self) -> Tuple[str, ...]:
        """Output column names, in first-occurrence variable order."""
        return tuple(v.name for v in self._variables)

    def __iter__(self):
        """Stream the remaining bindings, lazily.

        Yields ``{Variable: value}`` mappings exactly as the underlying
        join algorithms produce them.  The cursor is shared with
        :meth:`fetchmany` / :meth:`fetchall`; like a DB-API cursor, a
        fully consumed result set yields nothing more.
        """
        while True:
            row = self._pull()
            if row is None:
                return
            yield dict(zip(self._variables, row))

    def rows(self) -> Iterator[Row]:
        """Stream the remaining output tuples (cheaper than bindings)."""
        while True:
            row = self._pull()
            if row is None:
                return
            yield row

    def fetchmany(self, size: int = 1) -> List[Row]:
        """Up to ``size`` more rows; an empty list at the end of the answer."""
        out: List[Row] = []
        while len(out) < size:
            row = self._pull()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> List[Row]:
        """Every remaining row, materialized."""
        out: List[Row] = []
        while True:
            row = self._pull()
            if row is None:
                return out
            out.append(row)


class ResultCacheHooks:
    """How a :class:`ResultSet` talks to a session's result cache.

    The base implementation is a no-op (engine-level result sets are
    uncached); :class:`repro.api.session.Session` provides a live binding.
    Lookups happen lazily — at first data access, or at :meth:`ResultSet.count`
    — so a result set that is never consumed never touches the cache.
    """

    def lookup_rows(self) -> Optional[Sequence[Row]]:
        """The cached full answer (sorted rows), or ``None``."""
        return None

    def store_rows(self, dependencies: Dict[str, int],
                   rows: Sequence[Row]) -> None:
        """Store a complete answer computed against ``dependencies``."""

    def lookup_count(self) -> Optional[int]:
        """The cached answer size, or ``None``."""
        return None

    def store_count(self, dependencies: Dict[str, int], value: int) -> None:
        """Store an answer size computed against ``dependencies``."""

    def snapshot(self) -> Dict[str, int]:
        """Pre-execution relation versions (see ``ResultCache.snapshot``)."""
        return {}


@dataclass(frozen=True)
class ResultStats:
    """What one :class:`ResultSet` actually did, for reports and tests."""

    query: str
    algorithm: str
    requested_algorithm: str
    partitioning: str
    shards: int
    plan_cached: bool
    result_cached: bool
    plan_seconds: float
    execution_seconds: float
    rows_delivered: int
    complete: bool
    limit: Optional[int] = None
    total: Optional[int] = None
    #: Clamped span-tree snapshot (see :mod:`repro.obs.trace`) when the
    #: query ran with ``options(trace=True)``; ``None`` otherwise.
    trace: Optional[dict] = None

    @property
    def seconds(self) -> float:
        """Total wall time attributed to this result: planning + execution."""
        return self.plan_seconds + self.execution_seconds


class ResultSet(RowCursor):
    """Lazy, streaming handle over one query's answers.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.QueryEngine` whose executor runs the plan.
    plan:
        The compiled :class:`~repro.exec.plan.PhysicalPlan` to execute.
    timeout:
        Resolved soft timeout in seconds (``None`` = unlimited).  Each
        execution (opening the stream, or a :meth:`count` call) gets its
        own :class:`~repro.util.TimeBudget`.
    limit:
        Stop streaming after this many rows (``None`` = full answer).
    plan_seconds / plan_cached:
        Planning cost and plan-cache provenance, recorded by the caller.
    hooks:
        Optional :class:`ResultCacheHooks` binding to a result cache.
    trace:
        Optional :class:`~repro.obs.trace.QueryTrace` to record execution
        spans into; its snapshot surfaces as :attr:`stats` ``.trace``.
    """

    def __init__(self, engine: "QueryEngine", plan: "PhysicalPlan", *,
                 timeout: Optional[float] = None,
                 limit: Optional[int] = None,
                 plan_seconds: float = 0.0,
                 plan_cached: bool = False,
                 hooks: Optional[ResultCacheHooks] = None,
                 trace: Optional["QueryTrace"] = None) -> None:
        self._engine = engine
        self._plan = plan
        self._variables = tuple(plan.prepared.query.variables)
        self._timeout = timeout
        self._limit = limit
        self._plan_seconds = plan_seconds
        self._plan_cached = plan_cached
        self._hooks = hooks
        # Full (limit-applied) answer: a list, or the cache's own tuple.
        self._rows: Optional[Sequence[Row]] = None
        # Streamed rows are retained only when a cache store can consume
        # them at the end; otherwise streaming stays O(1) memory.
        self._retain = hooks is not None and limit is None
        self._seen: List[Row] = []              # rows pulled off the stream
        self._stream: Optional[Iterator[Row]] = None
        self._exhausted = False
        self._failed = False
        self._cursor = 0                        # rows delivered to the caller
        self._count: Optional[int] = None
        self._sorted_answer: Optional[Tuple[Row, ...]] = None
        self._result_cached = False
        self._execution_seconds = 0.0
        self._dependencies: Optional[Dict[str, int]] = None
        self._trace = trace
        self._exec_span: Optional["Span"] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> "PhysicalPlan":
        return self._plan

    @property
    def query_text(self) -> str:
        return self._plan.prepared.text

    @property
    def algorithm(self) -> str:
        return self._plan.algorithm

    @property
    def shards(self) -> int:
        return self._plan.shards

    @property
    def complete(self) -> bool:
        """True once the full (limit-applied) answer is materialized.

        A cache-served result is complete before the cursor moves; see
        :attr:`drained` for "the cursor has nothing more to deliver".
        """
        return self._rows is not None or self._exhausted

    @property
    def drained(self) -> bool:
        """True once the forward cursor has delivered every row.

        ``complete`` answers "is the full answer known?", which a
        cache-served result is from the start; ``drained`` answers "will
        another fetch return anything?" — what a paging consumer (the
        server-side cursor registry) needs.
        """
        if self._rows is not None:
            return self._cursor >= len(self._rows)
        return self._exhausted

    def adopt_trace_id(self, trace_id: str) -> None:
        """Stamp a caller-chosen correlation id on this result's trace.

        The wire path uses this so a client-generated trace id survives
        into the server-side span tree; a no-op when tracing is off.
        """
        if self._trace is not None and trace_id:
            self._trace.trace_id = trace_id

    def annotate_trace(self, **annotations: object) -> None:
        """Attach annotations to this result's trace root.

        The wire path stamps the coordinator's shard span context
        (span id, shard index, attempt tag) here so a server-side
        subtree can be correlated back to the logical shard that
        requested it; a no-op when tracing is off.
        """
        if self._trace is not None and annotations:
            self._trace.root.annotate(**annotations)

    def record_queue_wait(self, seconds: float) -> None:
        """Record admission-queue time that elapsed before execution.

        The server measures frame-arrival → worker-pickup and folds it
        in here as a leading ``queue`` span; a no-op when tracing is
        off or the wait is not positive.
        """
        if self._trace is not None and seconds > 0:
            self._trace.absorb_wait("queue", round(seconds, 9))

    @property
    def stats(self) -> ResultStats:
        """A point-in-time snapshot of timings and provenance."""
        return ResultStats(
            query=self.query_text,
            algorithm=self._plan.algorithm,
            requested_algorithm=self._plan.prepared.requested_algorithm,
            partitioning=self._plan.partition_key(),
            shards=self._plan.shards,
            plan_cached=self._plan_cached,
            result_cached=self._result_cached,
            plan_seconds=self._plan_seconds,
            execution_seconds=self._execution_seconds,
            rows_delivered=self._cursor,
            complete=self.complete,
            limit=self._limit,
            total=self._count,
            trace=self._trace.as_dict() if self._trace is not None else None,
        )

    # ------------------------------------------------------------------
    # Streaming internals
    # ------------------------------------------------------------------
    def _ensure_source(self) -> None:
        """Bind a row source: cached rows if available, else a live stream."""
        if self._rows is not None or self._stream is not None \
                or self._exhausted:
            return
        if self._hooks is not None:
            cached = self._hooks.lookup_rows()
            if cached is not None:
                if self._limit is not None:
                    self._rows = list(cached)[:self._limit]
                else:
                    # The cache's own (sorted) tuple, zero copies — it
                    # indexes like a list for the cursor and is what
                    # answer() hands back.
                    self._rows = cached
                    self._sorted_answer = tuple(cached)
                self._count = len(self._rows)
                self._result_cached = True
                if self._trace is not None:
                    self._trace.begin(
                        "execute", result_cache="hit",
                        rows=self._count,
                    ).finish()
                return
            self._dependencies = self._hooks.snapshot()
        budget = TimeBudget(self._timeout)
        extra = {}
        if self._trace is not None:
            self._exec_span = self._trace.begin(
                "execute", algorithm=self._plan.algorithm,
                shards=self._plan.shards,
            )
            extra["trace"] = self._exec_span
        bindings = self._engine.executor.bindings(
            self._engine.database, self._plan,
            budget=budget, factory=self._engine.make_algorithm,
            limit=self._limit, **extra,
        )
        rows = (
            tuple(binding[v] for v in self._variables)
            for binding in bindings
        )
        if self._limit is not None:
            rows = islice(rows, self._limit)
        self._stream = iter(rows)

    def _finish_stream(self) -> None:
        """The stream is exhausted: record the total, cache if retained."""
        self._stream = None
        self._exhausted = True
        self._count = self._cursor
        if self._exec_span is not None:
            self._exec_span.annotate(rows=self._cursor).finish()
            self._exec_span = None
        if self._retain:
            self._rows = self._seen
            # A limited stream saw only a prefix — _retain is False then,
            # so only complete answers ever reach the cache.
            self._sorted_answer = tuple(sorted(self._seen))
            self._hooks.store_rows(
                self._dependencies or {}, self._sorted_answer
            )

    def _pull(self) -> Optional[Row]:
        """The next undelivered row, or ``None`` at the end of the answer."""
        if self._failed:
            raise ExecutionError(
                "this result set's stream failed mid-way; "
                "re-run the query for a fresh result set"
            )
        self._ensure_source()
        if self._rows is not None:
            if self._cursor >= len(self._rows):
                return None
            row = self._rows[self._cursor]
            self._cursor += 1
            return row
        if self._exhausted:
            return None
        started = time.perf_counter()
        try:
            row = next(self._stream)
        except StopIteration:
            self._execution_seconds += time.perf_counter() - started
            self._finish_stream()
            return None
        except BaseException:
            # A failed stream must never masquerade as a clean end: a
            # dead generator's next() raises StopIteration, which would
            # otherwise store a truncated answer into the result cache.
            self._execution_seconds += time.perf_counter() - started
            self._stream = None
            self._failed = True
            if self._exec_span is not None:
                self._exec_span.annotate(failed=True).finish()
                self._exec_span = None
            raise
        self._execution_seconds += time.perf_counter() - started
        if self._retain:
            self._seen.append(row)
        self._cursor += 1
        return row

    # ------------------------------------------------------------------
    # Consumption (__iter__ / rows / fetchmany / fetchall come from
    # RowCursor, driven by _pull above)
    # ------------------------------------------------------------------
    def answer(self) -> Tuple[Row, ...]:
        """The complete answer as a sorted, immutable tuple.

        Drains the stream if needed.  When the result came from (or was
        just stored into) a session's result cache, this is the cache's
        own tuple — zero copies, so cache hits cost nothing, and the
        object is safe to hand to many callers.
        """
        if self._sorted_answer is None:
            consumed_before = self._cursor
            rows = self.fetchall()
            if self._sorted_answer is None:
                if consumed_before:
                    raise ExecutionError(
                        "answer() needs the full result, but this result "
                        "set was partially consumed without retention; "
                        "re-run the query"
                    )
                self._sorted_answer = tuple(sorted(rows))
        return self._sorted_answer

    def count(self) -> int:
        """The number of answers (bounded by ``limit``), without streaming.

        Routes through the executor's count path — per-shard counts sum,
        and counting-optimized algorithms never materialize bindings —
        unless the answer is already materialized or cached.
        """
        if self._count is not None:
            return self._count
        if self._rows is not None:
            self._count = len(self._rows)
            return self._count
        if self._limit is not None:
            # Bounded work: stream at most ``limit`` bindings in a side
            # execution instead of counting the full answer.  The cursor
            # of this result set is untouched.
            if self._limit == 0:
                self._count = 0
                return 0
            if self._hooks is not None:
                cached = self._hooks.lookup_count()
                if cached is not None:
                    self._result_cached = True
                    self._count = min(self._limit, cached)
                    return self._count
            budget = TimeBudget(self._timeout)
            started = time.perf_counter()
            span = self._trace.begin("count", limited=self._limit) \
                if self._trace is not None else None
            try:
                bindings = self._engine.executor.bindings(
                    self._engine.database, self._plan,
                    budget=budget, factory=self._engine.make_algorithm,
                    limit=self._limit,
                )
                self._count = sum(1 for _ in islice(bindings, self._limit))
            finally:
                if span is not None:
                    span.finish()
            self._execution_seconds += time.perf_counter() - started
            return self._count
        dependencies: Dict[str, int] = {}
        if self._hooks is not None:
            cached = self._hooks.lookup_count()
            if cached is not None:
                self._result_cached = True
                self._count = cached
                if self._trace is not None:
                    self._trace.begin(
                        "count", result_cache="hit", count=cached,
                    ).finish()
                return self._count
            dependencies = self._hooks.snapshot()
        budget = TimeBudget(self._timeout)
        started = time.perf_counter()
        span = self._trace.begin(
            "count", algorithm=self._plan.algorithm,
            shards=self._plan.shards,
        ) if self._trace is not None else None
        extra = {} if span is None else {"trace": span}
        try:
            total = self._engine.executor.count(
                self._engine.database, self._plan,
                budget=budget, factory=self._engine.make_algorithm,
                **extra,
            )
        finally:
            if span is not None:
                span.finish()
        if span is not None:
            span.annotate(count=total)
        self._execution_seconds += time.perf_counter() - started
        if self._hooks is not None:
            self._hooks.store_count(dependencies, total)
        self._count = total
        return self._count
