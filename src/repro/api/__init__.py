"""The unified client API: sessions, options, lazy results, plan reports.

Import surface::

    from repro.api import connect, Session, QueryOptions, ResultSet, Explain

``QueryOptions``, ``ResultSet``, and ``Explain`` live in leaf modules the
engine itself imports; ``Session``/``connect`` sit *above* the engine, so
they are loaded lazily (PEP 562) to keep ``repro.engine ⇄ repro.api``
import-order independent.
"""

from repro.api.explain import Explain, RelationEstimate, explain_plan
from repro.api.options import QueryOptions
from repro.api.result import ResultCacheHooks, ResultSet, ResultStats, RowCursor

__all__ = [
    "Explain",
    "QueryOptions",
    "RelationEstimate",
    "ResultCacheHooks",
    "ResultSet",
    "ResultStats",
    "PreparedHandle",
    "RowCursor",
    "Session",
    "SessionStats",
    "connect",
    "explain_plan",
]

_LAZY = {"PreparedHandle", "Session", "SessionStats", "connect"}


def __getattr__(name: str):
    if name in _LAZY:
        from repro.api import session

        return getattr(session, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _LAZY)
