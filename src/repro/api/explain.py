"""Structured plan reports: what the engine would do for a query, and why.

``Session.explain`` (surfaced as the ``repro explain`` CLI verb) produces
an :class:`Explain` — a renderable record of every decision the planning
stack makes before executing a query:

* the hypergraph's acyclicity class (β-acyclic / α-acyclic-only / cyclic),
* the chosen global attribute order and whether it is a nested
  elimination order (the Minesweeper NEO requirement of §4.9),
* the selected algorithm and the reason it was selected,
* the partitioning scheme (single-attribute hash or HyperCube grid),
  its shard dims, and which relations replicate vs. fragment,
* statistics-based size estimates: per-relation cardinalities and distinct
  counts, plus the AGM fractional-edge-cover output bound.

The report is a plain dataclass: :meth:`Explain.render` gives the
human-readable text, :meth:`Explain.as_dict` feeds JSON output and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.datalog.agm import agm_bound
from repro.datalog.hypergraph import analyse

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.exec.plan import PhysicalPlan
    from repro.storage.database import Database


@dataclass(frozen=True)
class RelationEstimate:
    """Statistics of one relation as seen by the planner."""

    name: str
    cardinality: int
    distinct_counts: Tuple[int, ...]


@dataclass(frozen=True)
class Explain:
    """A structured report of the plan for one query."""

    query: str
    # Algorithm choice
    algorithm: str
    requested_algorithm: str
    reason: str
    # Structure
    acyclicity: str  # "β-acyclic" | "α-acyclic (β-cyclic)" | "cyclic"
    alpha_acyclic: bool
    beta_acyclic: bool
    gao: Optional[Tuple[str, ...]]
    gao_is_neo: bool
    gao_policy: Optional[str]
    # Partitioning
    partitioning: str  # "serial" or the scheme key, e.g. "hypercube[a:2,b:2]"
    partition_mode: Optional[str]
    shards: int
    grid: Tuple[Tuple[str, int], ...]
    replicated: Tuple[str, ...]
    fragmented: Tuple[str, ...]
    # Estimates
    relation_estimates: Tuple[RelationEstimate, ...] = ()
    agm_bound: Optional[float] = None
    estimate_notes: Tuple[str, ...] = field(default=())
    # Physical operator tree
    operator_tree: str = ""

    def as_dict(self) -> Dict[str, object]:
        """A JSON-friendly view (used by ``repro explain --json``)."""
        return {
            "query": self.query,
            "algorithm": self.algorithm,
            "requested_algorithm": self.requested_algorithm,
            "reason": self.reason,
            "acyclicity": self.acyclicity,
            "alpha_acyclic": self.alpha_acyclic,
            "beta_acyclic": self.beta_acyclic,
            "gao": list(self.gao) if self.gao is not None else None,
            "gao_is_neo": self.gao_is_neo,
            "gao_policy": self.gao_policy,
            "partitioning": self.partitioning,
            "partition_mode": self.partition_mode,
            "shards": self.shards,
            "grid": [[name, dims] for name, dims in self.grid],
            "replicated": list(self.replicated),
            "fragmented": list(self.fragmented),
            "relation_estimates": [
                {
                    "name": estimate.name,
                    "cardinality": estimate.cardinality,
                    "distinct_counts": list(estimate.distinct_counts),
                }
                for estimate in self.relation_estimates
            ],
            "agm_bound": self.agm_bound,
            "estimate_notes": list(self.estimate_notes),
            "operator_tree": self.operator_tree,
        }

    def render(self, actuals: Optional[str] = None) -> str:
        """The human-readable report printed by ``repro explain``.

        ``actuals`` is pre-rendered measured-execution text appended as
        its own section — how ``repro analyze`` (EXPLAIN ANALYZE)
        annotates the plan with per-operator timings and row counts.
        """
        lines: List[str] = [f"query: {self.query}", ""]
        lines.append(f"structure: {self.acyclicity}")
        if self.gao is not None:
            neo = "a nested elimination order" if self.gao_is_neo \
                else "not a NEO"
            policy = f", policy: {self.gao_policy}" if self.gao_policy else ""
            lines.append(
                f"attribute order: {' -> '.join(self.gao)} ({neo}{policy})"
            )
        else:
            lines.append(
                "attribute order: chosen at run time by the algorithm"
            )
        lines.append(f"algorithm: {self.algorithm} — {self.reason}")
        lines.append("")
        if self.shards > 1:
            axes = " x ".join(f"{name}:{dims}" for name, dims in self.grid)
            lines.append(
                f"partitioning: {self.partitioning} "
                f"({self.shards} disjoint shards over {axes})"
            )
            if self.fragmented:
                lines.append(
                    f"  fragmented per shard: {', '.join(self.fragmented)}"
                )
            if self.replicated:
                lines.append(
                    f"  replicated to every shard: {', '.join(self.replicated)}"
                )
        else:
            lines.append("partitioning: serial (single shard)")
        lines.append("")
        if self.relation_estimates:
            lines.append("statistics:")
            for estimate in self.relation_estimates:
                distinct = ", ".join(
                    str(d) for d in estimate.distinct_counts
                )
                lines.append(
                    f"  {estimate.name}: {estimate.cardinality:,} tuples, "
                    f"distinct per column [{distinct}]"
                )
        if self.agm_bound is not None:
            lines.append(
                f"output bound (AGM): <= {self.agm_bound:,.0f} tuples"
            )
        for note in self.estimate_notes:
            lines.append(f"note: {note}")
        lines.append("")
        lines.append("physical plan:")
        for tree_line in self.operator_tree.splitlines():
            lines.append(f"  {tree_line}")
        if actuals:
            lines.append("")
            lines.append("actual execution:")
            for actual_line in actuals.splitlines():
                lines.append(f"  {actual_line}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _selection_reason(requested: str, chosen: str,
                      beta_acyclic: bool) -> str:
    if requested != "auto":
        return f"explicitly requested ({requested!r})"
    if beta_acyclic:
        return ("auto: query is β-acyclic, Minesweeper is "
                "instance-optimal on it (§5.2)")
    return ("auto: query is cyclic, Leapfrog Triejoin is "
            "worst-case optimal (§5.2)")


def explain_plan(plan: "PhysicalPlan",
                 database: Optional["Database"] = None) -> Explain:
    """Build the structured report for one compiled physical plan."""
    prepared = plan.prepared
    query = prepared.query
    report = analyse(query)
    if report.beta_acyclic:
        acyclicity = "β-acyclic"
    elif report.alpha_acyclic:
        acyclicity = "α-acyclic (β-cyclic)"
    else:
        acyclicity = "cyclic"

    gao = prepared.gao
    scheme = plan.scheme
    partition = plan.partition

    estimates: List[RelationEstimate] = []
    notes: List[str] = []
    bound: Optional[float] = None
    if database is not None:
        sizes: Dict[int, int] = {}
        missing = False
        for name in query.relation_names:
            try:
                statistics = database.statistics(name)
            except ReproError:
                notes.append(f"relation {name!r} is not in the catalog; "
                             f"size estimates are partial")
                missing = True
                continue
            estimates.append(RelationEstimate(
                name=name,
                cardinality=statistics.cardinality,
                distinct_counts=statistics.distinct_counts,
            ))
        if not missing:
            try:
                for index, atom in enumerate(query.atoms):
                    sizes[index] = len(database.relation(atom.name))
                bound = agm_bound(query, sizes)
            except ReproError as error:
                notes.append(f"AGM bound unavailable: {error}")

    return Explain(
        query=prepared.text,
        algorithm=prepared.algorithm,
        requested_algorithm=prepared.requested_algorithm,
        reason=_selection_reason(
            prepared.requested_algorithm, prepared.algorithm,
            prepared.beta_acyclic,
        ),
        acyclicity=acyclicity,
        alpha_acyclic=report.alpha_acyclic,
        beta_acyclic=report.beta_acyclic,
        gao=prepared.gao_names,
        gao_is_neo=bool(gao.is_neo) if gao is not None else False,
        gao_policy=gao.policy if gao is not None else None,
        partitioning=plan.partition_key(),
        partition_mode=scheme.mode if scheme is not None else None,
        shards=plan.shards,
        grid=scheme.grid if scheme is not None else (),
        replicated=partition.replicated if partition is not None else (),
        fragmented=partition.constrained if partition is not None else (),
        relation_estimates=tuple(estimates),
        agm_bound=bound,
        estimate_notes=tuple(notes),
        operator_tree=plan.explain(),
    )
